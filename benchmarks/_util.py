"""Benchmark output helper: print each experiment table and persist it
under ``benchmarks/results/`` so the numbers EXPERIMENTS.md cites can be
regenerated and diffed."""

from __future__ import annotations

import pathlib

from repro.bench import ResultTable

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment: str, table: ResultTable) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = table.render()
    print()
    print(rendered)
    path = RESULTS_DIR / f"{experiment}.txt"
    existing = path.read_text() if path.exists() else ""
    block = rendered + "\n\n"
    if table.title in existing:
        # Replace the stale block for this table title.
        parts = existing.split("\n\n")
        parts = [p for p in parts if p and not p.startswith(table.title)]
        existing = ("\n\n".join(parts) + "\n\n") if parts else ""
    path.write_text(existing + block)
