"""Benchmark output helper: print each experiment table and persist it
under ``benchmarks/results/`` so the numbers EXPERIMENTS.md cites can be
regenerated and diffed.

Each ``emit`` writes three artifacts per experiment:

* ``<experiment>.txt`` — the rendered console table (human diffing);
* ``BENCH_<experiment>.json`` — the same table as structured data, so
  the perf trajectory can be tracked across PRs by machine;
* ``BENCH_<experiment>_metrics.json`` — a snapshot of the process
  metrics registry, recording what the pipeline *did* during the run
  (row counts, plan-stage sizes, sqlite statement counts).
"""

from __future__ import annotations

import json
import pathlib

from repro.bench import ResultTable, dump_metrics

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment: str, table: ResultTable) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = table.render()
    print()
    print(rendered)
    path = RESULTS_DIR / f"{experiment}.txt"
    existing = path.read_text() if path.exists() else ""
    block = rendered + "\n\n"
    if table.title in existing:
        # Replace the stale block for this table title.
        parts = existing.split("\n\n")
        parts = [p for p in parts if p and not p.startswith(table.title)]
        existing = ("\n\n".join(parts) + "\n\n") if parts else ""
    path.write_text(existing + block)
    _emit_json(experiment, table)
    dump_metrics(RESULTS_DIR / f"BENCH_{experiment}_metrics.json")


def _emit_json(experiment: str, table: ResultTable) -> None:
    """Merge this table into ``BENCH_<experiment>.json`` (one file per
    experiment, one entry per table title — mirroring the txt blocks)."""
    path = RESULTS_DIR / f"BENCH_{experiment}.json"
    data = {"experiment": experiment, "tables": {}}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            pass
    data.setdefault("tables", {})[table.title] = {
        "columns": table.columns,
        "rows": table.rows,
    }
    path.write_text(json.dumps(data, indent=2, sort_keys=True))
