"""E10 — Bulk-ingest ablation: parallel shredding.

Extension experiment (not in the paper): campaign-scale ingest is
shred-dominated and embarrassingly parallel across documents.  The bulk
loader shreds in a process pool and stores serially; this bench reports
the scaling across worker counts and verifies the loaded state matches
sequential ingest.

Interpretation is machine-dependent: the pool only pays for itself with
real cores available (results ship back as compact tuples to keep IPC
off the critical path); on a single-core host the table documents the
overhead instead, and the assertion degrades to an overhead bound.
"""

import os

import pytest

from repro.core import BulkLoader, HybridCatalog
from repro.bench import ResultTable, measure, throughput
from repro.grid import CorpusConfig, LeadCorpusGenerator, lead_schema

from _util import emit

BATCH = 120
CONFIG = CorpusConfig(seed=2010, themes=3, keys_per_theme=4,
                      dynamic_groups=3, params_per_group=8, dynamic_depth=3)
GENERATOR = LeadCorpusGenerator(CONFIG)
DOCUMENTS = list(GENERATOR.documents(BATCH))

WORKER_COUNTS = [1, 2, 4]


def fresh_catalog():
    catalog = HybridCatalog(lead_schema())
    GENERATOR.register_definitions(catalog)
    return catalog


@pytest.mark.parametrize("processes", WORKER_COUNTS)
def test_bulk_shred(benchmark, processes):
    with BulkLoader(fresh_catalog(), processes=processes) as loader:
        loader.shred_batch(DOCUMENTS[:8])  # warm the pool
        benchmark.pedantic(
            lambda: loader.shred_batch(DOCUMENTS), rounds=3, iterations=1
        )


def test_e10_summary_table(benchmark):
    def build_table():
        table = ResultTable(
            f"E10 - bulk shredding, warm pool ({BATCH} documents)",
            ["workers", "seconds", "docs/second", "speedup"],
        )
        baseline = None
        for processes in WORKER_COUNTS:
            with BulkLoader(fresh_catalog(), processes=processes) as loader:
                loader.shred_batch(DOCUMENTS[:8])  # warm the pool
                seconds, _ = measure(lambda: loader.shred_batch(DOCUMENTS), repeat=3)
            if baseline is None:
                baseline = seconds
            table.add_row(
                processes, seconds, throughput(BATCH, seconds),
                f"{baseline / seconds:.2f}x",
            )
        emit("e10_bulk", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    assert len(table.rows) == len(WORKER_COUNTS)
    seconds = table.column_values("seconds")
    if (os.cpu_count() or 1) >= 4:
        # With real cores available, warm-pool parallel shredding must
        # recoup its IPC overhead.
        assert min(seconds[1:]) < seconds[0]
    else:
        # Single-core hosts can only show overhead; bound it so a
        # pathological serialization regression still fails the bench.
        assert min(seconds[1:]) < seconds[0] * 3


def test_e10_state_identical(benchmark):
    """Parallel loading must produce byte-identical catalog state."""

    def check():
        sequential = fresh_catalog()
        sequential.ingest_many(DOCUMENTS[:30])
        parallel = fresh_catalog()
        BulkLoader(parallel, processes=2).load(DOCUMENTS[:30])
        for table in ("clobs", "attributes", "elements", "attr_ancestors"):
            a = sorted(sequential.store.db.table(table).scan())
            b = sorted(parallel.store.db.table(table).scan())
            assert a == b, table
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
