"""E11 — Plan-simplification ablation (§4).

The paper notes the Fig-4 plan "can be significantly simplified" when
the queried attributes are single-instance and no sub-attribute
criteria exist.  This bench measures the simplified plan against the
general plan forced onto the same eligible queries, on both backends.
"""

import pytest

from repro.backends import SqliteHybridStore
from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op
from repro.bench import ResultTable, measure
from repro.grid import LeadCorpusGenerator, lead_schema

from _util import emit
from conftest import BASE_CONFIG

CORPUS = 200


def build_catalog(backend: str) -> HybridCatalog:
    store = SqliteHybridStore() if backend == "sqlite" else None
    catalog = HybridCatalog(lead_schema(), store=store)
    generator = LeadCorpusGenerator(BASE_CONFIG)
    generator.register_definitions(catalog)
    catalog.ingest_many(list(generator.documents(CORPUS)))
    return catalog


def simple_queries():
    """Eligible queries: single-instance structural attributes only."""
    return [
        ObjectQuery().add_attribute(
            AttributeCriteria("status").add_element("progress", "", "Complete")
        ),
        ObjectQuery().add_attribute(
            AttributeCriteria("citation").add_element("title", "", "Forecast", Op.CONTAINS)
        ),
        ObjectQuery().add_attribute(
            AttributeCriteria("status").add_element("progress", "", "In work")
        ).add_attribute(
            AttributeCriteria("citation").add_element("origin", "", "CAPS")
        ),
        ObjectQuery().add_attribute(AttributeCriteria("timeperd")),
    ]


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
@pytest.mark.parametrize("plan", ["simple", "general"])
def test_eligible_queries(benchmark, backend, plan):
    catalog = build_catalog(backend)
    shredded = [catalog.shred_query(q) for q in simple_queries()]
    assert all(s.simple for s in shredded)
    if plan == "general":
        for s in shredded:
            s.simple = False

    def run():
        for s in shredded:
            catalog.store.match_objects(s)

    benchmark(run)


def test_e11_summary_table(benchmark):
    def build_table():
        table = ResultTable(
            f"E11 - simplified vs general plan ({CORPUS} docs, ms per 4-query set)",
            ["backend", "simple", "general", "saving"],
        )
        for backend in ("memory", "sqlite"):
            catalog = build_catalog(backend)
            shredded = [catalog.shred_query(q) for q in simple_queries()]
            results_simple = [catalog.store.match_objects(s) for s in shredded]

            def run_simple():
                for s in shredded:
                    catalog.store.match_objects(s)

            simple_s, _ = measure(run_simple, repeat=5, number=10)
            for s in shredded:
                s.simple = False
            results_general = [catalog.store.match_objects(s) for s in shredded]
            assert results_simple == results_general  # identical answers

            def run_general():
                for s in shredded:
                    catalog.store.match_objects(s)

            general_s, _ = measure(run_general, repeat=5, number=10)
            saving = (1 - simple_s / general_s) * 100 if general_s else 0.0
            table.add_row(backend, simple_s * 1000, general_s * 1000, f"{saving:.0f}%")
        emit("e11_simple_plan", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    # The simplified plan must not be materially slower than the general
    # plan on eligible queries (sub-millisecond timings carry ~20%
    # jitter even amortized, so the bound allows noise but still fails
    # on a real regression).
    for row in table.rows:
        assert row[1] <= row[2] * 1.3, row
