"""E12 — Concurrent read path: reader pool, writer interleave, result
cache.

Extension experiment (not in the paper): the MCS service in §5 serves
many simultaneous clients, so the catalog grew a reader-connection pool
over one WAL database (reads parallelize, writes keep their S32
atomicity behind a single writer lock) and a write-invalidated result
cache.  Three tables:

* **scaling** — aggregate QPS and p50/p95 latency of fresh (cache
  bypassed) query execution as reader threads grow;
* **writer interleave** — the same read storm with a writer
  continuously ingesting and deleting: readers must keep answering;
* **warm vs cold** — a repeated fully-bound query served from the
  result cache against the same query executed from scratch.

Interpretation is machine-dependent: pooled readers only overlap with
real cores available (sqlite releases the GIL inside its C core); on a
single-core host the scaling rows document overhead instead and the
assertion degrades to a no-collapse bound.  The cache speedup is
core-count independent.
"""

import os
import tempfile
import threading

from repro.backends import SqliteHybridStore
from repro.bench import ResultTable, measure, throughput
from repro.core import HybridCatalog, PlanTrace
from repro.grid import LeadCorpusGenerator, WorkloadGenerator, lead_schema

from _util import emit
from conftest import BASE_CONFIG

CORPUS = 120
PER_THREAD = 40
THREAD_COUNTS = [1, 2, 4, 8]

DOCUMENTS = list(LeadCorpusGenerator(BASE_CONFIG).documents(CORPUS + 8))
WORKLOAD = WorkloadGenerator(BASE_CONFIG).mixed(8)


def build_catalog() -> HybridCatalog:
    path = os.path.join(tempfile.mkdtemp(prefix="repro-e12-"), "e12.db")
    catalog = HybridCatalog(lead_schema(), store=SqliteHybridStore(path))
    LeadCorpusGenerator(BASE_CONFIG).register_definitions(catalog)
    catalog.ingest_many(DOCUMENTS[:CORPUS])
    return catalog


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def read_storm(catalog, threads, use_cache=False):
    """``threads`` readers, ``PER_THREAD`` queries each (round-robin
    over the workload mix); returns (sorted latencies, wall seconds)."""
    import time

    barrier = threading.Barrier(threads + 1)
    latencies = [[] for _ in range(threads)]
    errors = []

    def worker(slot):
        try:
            barrier.wait()
            for i in range(PER_THREAD):
                query = WORKLOAD[(slot + i) % len(WORKLOAD)]
                trace = None if use_cache else PlanTrace()
                t0 = time.perf_counter()
                catalog.query(query, trace=trace)
                latencies[slot].append(time.perf_counter() - t0)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    workers = [threading.Thread(target=worker, args=(s,)) for s in range(threads)]
    for w in workers:
        w.start()
    barrier.wait()
    t0 = time.perf_counter()
    for w in workers:
        w.join()
    wall = time.perf_counter() - t0
    assert not errors, errors
    return sorted(lat for per in latencies for lat in per), wall


def test_e12_reader_scaling(benchmark):
    catalog = build_catalog()

    def build_table():
        table = ResultTable(
            f"E12 - concurrent readers, fresh execution (sqlite, {CORPUS} docs)",
            ["threads", "p50-ms", "p95-ms", "QPS", "speedup"],
        )
        baseline = None
        qps_by_threads = {}
        for threads in THREAD_COUNTS:
            flat, wall = read_storm(catalog, threads)
            qps = throughput(threads * PER_THREAD, wall)
            qps_by_threads[threads] = qps
            if baseline is None:
                baseline = qps
            table.add_row(
                threads,
                1000 * _percentile(flat, 0.50),
                1000 * _percentile(flat, 0.95),
                qps,
                f"{qps / baseline:.2f}x",
            )
        emit("e12_concurrency", table)
        return table, qps_by_threads

    table, qps = benchmark.pedantic(build_table, rounds=1, iterations=1)
    assert len(table.rows) == len(THREAD_COUNTS)
    if (os.cpu_count() or 1) >= 4:
        # Pooled readers over WAL must actually overlap on real cores.
        assert qps[4] >= 2.0 * qps[1], qps
    else:
        # Single-core hosts cannot overlap; bound the contention tax so
        # a lock-convoy regression still fails the bench.
        assert qps[4] >= 0.3 * qps[1], qps


def test_e12_writer_interleave(benchmark):
    catalog = build_catalog()

    def build_table():
        table = ResultTable(
            "E12 - readers with concurrent writer (sqlite)",
            ["threads", "p50-ms", "p95-ms", "QPS", "writes"],
        )
        for threads in (1, 4):
            stop = threading.Event()
            writes = [0]

            def writer():
                spare = DOCUMENTS[CORPUS:]
                while not stop.is_set():
                    receipts = [catalog.ingest(doc) for doc in spare]
                    for receipt in receipts:
                        catalog.delete(receipt.object_id)
                    writes[0] += 2 * len(receipts)

            thread = threading.Thread(target=writer)
            thread.start()
            try:
                flat, wall = read_storm(catalog, threads)
            finally:
                stop.set()
                thread.join()
            table.add_row(
                threads,
                1000 * _percentile(flat, 0.50),
                1000 * _percentile(flat, 0.95),
                throughput(threads * PER_THREAD, wall),
                writes[0],
            )
        emit("e12_concurrency", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    # Readers made progress while the writer churned, and the catalog
    # ends where it started (every ingest was paired with a delete).
    assert all(row[3] > 0 for row in table.rows)
    assert catalog.store.object_count() == CORPUS


def test_e12_cache_warm_vs_cold(benchmark):
    catalog = build_catalog()
    query = WORKLOAD[0]

    def build_table():
        table = ResultTable(
            "E12 - result cache, warm hit vs cold miss (sqlite; ms)",
            ["path", "ms", "speedup"],
        )
        def cold():
            catalog.result_cache.clear()
            catalog.query(query)

        cold_s, _ = measure(cold, repeat=5)
        catalog.query(query)  # prime
        warm_s, _ = measure(lambda: catalog.query(query), repeat=5, number=50)
        table.add_row("cold miss (execute + store)", 1000 * cold_s, "1.00x")
        table.add_row("warm hit (cached ids)", 1000 * warm_s,
                      f"{cold_s / warm_s:.2f}x")
        emit("e12_concurrency", table)
        return cold_s, warm_s

    cold_s, warm_s = benchmark.pedantic(build_table, rounds=1, iterations=1)
    # The whole point of memoizing results: a warm hit skips plan
    # execution entirely.  10x is conservative on every host.
    assert warm_s * 10 <= cold_s, (warm_s, cold_s)
