"""E13 — Profiling overhead: the observability layer must be ~free.

PR 6 threads instrumentation through every query stage (per-stage
clocks), the RWLock, the reader pool, and the catalog facade (audit
events, slow-query profiles).  The acceptance budget:

* **disabled** (no active profile, no event log bound) the cost is one
  ``ContextVar.get`` per query plus a ``None`` check per stage — ≤ 1 %
  of the E1-style ingest/query paths;
* **enabled** (``profile=True`` / events + slow threshold bound) the
  per-stage ``perf_counter`` pairs and the audit record must stay ≤ 5 %.

Measured best-of-N on the E1 corpus: an ingest batch and a query batch
under baseline vs fully-armed telemetry, plus a microbench of the
disabled-path primitive itself.
"""

import tempfile
from pathlib import Path

import pytest

from repro.bench import ResultTable, measure, throughput
from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op
from repro.grid import LeadCorpusGenerator, lead_schema
from repro.obs import EventLog, MetricsRegistry
from repro.obs.profile import current_profile

from _util import emit
from conftest import BASE_CONFIG

BATCH = 25
QUERY_REPS = 200

DOCUMENTS = list(LeadCorpusGenerator(BASE_CONFIG).documents(BATCH))

#: The enabled-path budget of the acceptance criteria (fraction).
ENABLED_BUDGET = 0.05
#: The disabled-path budget: the contextvar get per instrumentation
#: point, relative to the work it gates (fraction).
DISABLED_BUDGET = 0.01


def _fresh_catalog(events=None, slow_threshold=None):
    catalog = HybridCatalog(
        lead_schema(),
        metrics=MetricsRegistry(),
        events=events,
        slow_query_threshold=slow_threshold,
    )
    LeadCorpusGenerator(BASE_CONFIG).register_definitions(catalog)
    return catalog


def _query():
    return ObjectQuery().add_attribute(
        AttributeCriteria("theme").add_element(
            "themekey", "", "marker_sel_20", Op.EQ
        )
    )


def _ingest_batch(events=None, slow_threshold=None):
    catalog = _fresh_catalog(events=events, slow_threshold=slow_threshold)
    catalog.ingest_many(DOCUMENTS)
    return catalog


def _query_batch(catalog, profile):
    query = _query()
    for _ in range(QUERY_REPS):
        # A fresh trace bypasses the result cache so every rep
        # exercises the plan stages the profiler instruments.
        from repro.core import PlanTrace

        catalog.query(query, trace=PlanTrace(), profile=profile)


def test_e13_profiling_overhead(benchmark, tmp_path):
    def build_table():
        table = ResultTable(
            f"E13 - profiling overhead ({BATCH} docs ingest, "
            f"{QUERY_REPS} uncached queries)",
            ["path", "mode", "seconds", "overhead %"],
        )

        # -- ingest: baseline vs fully-armed telemetry ----------------
        base_ingest, _ = measure(lambda: _ingest_batch(), repeat=3)
        sidecar = Path(tempfile.mkdtemp()) / "e13.events.jsonl"

        def armed_ingest():
            with EventLog(sidecar) as log:
                return _ingest_batch(events=log, slow_threshold=0.5)

        armed_ingest_s, _ = measure(armed_ingest, repeat=3)
        ingest_overhead = max(0.0, armed_ingest_s / base_ingest - 1.0)
        table.add_row("e1 ingest", "baseline", base_ingest, 0.0)
        table.add_row("e1 ingest", "events+slow-threshold",
                      armed_ingest_s, 100.0 * ingest_overhead)

        # -- query: baseline vs per-stage profiling -------------------
        catalog = _ingest_batch()
        base_query, _ = measure(
            lambda: _query_batch(catalog, profile=False), repeat=3
        )
        profiled_query, _ = measure(
            lambda: _query_batch(catalog, profile=True), repeat=3
        )
        query_overhead = max(0.0, profiled_query / base_query - 1.0)
        table.add_row("query", "baseline", base_query, 0.0)
        table.add_row("query", "profile=True",
                      profiled_query, 100.0 * query_overhead)

        # -- the disabled-path primitive ------------------------------
        # All the disabled path adds per query is one contextvar get
        # (plus a None check per stage); relate its cost to one
        # baseline query execution.
        reps = 10_000
        get_cost, _ = measure(
            lambda: [current_profile() for _ in range(reps)], repeat=3
        )
        per_get = get_cost / reps
        per_query = base_query / QUERY_REPS
        disabled_fraction = per_get / per_query
        table.add_row("query", "disabled (ContextVar.get)",
                      per_get, 100.0 * disabled_fraction)

        emit("e13_profiling", table)

        assert ingest_overhead <= ENABLED_BUDGET, (
            f"telemetry-armed ingest overhead {ingest_overhead:.2%} "
            f"exceeds the {ENABLED_BUDGET:.0%} budget"
        )
        assert query_overhead <= ENABLED_BUDGET, (
            f"profiled query overhead {query_overhead:.2%} "
            f"exceeds the {ENABLED_BUDGET:.0%} budget"
        )
        assert disabled_fraction <= DISABLED_BUDGET, (
            f"disabled-path cost {disabled_fraction:.2%} of a query "
            f"exceeds the {DISABLED_BUDGET:.0%} budget"
        )
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    assert len(table.rows) == 5


def test_e13_throughput_sanity(benchmark):
    """The armed catalog still ingests at the same order of magnitude
    (guards against an accidentally hot event path)."""

    def run():
        with EventLog() as log:  # memory-only: no disk in the loop
            catalog = _ingest_batch(events=log, slow_threshold=0.5)
        return catalog

    def check(catalog):
        assert len(catalog) == BATCH

    catalog = benchmark.pedantic(run, rounds=3, iterations=1)
    check(catalog)
    seconds, _ = measure(run, repeat=1)
    assert throughput(BATCH, seconds) > 1  # docs/second, sanity floor
