"""E14 — Sharded catalog: scatter-gather scaling and wrapper overhead.

Extension experiment (not in the paper), continuing E12: partition one
catalog across N sqlite WAL databases and federate queries by
scatter-gather.  Each shard holds ~1/N of the corpus, every federated
query runs its unchanged logical plan on all shards concurrently, and
the per-shard id lists k-way merge into the global answer.  Two tables:

* **scaling** — single-stream cold-path (result cache bypassed) QPS as
  the shard count grows over a fixed corpus; the speedup column is the
  federation's win from scanning 1/N of the rows per leg in parallel;
* **wrapper overhead** — the N=1 degenerate federation against a plain
  catalog on the same store: the facade must cost ≈ nothing when there
  is nothing to federate (it delegates inline, no executor hop).

Interpretation is machine-dependent like E12: legs only overlap with
real cores available, so on a single-core host the scaling assertion
degrades to a no-collapse bound while the overhead bound still holds.
"""

import os
import tempfile

from repro.bench import ResultTable, measure, throughput
from repro.core import HybridCatalog, PlanTrace
from repro.grid import LeadCorpusGenerator, WorkloadGenerator, lead_schema
from repro.sharding import ShardedCatalog

from _util import emit
from conftest import BASE_CONFIG

CORPUS = 1000
SHARD_COUNTS = [1, 2, 4]
PASSES = 6  # cold single-stream passes over the workload mix per timing

DOCUMENTS = list(LeadCorpusGenerator(BASE_CONFIG).documents(CORPUS))
WORKLOAD = WorkloadGenerator(BASE_CONFIG).mixed(8)


def build_sharded(shards: int) -> ShardedCatalog:
    base = os.path.join(tempfile.mkdtemp(prefix="repro-e14-"), "e14.db")
    catalog = ShardedCatalog(lead_schema(), shards=shards, path=base)
    LeadCorpusGenerator(BASE_CONFIG).register_definitions(catalog)
    catalog.ingest_many(DOCUMENTS)
    return catalog


def build_plain() -> HybridCatalog:
    from repro.backends import SqliteHybridStore

    path = os.path.join(tempfile.mkdtemp(prefix="repro-e14-"), "plain.db")
    catalog = HybridCatalog(lead_schema(), store=SqliteHybridStore(path))
    LeadCorpusGenerator(BASE_CONFIG).register_definitions(catalog)
    catalog.ingest_many(DOCUMENTS)
    return catalog


def cold_pass(catalog) -> int:
    """One single-stream pass over the workload mix with the result
    cache bypassed (a trace forces fresh execution on every shard)."""
    answered = 0
    for query in WORKLOAD:
        catalog.query(query, trace=PlanTrace())
        answered += 1
    return answered


def test_e14_shard_scaling(benchmark):
    catalogs = {shards: build_sharded(shards) for shards in SHARD_COUNTS}

    def build_table():
        table = ResultTable(
            f"E14 - scatter-gather scaling, cold single stream "
            f"(sqlite, {CORPUS} docs)",
            ["shards", "ms/query", "QPS", "speedup"],
        )
        baseline = None
        qps_by_shards = {}
        for shards in SHARD_COUNTS:
            catalog = catalogs[shards]
            cold_pass(catalog)  # warm sqlite page caches + plan cache
            seconds, _ = measure(lambda: cold_pass(catalog), repeat=PASSES)
            qps = throughput(len(WORKLOAD), seconds)
            qps_by_shards[shards] = qps
            if baseline is None:
                baseline = qps
            table.add_row(
                shards,
                1000 * seconds / len(WORKLOAD),
                qps,
                f"{qps / baseline:.2f}x",
            )
        emit("e14_sharding", table)
        return table, qps_by_shards

    table, qps = benchmark.pedantic(build_table, rounds=1, iterations=1)
    assert len(table.rows) == len(SHARD_COUNTS)
    if (os.cpu_count() or 1) >= 4:
        # Four quarter-size legs running concurrently must beat one
        # full-size scan by a real margin.
        assert qps[4] >= 1.5 * qps[1], qps
    else:
        # Single-core hosts cannot overlap legs; bound the fan-out tax
        # so an executor-contention regression still fails the bench
        # (four serialized quarter-size legs land near parity here).
        assert qps[4] >= 0.45 * qps[1], qps
    for catalog in catalogs.values():
        catalog.close()


def test_e14_single_shard_wrapper_overhead(benchmark):
    plain = build_plain()
    sharded = build_sharded(1)

    def build_table():
        table = ResultTable(
            "E14 - N=1 federation overhead vs plain catalog (cold; ms)",
            ["catalog", "ms/pass", "relative"],
        )
        cold_pass(plain)  # warm both before either timing runs
        cold_pass(sharded)
        plain_s, _ = measure(lambda: cold_pass(plain), repeat=PASSES)
        sharded_s, _ = measure(lambda: cold_pass(sharded), repeat=PASSES)
        table.add_row("plain HybridCatalog", 1000 * plain_s, "1.00x")
        table.add_row("ShardedCatalog(shards=1)", 1000 * sharded_s,
                      f"{sharded_s / plain_s:.2f}x")
        emit("e14_sharding", table)
        return plain_s, sharded_s

    plain_s, sharded_s = benchmark.pedantic(build_table, rounds=1, iterations=1)
    # The acceptance bound: the degenerate federation may cost at most
    # 5% over the catalog it wraps (inline delegation, no executor).
    assert sharded_s <= 1.05 * plain_s, (sharded_s, plain_s)
    plain.store.close()
    sharded.close()
