"""E15 — Columnar batch execution vs the row-at-a-time interpreter.

Extension experiment (not in the paper): the relational engine stores
tables as parallel value columns with a validity bitmap, and the IR
interpreter runs bitmap/selection-vector kernels over them instead of
per-row tuple loops.  The retained row-at-a-time reference interpreter
(``match_objects_memory_rows``) executes the *same* logical plans over
the *same* store, so the gap between the two is pure execution-model
speedup — no caching, no plan differences.

Two tables:

* **cold match latency** — pre-built plans interpreted from scratch
  (result cache bypassed) at E2 corpus scales, batch vs rows, with the
  speedup ratio; the sqlite compiler on the same corpus anchors the
  absolute scale.
* **scan/delete throughput** — full-column predicate scans and a bulk
  ``delete_where`` on the shredded element table, where one-pass
  columnar kernels replace per-row closure dispatch.

Assertion: batch interpretation is >= 2x faster than row-at-a-time at
the largest corpus, with identical results.
"""

import pytest

from repro.backends import SqliteHybridStore
from repro.bench import ResultTable, measure
from repro.core import HybridCatalog, shred_query
from repro.core.planner import match_objects_memory, match_objects_memory_rows
from repro.grid import LeadCorpusGenerator, WorkloadGenerator, lead_schema
from repro.relational import eq, gt

from _util import emit
from conftest import BASE_CONFIG

SIZES = [150, 450]
N_QUERIES = 10

DOCUMENTS = list(LeadCorpusGenerator(BASE_CONFIG).documents(max(SIZES)))
WORKLOAD = WorkloadGenerator(BASE_CONFIG).mixed(N_QUERIES)


def build_memory(size):
    catalog = HybridCatalog(lead_schema())
    LeadCorpusGenerator(BASE_CONFIG).register_definitions(catalog)
    catalog.ingest_many(DOCUMENTS[:size])
    return catalog


def build_sqlite(size):
    catalog = HybridCatalog(lead_schema(), store=SqliteHybridStore())
    LeadCorpusGenerator(BASE_CONFIG).register_definitions(catalog)
    catalog.ingest_many(DOCUMENTS[:size])
    return catalog


def built_plans(catalog):
    """The workload's logical plans, built once so both interpreters pay
    zero planning cost inside the timed region."""
    plans = []
    for query in WORKLOAD:
        shredded = shred_query(query, catalog.registry)
        plan, _hit = catalog.plan_for(shredded)
        plans.append(plan)
    return plans


def test_e15_cold_match_latency(benchmark):
    def build_table():
        table = ResultTable(
            f"E15 - cold match latency (ms per {N_QUERIES}-query mix)",
            ["documents", "batch", "rows", "speedup", "sqlite"],
        )
        final_speedup = 0.0
        for size in SIZES:
            catalog = build_memory(size)
            plans = built_plans(catalog)
            store = catalog.store

            batch_results = [match_objects_memory(store, p) for p in plans]
            row_results = [match_objects_memory_rows(store, p) for p in plans]
            assert batch_results == row_results

            batch_s, _ = measure(
                lambda: [match_objects_memory(store, p) for p in plans],
                repeat=3,
            )
            rows_s, _ = measure(
                lambda: [match_objects_memory_rows(store, p) for p in plans],
                repeat=3,
            )
            sqlite_catalog = build_sqlite(size)
            sqlite_s, _ = measure(
                lambda: [sqlite_catalog.store.match_objects(p) for p in plans],
                repeat=3,
            )
            final_speedup = rows_s / batch_s
            table.add_row(
                size,
                batch_s * 1000.0,
                rows_s * 1000.0,
                final_speedup,
                sqlite_s * 1000.0,
            )
        emit("e15_columnar", table)
        return table, final_speedup

    table, speedup = benchmark.pedantic(build_table, rounds=1, iterations=1)
    # The acceptance bar: columnar interpretation at the largest corpus
    # is at least twice as fast as the row-at-a-time reference.
    assert speedup >= 2.0, (
        f"columnar speedup {speedup:.2f}x below the 2x bar"
    )


def test_e15_scan_and_bulk_delete(benchmark):
    def build_table():
        table = ResultTable(
            "E15 - columnar table ops (ms, elements table)",
            ["documents", "scan_filter", "bulk_delete"],
        )
        for size in SIZES:
            catalog = build_memory(size)
            elements = catalog.store.db.table("elements")

            scan_s, _ = measure(
                lambda: elements.matching_rowids(gt("value_num", 0.0)),
                repeat=3,
            )

            def bulk_delete():
                catalog.store.db.begin()
                elements.delete_where(eq("attr_id", -1) | gt("seq_id", 0))
                catalog.store.db.rollback()

            delete_s, _ = measure(bulk_delete, repeat=3)
            table.add_row(size, scan_s * 1000.0, delete_s * 1000.0)
        emit("e15_columnar", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    scans = table.column_values("scan_filter")
    # Scans stay roughly linear in corpus size (no quadratic blowup).
    assert scans[-1] < scans[0] * (SIZES[-1] / SIZES[0]) * 4


@pytest.mark.parametrize("interpreter", ["batch", "rows"])
def test_e15_interpreter_microbench(benchmark, interpreter):
    catalog = build_memory(SIZES[0])
    plans = built_plans(catalog)
    store = catalog.store
    fn = match_objects_memory if interpreter == "batch" else match_objects_memory_rows

    def run():
        for plan in plans:
            fn(store, plan)

    benchmark(run)
