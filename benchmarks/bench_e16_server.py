"""E16 — Multi-user catalog server: QPS and tail latency under load.

Extension experiment (not in the paper): the threaded HTTP front-end
from ``repro.server`` hosting one in-memory catalog behind per-user
session tokens.  The harness seeds **10,000 registered users** (each
with an open session token), then drives the server with 16 concurrent
HTTP client threads issuing a mixed read workload — visibility-filtered
queries, document fetches, and streamed paginated searches —
round-robin across every user token, so each request authenticates as
a different simulated user.

The table reports sustained QPS and the p50/p95 request latency seen
by the clients.  The structural acceptance bar (asserted, CI-safe) is
zero 5xx responses and every user token exercised at least once; the
absolute numbers are machine-dependent and recorded for trajectory
tracking, not asserted.
"""

import threading
import time

from repro.bench import ResultTable
from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery
from repro.grid import FIG3_DOCUMENT, MyLeadService, lead_schema
from repro.server import CatalogClient, CatalogServer, ServerConfig, query_to_payload

from _util import emit

USERS = 10_000
THREADS = 16
REQUESTS = 10_400  # > USERS so the round-robin covers every token
SEED_FILES = 8


def build_server():
    """An in-memory catalog with a small published corpus, 10k users,
    and one open session per user."""
    catalog = HybridCatalog(lead_schema())
    service = MyLeadService(lead_schema(), catalog)
    seed = service.create_user("seed").name
    experiment = service.create_experiment(seed, "corpus")
    object_ids = []
    for i in range(SEED_FILES):
        receipt = service.add_file(seed, experiment, FIG3_DOCUMENT, name=f"f{i}")
        service.publish(seed, receipt.object_id)
        object_ids.append(receipt.object_id)
    server = CatalogServer(service, ServerConfig()).start()
    tokens = []
    for i in range(USERS):
        user = f"user-{i}"
        service.create_user(user)
        tokens.append(server.sessions.open(user))
    return service, server, tokens, object_ids


def theme_payload():
    query = ObjectQuery().add_attribute(AttributeCriteria("theme"))
    return query_to_payload(query)


def test_e16_server_load(benchmark):
    service, server, tokens, object_ids = build_server()
    payload = theme_payload()
    statuses = [0] * REQUESTS
    latencies = [0.0] * REQUESTS
    per_thread = REQUESTS // THREADS

    def worker(thread_index):
        with CatalogClient(server.host, server.port) as client:
            start = thread_index * per_thread
            stop = REQUESTS if thread_index == THREADS - 1 else start + per_thread
            for i in range(start, stop):
                client.token = tokens[i % USERS]
                if i % 10 == 9:
                    method_args = ("POST", "/v1/search",
                                   {"query": payload, "limit": 2})
                elif i % 10 == 4:
                    method_args = ("POST", "/v1/fetch",
                                   {"ids": [object_ids[i % SEED_FILES]]})
                else:
                    method_args = ("POST", "/v1/query", {"query": payload})
                t0 = time.perf_counter()
                status, _headers, _data = client.request(*method_args)
                latencies[i] = time.perf_counter() - t0
                statuses[i] = status

    def run_storm():
        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(THREADS)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return time.perf_counter() - t0

    def build_table():
        elapsed = run_storm()
        ordered = sorted(latencies)
        p50 = ordered[len(ordered) // 2]
        p95 = ordered[int(len(ordered) * 0.95)]
        table = ResultTable(
            f"E16 - threaded HTTP server, {USERS} simulated users "
            f"({THREADS} client threads, mixed query/fetch/search)",
            ["users", "threads", "requests", "QPS", "p50 ms", "p95 ms"],
        )
        table.add_row(
            USERS, THREADS, REQUESTS,
            REQUESTS / elapsed, 1000 * p50, 1000 * p95,
        )
        emit("e16_server", table)
        return table

    try:
        table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    finally:
        server.close()

    assert len(table.rows) == 1
    bad = [s for s in statuses if s >= 500]
    assert bad == [], f"{len(bad)} 5xx responses under load"
    assert all(s == 200 for s in statuses), sorted(set(statuses))
    # Every simulated user authenticated at least once.
    assert REQUESTS >= USERS
    # Handler threads record the request metric just after the response
    # bytes go out, so give stragglers a moment before asserting.
    requests_counter = service.catalog.metrics.get("server_requests_total")
    for _ in range(100):
        served = sum(m.value for _labels, m in requests_counter.series())
        if served >= REQUESTS:
            break
        time.sleep(0.05)
    assert served >= REQUESTS, served
