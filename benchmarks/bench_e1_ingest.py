"""E1 — Ingest throughput: hybrid vs inlining vs edge vs CLOB.

Paper context: the hybrid scheme stores every metadata attribute twice
(CLOB + shredded rows), so its ingest cost is expected to sit above the
single-representation schemes, with CLOB-only cheapest (one insert per
document).  This quantifies the write-side price of the architecture
whose read-side benefits E2/E3 measure.
"""

import pytest

from repro.bench import ResultTable, empty_schemes, measure, throughput
from repro.grid import LeadCorpusGenerator

from _util import emit
from conftest import BASE_CONFIG

BATCH = 25

DOCUMENTS = list(LeadCorpusGenerator(BASE_CONFIG).documents(BATCH))


@pytest.mark.parametrize("scheme_name", ["hybrid", "inlining", "edge", "clob"])
def test_ingest_batch(benchmark, scheme_name):
    def setup():
        schemes = empty_schemes(BASE_CONFIG, schemes=[scheme_name])
        return (schemes[scheme_name],), {}

    def run(scheme):
        scheme.ingest_many(DOCUMENTS)

    benchmark.pedantic(run, setup=setup, rounds=5)


def test_e1_summary_table(benchmark):
    """Regenerates the E1 comparison table (docs/second per scheme)."""

    def build_table():
        table = ResultTable(
            f"E1 - ingest throughput ({BATCH} documents/batch)",
            ["scheme", "seconds/batch", "docs/second"],
        )
        for name in ("hybrid", "inlining", "edge", "clob"):
            def run():
                scheme = empty_schemes(BASE_CONFIG, schemes=[name])[name]
                scheme.ingest_many(DOCUMENTS)
                return scheme

            seconds, _ = measure(run, repeat=3)
            table.add_row(name, seconds, throughput(BATCH, seconds))
        emit("e1_ingest", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    assert len(table.rows) == 4
