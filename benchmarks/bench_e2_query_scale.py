"""E2 — Attribute-query latency vs catalog size.

Paper claim (§4, §6): queries over metadata attributes hit the shredded
tables through indexes, so hybrid latency should stay near-flat as the
catalog grows; the CLOB-only scheme parses every stored document per
query (linear in corpus size), and the edge scheme pays per-level
navigation over an ever-larger edge table.  The crossover the paper
implies: CLOB-only is competitive at tiny catalogs and loses badly at
scale.
"""

import pytest

from repro.bench import ResultTable, build_schemes, measure
from repro.grid import WorkloadGenerator

from _util import emit
from conftest import BASE_CONFIG

SIZES = [50, 150, 450]
N_QUERIES = 10

WORKLOAD = WorkloadGenerator(BASE_CONFIG).mixed(N_QUERIES)


@pytest.mark.parametrize("scheme_name", ["hybrid", "inlining", "edge", "clob"])
def test_query_mixed_mid_corpus(benchmark, loaded_schemes, scheme_name):
    scheme = loaded_schemes[scheme_name]

    def run():
        for query in WORKLOAD:
            scheme.query(query)

    benchmark(run)


def test_e2_summary_table(benchmark):
    def build_table():
        table = ResultTable(
            f"E2 - query latency vs catalog size (ms per {N_QUERIES}-query mix)",
            ["documents", "hybrid", "inlining", "edge", "clob"],
        )
        for size in SIZES:
            schemes = build_schemes(BASE_CONFIG, size)
            row = [size]
            for name in ("hybrid", "inlining", "edge", "clob"):
                scheme = schemes[name]

                def run(s=scheme):
                    for query in WORKLOAD:
                        s.query(query)

                seconds, _ = measure(run, repeat=3)
                row.append(seconds * 1000.0)
            table.add_row(*row)
        emit("e2_query_scale", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    # Shape check: CLOB-scan latency must grow roughly linearly with
    # corpus size while hybrid grows far slower.
    clob = table.column_values("clob")
    hybrid = table.column_values("hybrid")
    assert clob[-1] / clob[0] > 3.0
    assert hybrid[-1] < clob[-1]
