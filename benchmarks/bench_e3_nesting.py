"""E3 — Query cost vs dynamic-attribute nesting depth.

Paper claim (§3, §6): in the hybrid scheme the recursion of dynamic
attributes "disappears" — sub-attribute containment is answered by the
inverted list in one join regardless of depth — whereas the edge table
walks one self-join per nesting level and the CLOB scheme re-parses the
recursive structure every query.  Expected shape: hybrid latency flat
in depth; edge and CLOB grow with depth.
"""

import pytest

from repro.bench import ResultTable, build_schemes, measure
from repro.grid import CorpusConfig, WorkloadGenerator

from _util import emit

DEPTHS = [1, 2, 4, 6]
CORPUS = 60
N_QUERIES = 6


def config_for(depth: int) -> CorpusConfig:
    return CorpusConfig(
        seed=2006,
        themes=1,
        keys_per_theme=2,
        dynamic_groups=1,
        params_per_group=4,
        dynamic_depth=depth + 1,  # depth = nesting levels below the group
    )


def queries_for(depth: int):
    config = config_for(depth)
    workload = WorkloadGenerator(config)
    return [workload.nested_query(i, depth=depth) for i in range(N_QUERIES)]


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.parametrize("scheme_name", ["hybrid", "edge", "clob"])
def test_nested_query(benchmark, scheme_name, depth):
    schemes = build_schemes(config_for(depth), CORPUS, schemes=[scheme_name])
    scheme = schemes[scheme_name]
    workload = queries_for(depth)

    def run():
        for query in workload:
            scheme.query(query)

    benchmark(run)


def test_e3_summary_table(benchmark):
    def build_table():
        table = ResultTable(
            f"E3 - nested dynamic queries (ms per {N_QUERIES}-query set, {CORPUS} docs)",
            ["depth", "hybrid", "edge", "clob"],
        )
        for depth in DEPTHS:
            schemes = build_schemes(config_for(depth), CORPUS,
                                    schemes=["hybrid", "edge", "clob"])
            workload = queries_for(depth)
            row = [depth]
            for name in ("hybrid", "edge", "clob"):
                scheme = schemes[name]

                def run(s=scheme):
                    for query in workload:
                        s.query(query)

                seconds, _ = measure(run, repeat=3)
                row.append(seconds * 1000.0)
            table.add_row(*row)
        emit("e3_nesting", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    hybrid = table.column_values("hybrid")
    edge = table.column_values("edge")
    # The §6 claim is about the edge table's per-level self-joins: edge
    # cost must grow with depth while the hybrid's inverted-list join
    # keeps its cost an order of magnitude below edge at every depth.
    # (Hybrid's own sub-millisecond times are too noisy for a growth
    # ratio; the absolute gap is the robust signal.)
    assert edge[-1] > 2 * edge[0]
    assert all(h * 5 < e for h, e in zip(hybrid, edge))
