"""E4 — Response construction time vs result-set size.

Paper claim (§5): responses are assembled by set-based operations over
the CLOB keys, the ancestor inverted list and the global-ordering table
— "no final tagging is needed at the server" — and the CLOBs themselves
are not touched until the final join.  Comparators: the inlining scheme
must re-join its tables and rebuild each tree through an external
tagger; the edge scheme rebuilds node-by-node; CLOB passthrough is the
lower bound (returns stored text directly).
"""

import pytest

from repro.bench import ResultTable, measure

from _util import emit
from conftest import MID_CORPUS

RESULT_SIZES = [1, 10, 50, 150]


@pytest.mark.parametrize("scheme_name", ["hybrid", "inlining", "edge", "clob"])
def test_fetch_fifty(benchmark, loaded_schemes, scheme_name):
    scheme = loaded_schemes[scheme_name]
    ids = list(range(1, 51))
    benchmark(lambda: scheme.fetch(ids))


def test_e4_summary_table(benchmark, loaded_schemes):
    def build_table():
        table = ResultTable(
            "E4 - response construction (ms per result set)",
            ["objects", "hybrid", "inlining", "edge", "clob"],
        )
        for size in RESULT_SIZES:
            ids = list(range(1, min(size, MID_CORPUS) + 1))
            row = [len(ids)]
            for name in ("hybrid", "inlining", "edge", "clob"):
                scheme = loaded_schemes[name]
                seconds, _ = measure(lambda s=scheme: s.fetch(ids), repeat=3)
                row.append(seconds * 1000.0)
            table.add_row(*row)
        emit("e4_response", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    # Shape: hybrid rebuilds faster than the tree-rebuilding schemes at
    # every size; CLOB passthrough is the floor.
    last = table.rows[-1]
    _objects, hybrid, inlining, edge, clob = last
    assert hybrid < edge
    assert clob <= hybrid
