"""E5 — Storage overhead of the dual (CLOB + rows) representation.

Paper context (§2, §6): the hybrid stores each metadata attribute both
verbatim and shredded — deliberately redundant.  §6 argues the overhead
stays bounded because only one attribute exists on any root-to-leaf
path (unlike [15], which CLOBs every interior node).  This experiment
reports bytes and rows per scheme, plus the hybrid:clob ratio as the
redundancy factor.
"""

import pytest

from repro.bench import ResultTable

from _util import emit
from conftest import MID_CORPUS


def test_e5_summary_table(benchmark, loaded_schemes):
    def build_table():
        table = ResultTable(
            f"E5 - storage footprint ({MID_CORPUS} documents)",
            ["scheme", "rows", "bytes", "bytes/doc", "vs clob"],
        )
        clob_bytes = loaded_schemes["clob"].total_bytes()
        for name in ("hybrid", "inlining", "edge", "clob"):
            scheme = loaded_schemes[name]
            total = scheme.total_bytes()
            table.add_row(
                name,
                scheme.total_rows(),
                total,
                total / MID_CORPUS,
                f"{total / clob_bytes:.2f}x",
            )
        emit("e5_storage", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    by_name = {row[0]: row[2] for row in table.rows}
    # The dual representation costs more than raw text but must stay
    # within a small constant factor of it (single attribute per path).
    assert by_name["hybrid"] > by_name["clob"]
    assert by_name["hybrid"] < 4 * by_name["clob"]


def test_e5_breakdown_table(benchmark, loaded_schemes):
    """Per-table breakdown of the hybrid store: how the footprint splits
    between the CLOB side and the query side."""

    def build_table():
        table = ResultTable(
            "E5 - hybrid store per-table breakdown",
            ["table", "rows", "bytes"],
        )
        for name, rows, size in loaded_schemes["hybrid"].storage_report():
            table.add_row(name, rows, size)
        emit("e5_storage", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    names = [row[0] for row in table.rows]
    assert "clobs" in names and "elements" in names
