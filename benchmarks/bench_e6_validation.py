"""E6 — Dynamic-attribute validation overhead on insert.

Paper claim (§3): "The shredding validates the name and source of each
dynamic metadata attribute with the definitions stored in the catalog"
— validation on insert is what makes queries trustworthy without
runtime checks.  This experiment measures shredding with definitions
present (validated + shredded) versus absent (CLOB-only fallback)
versus auto-defining, as the share of dynamic content grows.
"""

import pytest

from repro.core import HybridCatalog, Shredder
from repro.bench import ResultTable, measure
from repro.grid import CorpusConfig, LeadCorpusGenerator, lead_schema
from repro.xmlkit import parse

from _util import emit

DYNAMIC_GROUPS = [0, 1, 2, 4]
BATCH = 20


def corpus_for(groups: int):
    config = CorpusConfig(seed=99, themes=1, keys_per_theme=2,
                          dynamic_groups=groups, params_per_group=6,
                          dynamic_depth=2)
    generator = LeadCorpusGenerator(config)
    return generator, [parse(d) for d in generator.documents(BATCH)]


def shredder_with_defs(generator, on_unknown="store"):
    catalog = HybridCatalog(lead_schema(), on_unknown=on_unknown)
    generator.register_definitions(catalog)
    return catalog.shredder


def shredder_without_defs(on_unknown="store"):
    catalog = HybridCatalog(lead_schema(), on_unknown=on_unknown)
    return catalog.shredder


@pytest.mark.parametrize("groups", DYNAMIC_GROUPS)
def test_validated_shred(benchmark, groups):
    generator, documents = corpus_for(groups)
    shredder = shredder_with_defs(generator)

    def run():
        for document in documents:
            shredder.shred(document)

    benchmark(run)


def test_e6_summary_table(benchmark):
    def build_table():
        table = ResultTable(
            f"E6 - shred time vs dynamic share (ms per {BATCH}-doc batch)",
            ["dynamic_groups", "validated", "store-only", "auto-define"],
        )
        for groups in DYNAMIC_GROUPS:
            generator, documents = corpus_for(groups)
            validated = shredder_with_defs(generator)
            store_only = shredder_without_defs()

            def run_validated():
                for document in documents:
                    validated.shred(document)

            def run_store_only():
                for document in documents:
                    store_only.shred(document)

            def run_auto():
                # Auto-define pays registration on first sight only; a
                # fresh registry per run keeps that cost visible.
                auto = shredder_without_defs(on_unknown="define")
                for document in documents:
                    auto.shred(document)

            v, _ = measure(run_validated, repeat=3)
            s, _ = measure(run_store_only, repeat=3)
            a, _ = measure(run_auto, repeat=3)
            table.add_row(groups, v * 1000, s * 1000, a * 1000)
        emit("e6_validation", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    # Validation must not dominate: validated shredding stays within a
    # small factor of the store-only fallback even at max dynamic share.
    last = table.rows[-1]
    assert last[1] < 5 * last[2]
