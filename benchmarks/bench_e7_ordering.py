"""E7 — Ordering ablation: schema-level vs per-document orderings [19].

Paper claim (§2, §6): because everything repeatable lives inside
metadata attributes, one ordering computed per *schema* replaces the
per-document total orderings of Tatarinov et al., and "we avoid the
update costs of maintaining a total ordering by document".  This
experiment measures (a) key-assignment time per document and (b) the
number of keys rewritten by a middle insert, for all four strategies.
"""

import pytest

from repro.core import (
    DeweyOrdering,
    GlobalDocumentOrdering,
    LocalOrdering,
    SchemaLevelOrdering,
)
from repro.bench import ResultTable, measure
from repro.grid import CorpusConfig, LeadCorpusGenerator, lead_schema
from repro.xmlkit import parse

from _util import emit

THEME_COUNTS = [5, 20, 80]


def document_with_themes(count: int):
    config = CorpusConfig(seed=7, themes=count, keys_per_theme=2,
                          dynamic_groups=1, dynamic_depth=2)
    return parse(LeadCorpusGenerator(config).document(0)).root


def strategies():
    schema = lead_schema()
    return [
        SchemaLevelOrdering(schema),
        GlobalDocumentOrdering(),
        LocalOrdering(),
        DeweyOrdering(),
    ]


@pytest.mark.parametrize("strategy_index", range(4), ids=["schema", "global", "local", "dewey"])
def test_assign_keys(benchmark, strategy_index):
    strategy = strategies()[strategy_index]
    root = document_with_themes(20)
    benchmark(lambda: strategy.assign(root))


def test_e7_insert_cost_table(benchmark):
    """Keys rewritten when inserting a new theme instance in the middle
    of the keyword list — the update the paper's lineage example makes
    realistic."""

    def build_table():
        table = ResultTable(
            "E7 - keys rewritten by a middle insert (new theme at position 1)",
            ["themes", "schema-level", "global-doc", "local", "dewey"],
        )
        for count in THEME_COUNTS:
            root = document_with_themes(count)
            keywords = root.find("data").find("idinfo").find("keywords")
            row = [count]
            for strategy in strategies():
                row.append(strategy.insert_cost(root, keywords, 1))
            table.add_row(*row)
        emit("e7_ordering", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    for row in table.rows:
        _themes, schema_cost, global_cost, local_cost, dewey_cost = row
        assert schema_cost < global_cost
        assert schema_cost < local_cost
        assert schema_cost < dewey_cost


def test_e7_assignment_time_table(benchmark):
    def build_table():
        table = ResultTable(
            "E7 - key assignment time (ms per document)",
            ["themes", "schema-level", "global-doc", "local", "dewey"],
        )
        for count in THEME_COUNTS:
            root = document_with_themes(count)
            row = [count]
            for strategy in strategies():
                seconds, _ = measure(lambda s=strategy: s.assign(root), repeat=3)
                row.append(seconds * 1000.0)
            table.add_row(*row)
        emit("e7_ordering", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    # Schema-level ordering keys only the at-or-above-attribute nodes,
    # so it assigns fewer keys than any full-document strategy.
    root = document_with_themes(THEME_COUNTS[-1])
    schema_keys = len(strategies()[0].assign(root))
    global_keys = len(strategies()[1].assign(root))
    assert schema_keys < global_keys
