"""E8 — Query selectivity sweep.

The planted markers give queries with exact selectivities (1%..50%).
Paper context (§4): the count-matching plan touches match rows, so its
cost should track the number of matching rows; the CLOB scan parses the
whole corpus regardless of selectivity.  Expected shape: hybrid latency
grows gently with selectivity, CLOB latency is flat and high.
"""

import pytest

from repro.bench import ResultTable, measure
from repro.grid import WorkloadGenerator

from _util import emit
from conftest import BASE_CONFIG, MID_CORPUS

WORKLOAD = WorkloadGenerator(BASE_CONFIG)


@pytest.mark.parametrize("marker_index", range(4), ids=["1pct", "5pct", "20pct", "50pct"])
def test_marker_query_hybrid(benchmark, loaded_schemes, marker_index):
    marker = BASE_CONFIG.planted[marker_index]
    query = WORKLOAD.marker_query(marker)
    scheme = loaded_schemes["hybrid"]
    benchmark(lambda: scheme.query(query))


def test_e8_summary_table(benchmark, loaded_schemes):
    def build_table():
        table = ResultTable(
            f"E8 - selectivity sweep ({MID_CORPUS} docs, ms per query)",
            ["selectivity", "matches", "hybrid", "clob"],
        )
        for marker in BASE_CONFIG.planted:
            query = WORKLOAD.marker_query(marker)
            matches = len(loaded_schemes["hybrid"].query(query))
            row = [f"{marker.selectivity:.0%}", matches]
            for name in ("hybrid", "clob"):
                scheme = loaded_schemes[name]
                seconds, _ = measure(lambda s=scheme: s.query(query), repeat=3)
                row.append(seconds * 1000.0)
            table.add_row(*row)
        emit("e8_selectivity", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    # Hybrid beats the scan at every selectivity; the scan's cost is
    # roughly flat across selectivities (it always parses everything).
    hybrid = table.column_values("hybrid")
    clob = table.column_values("clob")
    assert all(h < c for h, c in zip(hybrid, clob))
    assert max(clob) < 3 * min(clob)


def test_e8_plan_ordering_sweep(benchmark, loaded_schemes):
    """Statistics-ordered plan vs shredding-order plan on conjunctive
    marker queries (each marker AND the rare 1% marker).  The optimizer
    seeks the rare marker first regardless of where it sits in the
    query, so the ordered plan touches fewer intermediate rows; the
    table also records the plan-cache hit rate the repeated templates
    achieve (``BENCH_e8_plan.json``)."""
    from repro.core import AttributeCriteria, ObjectQuery, build_plan

    scheme = loaded_schemes["hybrid"]
    catalog = scheme.catalog

    def conjunctive(marker):
        rare = BASE_CONFIG.planted[0]  # 1% marker: the seek worth doing first
        query = ObjectQuery()
        query.add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", marker.keyword)
        )
        query.add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", rare.keyword)
        )
        return query

    def build_table():
        table = ResultTable(
            f"E8 - plan ordering sweep ({MID_CORPUS} docs, ms per query)",
            ["selectivity", "matches", "ordered", "unordered", "cache_hit_rate"],
        )
        catalog.plan_cache.clear()
        hits0, misses0 = catalog.plan_cache.hits, catalog.plan_cache.misses
        for marker in BASE_CONFIG.planted[1:]:
            query = conjunctive(marker)
            matches = len(catalog.query(query))
            ordered_s, _ = measure(lambda: catalog.query(query), repeat=3)
            shredded = catalog.shred_query(query)
            unordered_s, _ = measure(
                lambda: catalog.store.match_objects(build_plan(shredded)), repeat=3
            )
            hits = catalog.plan_cache.hits - hits0
            misses = catalog.plan_cache.misses - misses0
            rate = hits / (hits + misses) if hits + misses else 0.0
            table.add_row(
                f"{marker.selectivity:.0%}", matches,
                ordered_s * 1000.0, unordered_s * 1000.0, round(rate, 3),
            )
        emit("e8_plan", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    # All conjunctive marker queries share one shape, so after the first
    # build every plan comes from the cache.
    rates = table.column_values("cache_hit_rate")
    assert rates[-1] > 0.5
    # Ordering is advisory: both plans return identical results (checked
    # by the parity property suite); here we only require both ran.
    assert all(v > 0 for v in table.column_values("ordered"))
    assert all(v > 0 for v in table.column_values("unordered"))


def test_e8_conjunctive_selectivity(benchmark, loaded_schemes):
    """AND of a selective and an unselective marker: the plan's final
    intersection keeps the result at the rarer marker's cardinality."""

    def run():
        from repro.core import AttributeCriteria, ObjectQuery

        rare, common = BASE_CONFIG.planted[0], BASE_CONFIG.planted[3]
        query = ObjectQuery()
        query.add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", rare.keyword)
        )
        query.add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", common.keyword)
        )
        return loaded_schemes["hybrid"].query(query)

    ids = benchmark(run)
    rare = BASE_CONFIG.planted[0]
    expected = [i + 1 for i in range(MID_CORPUS) if rare.applies_to(i) and BASE_CONFIG.planted[3].applies_to(i)]
    assert ids == expected
