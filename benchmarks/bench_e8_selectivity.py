"""E8 — Query selectivity sweep.

The planted markers give queries with exact selectivities (1%..50%).
Paper context (§4): the count-matching plan touches match rows, so its
cost should track the number of matching rows; the CLOB scan parses the
whole corpus regardless of selectivity.  Expected shape: hybrid latency
grows gently with selectivity, CLOB latency is flat and high.
"""

import pytest

from repro.bench import ResultTable, measure
from repro.grid import WorkloadGenerator

from _util import emit
from conftest import BASE_CONFIG, MID_CORPUS

WORKLOAD = WorkloadGenerator(BASE_CONFIG)


@pytest.mark.parametrize("marker_index", range(4), ids=["1pct", "5pct", "20pct", "50pct"])
def test_marker_query_hybrid(benchmark, loaded_schemes, marker_index):
    marker = BASE_CONFIG.planted[marker_index]
    query = WORKLOAD.marker_query(marker)
    scheme = loaded_schemes["hybrid"]
    benchmark(lambda: scheme.query(query))


def test_e8_summary_table(benchmark, loaded_schemes):
    def build_table():
        table = ResultTable(
            f"E8 - selectivity sweep ({MID_CORPUS} docs, ms per query)",
            ["selectivity", "matches", "hybrid", "clob"],
        )
        for marker in BASE_CONFIG.planted:
            query = WORKLOAD.marker_query(marker)
            matches = len(loaded_schemes["hybrid"].query(query))
            row = [f"{marker.selectivity:.0%}", matches]
            for name in ("hybrid", "clob"):
                scheme = loaded_schemes[name]
                seconds, _ = measure(lambda s=scheme: s.query(query), repeat=3)
                row.append(seconds * 1000.0)
            table.add_row(*row)
        emit("e8_selectivity", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    # Hybrid beats the scan at every selectivity; the scan's cost is
    # roughly flat across selectivities (it always parses everything).
    hybrid = table.column_values("hybrid")
    clob = table.column_values("clob")
    assert all(h < c for h, c in zip(hybrid, clob))
    assert max(clob) < 3 * min(clob)


def test_e8_conjunctive_selectivity(benchmark, loaded_schemes):
    """AND of a selective and an unselective marker: the plan's final
    intersection keeps the result at the rarer marker's cardinality."""

    def run():
        from repro.core import AttributeCriteria, ObjectQuery

        rare, common = BASE_CONFIG.planted[0], BASE_CONFIG.planted[3]
        query = ObjectQuery()
        query.add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", rare.keyword)
        )
        query.add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", common.keyword)
        )
        return loaded_schemes["hybrid"].query(query)

    ids = benchmark(run)
    rare = BASE_CONFIG.planted[0]
    expected = [i + 1 for i in range(MID_CORPUS) if rare.applies_to(i) and BASE_CONFIG.planted[3].applies_to(i)]
    assert ids == expected
