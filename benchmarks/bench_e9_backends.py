"""E9 — Backend cross-check: from-scratch engine vs stdlib sqlite.

Both backends hold the identical hybrid layout and run the same Fig-4
plan stages; this experiment measures ingest, query, and response times
on each.  The point is not which is faster — it is that the *relative*
behaviour of the hybrid scheme (flat query latency, cheap responses)
holds on a real RDBMS, so E2/E3/E4's shapes are not artifacts of the
in-memory engine.
"""

import pytest

from repro.backends import SqliteHybridStore
from repro.core import HybridCatalog
from repro.bench import ResultTable, measure
from repro.grid import LeadCorpusGenerator, WorkloadGenerator, lead_schema

from _util import emit
from conftest import BASE_CONFIG

CORPUS = 100
N_QUERIES = 10

DOCUMENTS = list(LeadCorpusGenerator(BASE_CONFIG).documents(CORPUS))
WORKLOAD = WorkloadGenerator(BASE_CONFIG).mixed(N_QUERIES)


def build_catalog(backend: str) -> HybridCatalog:
    store = SqliteHybridStore() if backend == "sqlite" else None
    catalog = HybridCatalog(lead_schema(), store=store)
    LeadCorpusGenerator(BASE_CONFIG).register_definitions(catalog)
    return catalog


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_query_mix(benchmark, backend):
    catalog = build_catalog(backend)
    catalog.ingest_many(DOCUMENTS)

    def run():
        for query in WORKLOAD:
            catalog.query(query)

    benchmark(run)


def test_e9_summary_table(benchmark):
    def build_table():
        table = ResultTable(
            f"E9 - backend comparison ({CORPUS} docs; ms)",
            ["backend", "ingest-batch", "query-mix", "fetch-25"],
        )
        results = {}
        for backend in ("memory", "sqlite"):
            catalog = build_catalog(backend)
            ingest_s, _ = measure(lambda c=catalog: c.ingest_many(DOCUMENTS), repeat=1)
            query_s, _ = measure(
                lambda c=catalog: [c.query(q) for q in WORKLOAD], repeat=3
            )
            fetch_ids = list(range(1, 26))
            fetch_s, _ = measure(lambda c=catalog: c.fetch(fetch_ids), repeat=3)
            results[backend] = catalog
            table.add_row(backend, ingest_s * 1000, query_s * 1000, fetch_s * 1000)
        # Cross-check correctness while we have both loaded.
        for query in WORKLOAD:
            assert results["memory"].query(query) == results["sqlite"].query(query)
        emit("e9_backends", table)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    assert len(table.rows) == 2
