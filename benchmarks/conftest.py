"""Shared benchmark fixtures.

Corpus sizes are chosen so the full suite completes in a few minutes on
a laptop while the relative shapes (who wins, where crossovers fall)
are stable; EXPERIMENTS.md records the shapes alongside the paper's
claims.
"""

from __future__ import annotations

import pytest

from repro.bench import build_schemes
from repro.grid import CorpusConfig, PlantedMarker

BASE_CONFIG = CorpusConfig(
    seed=2006,
    themes=2,
    places=1,
    keys_per_theme=3,
    dynamic_groups=2,
    params_per_group=6,
    dynamic_depth=2,
    planted=[
        PlantedMarker("marker_sel_100", 100),
        PlantedMarker("marker_sel_20", 20),
        PlantedMarker("marker_sel_5", 5),
        PlantedMarker("marker_sel_2", 2),
    ],
)

MID_CORPUS = 150


@pytest.fixture(scope="session")
def base_config():
    return BASE_CONFIG


@pytest.fixture(scope="session")
def loaded_schemes(base_config):
    """All four schemes loaded with the standard mid-size corpus."""
    return build_schemes(base_config, MID_CORPUS)
