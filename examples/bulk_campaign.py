"""A campaign-scale bulk load into a persisted catalog.

Shows the operational path a LEAD campaign would use: a sqlite-backed
catalog file, the vocabulary registered once, documents bulk-loaded
(with the process-pool shredder), attributes added incrementally as the
campaign produces new insights, and the whole catalog reopened later
with all definitions and objects intact.

Run:  python examples/bulk_campaign.py
"""

import os
import tempfile
import time

from repro.backends import SqliteHybridStore
from repro.core import AttributeCriteria, BulkLoader, HybridCatalog, ObjectQuery, Op
from repro.grid import CorpusConfig, LeadCorpusGenerator, PlantedMarker, lead_schema


def main() -> None:
    db_path = os.path.join(tempfile.mkdtemp(), "campaign.db")
    config = CorpusConfig(
        seed=2006,
        themes=3,
        dynamic_groups=3,
        params_per_group=8,
        planted=[PlantedMarker("campaign_spring_2006", 6)],
    )
    generator = LeadCorpusGenerator(config)
    documents = list(generator.documents(120))

    # ---- session 1: create, register vocabulary, bulk load ----------
    catalog = HybridCatalog(lead_schema(), store=SqliteHybridStore(db_path))
    generator.register_definitions(catalog)

    start = time.perf_counter()
    with BulkLoader(catalog, processes=2) as loader:
        receipts = loader.load(documents, owner="campaign", name_prefix="run")
    elapsed = time.perf_counter() - start
    warnings = sum(len(r.warnings) for r in receipts)
    print(f"bulk-loaded {len(receipts)} documents in {elapsed:.2f}s "
          f"({len(receipts) / elapsed:.0f} docs/s), {warnings} warnings")

    # Post-hoc annotation: QC keywords added to the first three runs
    # (paper §5 — attributes inserted after the original shred).
    for object_id in (1, 2, 3):
        catalog.add_attribute(
            object_id,
            "<theme><themekt>QC</themekt><themekey>quality_checked</themekey></theme>",
        )
    print("annotated runs 1-3 with QC keywords")
    catalog.store.connection.commit()

    # ---- session 2: reopen the file, everything is still there ------
    reopened = HybridCatalog(lead_schema(), store=SqliteHybridStore(db_path))
    print(f"\nreopened {db_path}: {len(reopened)} objects, "
          f"{len(reopened.registry)} attribute definitions")

    marker_query = ObjectQuery().add_attribute(
        AttributeCriteria("theme").add_element("themekey", "", "campaign_spring_2006")
    )
    print(f"planted-marker query: {reopened.query(marker_query)}")

    qc_query = ObjectQuery().add_attribute(
        AttributeCriteria("theme").add_element("themekey", "", "quality_checked")
    )
    print(f"QC-annotated runs   : {reopened.query(qc_query)}")

    dx_query = ObjectQuery().add_attribute(
        AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 500.0, Op.LE)
    )
    print(f"high-res runs (dx<=500): {len(reopened.query(dx_query))} objects")

    print("\nstorage:")
    for name, rows, size in reopened.storage_report()[:5]:
        print(f"  {name:<16} {rows:>7} rows  {size:>9} bytes")


if __name__ == "__main__":
    main()
