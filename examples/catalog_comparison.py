"""Side-by-side comparison of the four storage schemes.

Loads the hybrid catalog and the three §6 baselines (inlining, edge
table, whole-document CLOB) with the same synthetic LEAD corpus, checks
they answer identically, and prints latency and storage comparisons —
a miniature of benchmarks E1/E2/E5.

Run:  python examples/catalog_comparison.py
"""

import time

from repro.bench import ResultTable, build_schemes, measure, throughput
from repro.grid import CorpusConfig, PlantedMarker, WorkloadGenerator

DOCS = 80
QUERIES = 12

config = CorpusConfig(
    seed=42,
    themes=2,
    dynamic_groups=2,
    dynamic_depth=3,
    planted=[PlantedMarker("campaign_2006_spring", 8)],
)


def main() -> None:
    print(f"building 4 schemes with {DOCS} generated documents ...")
    start = time.perf_counter()
    schemes = build_schemes(config, DOCS)
    print(f"  done in {time.perf_counter() - start:.2f}s")

    workload = WorkloadGenerator(config).mixed(QUERIES)

    # Correctness: every scheme answers every query identically.
    disagreements = 0
    for query in workload:
        expected = schemes["hybrid"].query(query)
        for name in ("inlining", "edge", "clob"):
            if schemes[name].query(query) != expected:
                disagreements += 1
    print(f"\nquery agreement across schemes: "
          f"{QUERIES - disagreements}/{QUERIES} identical result sets")

    # Latency comparison.
    table = ResultTable(
        f"query latency ({QUERIES}-query mix over {DOCS} docs)",
        ["scheme", "ms/mix", "queries/s"],
    )
    for name, scheme in schemes.items():
        seconds, _ = measure(
            lambda s=scheme: [s.query(q) for q in workload], repeat=3
        )
        table.add_row(name, seconds * 1000, throughput(QUERIES, seconds))
    print()
    print(table.render())

    # Storage comparison.
    table = ResultTable("storage footprint", ["scheme", "rows", "bytes"])
    for name, scheme in schemes.items():
        table.add_row(name, scheme.total_rows(), scheme.total_bytes())
    print()
    print(table.render())

    # Reconstruction sanity for one object.
    from repro.xmlkit import canonical, parse

    reference = canonical(parse(schemes["hybrid"].fetch([1])[1]))
    for name in ("inlining", "edge", "clob"):
        same = canonical(parse(schemes[name].fetch([1])[1])) == reference
        print(f"reconstruction({name}) canonically equals hybrid: {same}")


if __name__ == "__main__":
    main()
