"""Cross-discipline generality (paper §1, §7).

The paper opens with the NSF cyberinfrastructure call for
"multidisciplinary, well-curated federated collections of data" and
closes claiming the hybrid approach "generalizes to metadata in other
scientific grid environments".  This example runs the identical
pipeline on the CLRC-style schema (UK e-Science, neutron/synchrotron
facilities) — different tags, different dynamic-section convention,
same catalog — and records a provenance chain.

Run:  python examples/cross_discipline.py
"""

from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op
from repro.grid import MyLeadService
from repro.grid.clrcschema import clrc_schema, define_isis_conditions, sample_study


def main() -> None:
    # The myLEAD service machinery works over any annotated schema.
    service = MyLeadService(clrc_schema())
    service.create_user("grace")
    define_isis_conditions(service.catalog)

    campaign = service.create_experiment("grace", "layered-oxide-campaign")
    raw = service.add_file(
        "grace", campaign,
        sample_study("clrc:study:raw", keywords=("neutron scattering", "raw data")),
        name="raw-run", public=True,
    )
    reduced = service.add_file(
        "grace", campaign,
        sample_study("clrc:study:reduced",
                     keywords=("neutron scattering", "reduced data"),
                     beam_current=180.0),
        name="reduced-run", public=True,
    )
    service.record_derivation("grace", reduced.object_id, raw.object_id)
    print(f"cataloged {len(service.catalog)} objects "
          f"(includes the experiment record)")

    # A facility-condition query: dynamic attributes with the CLRC
    # schema's own tag convention (conditionSet/parameter/reading).
    query = ObjectQuery().add_attribute(
        AttributeCriteria("beamline", "ISIS").add_element(
            "beam-current", "ISIS", 150.0, Op.GE
        )
    )
    print(f"beam-current >= 150 mA: objects {service.query('grace', query)}")

    # A nested facility condition (temperature inside sample-environment).
    nested = AttributeCriteria("beamline", "ISIS")
    nested.add_attribute(
        AttributeCriteria("sample-environment", "ISIS").add_element(
            "temperature", "ISIS", 10.0, Op.LE
        )
    )
    print(f"cryogenic runs (T <= 10 K): "
          f"{service.query('grace', ObjectQuery().add_attribute(nested))}")

    # Provenance: products computed from raw neutron data.
    raw_query = ObjectQuery().add_attribute(
        AttributeCriteria("topic").add_element("keyword", "", "raw data")
    )
    derived = service.query_derived_from_matching("grace", raw_query)
    print(f"products derived from raw data: {derived}")

    # Reconstruction is schema-agnostic too.
    response = service.fetch("grace", [raw.object_id])[raw.object_id]
    print(f"\nreconstructed study starts: {response[:60]}...")
    print(f"schema: {service.catalog.schema.name}, "
          f"{service.catalog.schema.max_order()} ordered nodes")


if __name__ == "__main__":
    main()
