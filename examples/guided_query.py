"""Guided query construction — the §4 "GUI query tool" surrogate.

The paper: "there is a GUI query tool available that prompts the user
with the available attributes and elements and allows them to build a
query graphically."  This example drives :class:`QueryBuilder`, which
provides exactly that interaction model programmatically: it *offers*
the queryable attributes/elements from the definition registry and
validates every step.

Run:  python examples/guided_query.py
"""

from repro.core import HybridCatalog, Op, QueryBuilder
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema


def main() -> None:
    catalog = HybridCatalog(lead_schema())
    define_fig3_attributes(catalog)
    catalog.ingest(FIG3_DOCUMENT, name="fig3")

    builder = QueryBuilder(catalog.registry)

    print("What the picker would offer (top-level queryable attributes):")
    for choice in builder.attribute_choices():
        kind = "structural" if choice.structural else "dynamic"
        print(f"  {choice.label:<24} [{kind}]  elements: "
              f"{[e[0] for e in choice.elements][:4]}")

    grid = catalog.registry.lookup_attribute("grid", "ARPS")
    print("\nSub-attributes offered under grid/ARPS:")
    for choice in builder.attribute_choices(parent=grid):
        print(f"  {choice.label}  elements: {[e[0] for e in choice.elements]}")

    print("\nBuilding the paper's example query step by step:")
    query = (
        builder
        .start("grid", "ARPS")
        .element("dx", 1000, Op.EQ)
        .sub("grid-stretching")
        .element("dzmin", 100)
        .build()
    )
    print("  grid/ARPS [dx = 1000] / grid-stretching [dzmin = 100]")
    print(f"  matches: {catalog.query(query)}")

    print("\nValidation happens at construction time:")
    try:
        QueryBuilder(catalog.registry).start("grid", "ARPS").element("bogus", 1)
    except Exception as exc:
        print(f"  element('bogus', 1) -> {exc}")
    try:
        QueryBuilder(catalog.registry).start("grid", "ARPS").element("dx", "wide")
    except Exception as exc:
        print(f"  element('dx', 'wide') -> {exc}")


if __name__ == "__main__":
    main()
