"""Ontology-enhanced search (paper §3).

The catalog's validated definitions "could also be connected to an
ontology for enhanced search capabilities".  This example builds a
corpus of forecast metadata, then shows how a broad scientific concept
("precipitation") — which no document is literally tagged with —
expands through the CF keyword ontology into the concrete variables
documents actually carry.

Run:  python examples/ontology_search.py
"""

from repro.core import (
    AttributeCriteria,
    HybridCatalog,
    ObjectQuery,
    PlanTrace,
    expand_query,
)
from repro.grid import (
    CorpusConfig,
    LeadCorpusGenerator,
    cf_ontology,
    lead_schema,
)


def main() -> None:
    config = CorpusConfig(seed=99, themes=2, keys_per_theme=4)
    generator = LeadCorpusGenerator(config)
    catalog = HybridCatalog(lead_schema())
    generator.register_definitions(catalog)
    catalog.ingest_many(list(generator.documents(30)))
    print(f"catalog: {len(catalog)} objects")

    ontology = cf_ontology()
    for concept in ("precipitation", "severe_weather", "rainfall"):
        literal = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", concept)
        )
        expanded = expand_query(literal, ontology)
        criterion = expanded.attributes[0].elements[0]
        terms = sorted(criterion.value)[:4]
        print(f"\nconcept {concept!r}")
        print(f"  literal matches : {catalog.query(literal)}")
        print(f"  expands to {len(criterion.value)} terms: {terms} ...")
        trace = PlanTrace()
        ids = catalog.query(expanded, trace=trace)
        print(f"  expanded matches: {ids}")

    # The expansion runs through the ordinary Fig-4 plan: the IN_SET
    # criterion is still one query element criterion.
    print("\nplan trace of the last expanded query:")
    print(trace.describe())


if __name__ == "__main__":
    main()
