"""Figure-4 walkthrough: the paper's example query, stage by stage.

Shreds the §4 query (grid dx=1000 with grid-stretching dzmin=100) into
its criteria rows, prints the required counts Fig-4 annotates, and runs
the count-matching plan on both the in-memory engine and sqlite,
showing each stage's row counts.

Run:  python examples/query_walkthrough.py
"""

from repro import AttributeCriteria, HybridCatalog, ObjectQuery, Op, PlanTrace
from repro.backends import SqliteHybridStore
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema


def paper_query() -> ObjectQuery:
    query = ObjectQuery()
    grid = AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000, Op.EQ)
    stretching = AttributeCriteria("grid-stretching", "ARPS")
    stretching.add_element("dzmin", None, 100, Op.EQ)
    grid.add_attribute(stretching)
    query.add_attribute(grid)
    return query


def load(store=None) -> HybridCatalog:
    catalog = HybridCatalog(lead_schema(), store=store)
    define_fig3_attributes(catalog)
    catalog.ingest(FIG3_DOCUMENT, name="fig3")
    # Near-miss variants that each fail one stage of the plan:
    catalog.ingest(FIG3_DOCUMENT.replace("<attrv>1000.000</attrv>",
                                         "<attrv>2000.000</attrv>"),
                   name="dx=2000")
    catalog.ingest(FIG3_DOCUMENT.replace("<attrv>100.000</attrv>",
                                         "<attrv>50.000</attrv>"),
                   name="dzmin=50")
    return catalog


def main() -> None:
    catalog = load()
    query = paper_query()

    print("The paper's §4 XQuery FLWOR expression becomes this attribute query:")
    print('  grid/ARPS  [dx = 1000]')
    print('    +- grid-stretching/ARPS  [dzmin = 100]')

    from repro.core import query_to_xpath

    print("\nWhat the scientist did NOT have to write (auto-translated back):")
    for expression in query_to_xpath(query, catalog.registry):
        print(f"  {expression}")

    shredded = catalog.shred_query(query)
    print("\nQuery shredding (temporary criteria tables of §4):")
    print(shredded.describe())
    top = shredded.qattr(shredded.top_qattr_ids[0])
    print(f"\nFig-4 required counts for the top attribute:")
    print(f"  direct element criteria : {top.direct_elem_count}")
    print(f"  subtree element criteria: {top.subtree_elem_count}")
    print(f"  subtree attribute count : {top.subtree_attr_count}")

    trace = PlanTrace()
    ids = catalog.query(query, trace=trace)
    print(f"\nMemory-engine plan (matching objects: {ids}):")
    print(trace.describe())

    sqlite_catalog = load(store=SqliteHybridStore())
    trace = PlanTrace()
    ids = sqlite_catalog.query(query, trace=trace)
    print(f"\nSQLite plan — the same stages as real SQL (matching: {ids}):")
    print(trace.describe())

    print("\nObject names in the catalog:")
    for object_id in range(1, 4):
        marker = "  <-- matches" if object_id in ids else ""
        print(f"  {object_id}: {catalog.object_name(object_id)}{marker}")


if __name__ == "__main__":
    main()
