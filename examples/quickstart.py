"""Quickstart: the Figure-1 pipeline in a dozen lines.

Build a catalog over the LEAD schema, register the dynamic ARPS
definitions, ingest the paper's Figure-3 document, run the paper's §4
example query, and print the reconstructed XML response.

Run:  python examples/quickstart.py
"""

from repro import AttributeCriteria, HybridCatalog, ObjectQuery, Op, PlanTrace
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.xmlkit import parse, pretty_print

# 1. A personal metadata catalog over the annotated LEAD schema.
catalog = HybridCatalog(lead_schema())
define_fig3_attributes(catalog)  # the ("grid", "ARPS") dynamic definitions

# 2. Ingest schema-based XML metadata: each metadata attribute is stored
#    as a verbatim CLOB *and* shredded into the query tables.
receipt = catalog.ingest(FIG3_DOCUMENT, name="ARPS-forecast-001", owner="scientist")
print(f"ingested object {receipt.object_id}: "
      f"{receipt.clob_count} CLOBs, {receipt.attribute_count} attribute rows, "
      f"{receipt.element_count} element rows")

# 3. The paper's example query: grid spacing dx = 1000 m with grid
#    stretching dzmin = 100 m (an unordered query over attributes).
query = ObjectQuery()
grid = AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000, Op.EQ)
stretching = AttributeCriteria("grid-stretching", "ARPS")
stretching.add_element("dzmin", None, 100, Op.EQ)
grid.add_attribute(stretching)
query.add_attribute(grid)

trace = PlanTrace()
object_ids = catalog.query(query, trace=trace)
print(f"\nmatching objects: {object_ids}")
print("\nFig-4 plan trace:")
print(trace.describe())

# 4. Responses are rebuilt from CLOBs + the schema-level global
#    ordering — already tagged, canonically equal to the original.
response = catalog.fetch(object_ids)[object_ids[0]]
print("\nreconstructed response:")
print(pretty_print(parse(response)))
