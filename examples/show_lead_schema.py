"""Print the annotated LEAD schema of Figure 2.

Shows the metadata-attribute partition (bolded/italicized in the paper)
and the schema-level global ordering (the circled numbers), plus the
catalog's global-ordering table with last-child orders.

Run:  python examples/show_lead_schema.py
"""

from repro.core import ancestor_pairs
from repro.grid import lead_schema


def main() -> None:
    schema = lead_schema()

    print("Annotated LEAD schema (Figure 2):")
    print(schema.describe())

    print("\nGlobal-ordering table (order, tag, last-child order):")
    for node in schema.ordered_nodes:
        print(f"  {node.order:>3}  {node.tag:<14} last_child={node.last_child_order}")

    print("\nNode-ancestor inverted list (node -> ancestor), used by the")
    print("response builder to find required wrapper tags:")
    pairs = ancestor_pairs(schema.ordered_nodes)
    for node_order, anc_order in pairs[:12]:
        node = schema.node_by_order(node_order)
        anc = schema.node_by_order(anc_order)
        print(f"  {node.tag:<14} -> {anc.tag}")
    print(f"  ... ({len(pairs)} pairs total)")

    print(f"\nqueryable attributes: "
          f"{[n.tag for n in schema.attributes() if n.queryable]}")
    dynamic = [n.tag for n in schema.attributes() if n.dynamic is not None]
    print(f"dynamic attribute sections: {dynamic}")


if __name__ == "__main__":
    main()
