"""A LEAD-style forecasting campaign on the myLEAD service.

Two scientists run ARPS/WRF forecast experiments.  Model parameters
come from real Fortran namelist fragments (the paper's §3 motivation
for dynamic metadata attributes); files stay private until published;
queries respect visibility and per-user definitions.

Run:  python examples/weather_campaign.py
"""

from repro import AttributeCriteria, ObjectQuery, Op
from repro.grid import (
    MyLeadService,
    lead_schema,
    namelist_to_detailed,
    parse_namelist,
    register_namelist_definitions,
)
from repro.xmlkit import element, pretty_print

ARPS_NAMELIST = """
&grid
  nx = 67, ny = 67, nz = 35,
  dx = 1000.0, dy = 1000.0, dz = 500.0,
  strhopt = 1, dzmin = 100.0,
/
&timestep
  dtbig = 6.0, dtsml = 1.0, tstop = 21600.0,
/
"""

HIGH_RES_NAMELIST = ARPS_NAMELIST.replace("dx = 1000.0", "dx = 250.0").replace(
    "dy = 1000.0", "dy = 250.0"
)


def forecast_document(resource_id: str, keywords, namelist_text: str) -> str:
    """Assemble a LEAD metadata document for one forecast run."""
    theme = element("theme", element("themekt", "CF NetCDF"))
    for keyword in keywords:
        theme.append(element("themekey", keyword))
    eainfo = element("eainfo")
    for group in parse_namelist(namelist_text):
        eainfo.append(namelist_to_detailed(group, "ARPS"))
    doc = element(
        "LEADresource",
        element("resourceID", resource_id),
        element(
            "data",
            element("idinfo", element("keywords", theme)),
            element("geospatial", eainfo),
        ),
    )
    return pretty_print(doc)


def main() -> None:
    service = MyLeadService(lead_schema())
    ann = service.create_user("ann")
    bob = service.create_user("bob")

    # Register the ARPS namelist vocabulary once, at admin scope.
    register_namelist_definitions(
        service.catalog, parse_namelist(ARPS_NAMELIST), "ARPS"
    )

    # Ann runs a tornado-outbreak study; one run published, one private.
    study = service.create_experiment("ann", "tornado-outbreak-study")
    published = service.add_file(
        "ann",
        study,
        forecast_document(
            "lead:ann:run-001",
            ["convective_precipitation_amount", "tornado_probability"],
            ARPS_NAMELIST,
        ),
        name="run-001",
        public=True,
    )
    private = service.add_file(
        "ann",
        study,
        forecast_document(
            "lead:ann:run-002",
            ["tornado_probability"],
            HIGH_RES_NAMELIST,
        ),
        name="run-002 (unpublished high-res)",
    )
    print(f"ann cataloged runs {published.object_id} (public) and "
          f"{private.object_id} (private) in '{study.name}'")

    # Bob searches for kilometre-scale runs: dx <= 1000 m.
    query = ObjectQuery().add_attribute(
        AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000.0, Op.LE)
    )
    print(f"\nbob's search (dx <= 1000): objects {service.query('bob', query)}")
    print(f"ann's same search:         objects {service.query('ann', query)}")

    # Ann publishes the high-res run; bob now sees both.
    service.publish("ann", private.object_id)
    print(f"after publishing:          objects {service.query('bob', query)}")

    # Full responses round-trip through the hybrid store.
    for xml in service.search("bob", query):
        first_line = xml.split("\n", 1)[0] if "\n" in xml else xml[:70]
        print(f"  response starts: {first_line[:70]}...")

    # Experiment containment view.
    print(f"\n'{study.name}' contents visible to bob: "
          f"{service.experiment_contents('bob', study)}")


if __name__ == "__main__":
    main()
