"""Legacy setup shim so ``pip install -e .`` works without the ``wheel``
package in offline environments (pip falls back to ``setup.py develop``)."""

from setuptools import setup

setup()
