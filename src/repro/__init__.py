"""repro — a hybrid XML-relational grid metadata catalog.

A full reproduction of *"A Hybrid XML-Relational Grid Metadata Catalog"*
(Jensen, Plale, Pallickara, Sun — ICPP 2006): the myLEAD hybrid storage
scheme (schema partitioning into metadata attributes, per-attribute
CLOBs plus shredded query tables, schema-level global ordering,
validated dynamic attributes, the Fig-4 count-matching query plan and
set-based response tagging), the relational and XML substrates it runs
on, the related-work baselines it is compared against, and the LEAD-grid
workload generators used for evaluation.

Quickstart::

    from repro import HybridCatalog, AttributeCriteria, ObjectQuery, Op
    from repro.grid import lead_schema

    catalog = HybridCatalog(lead_schema())
    catalog.ingest(xml_text, name="forecast-001")
    query = ObjectQuery().add_attribute(
        AttributeCriteria("theme").add_element("themekey", "", "air_temperature")
    )
    for xml in catalog.search(query):
        print(xml)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
experiment index.
"""

from .core import (
    AnnotatedSchema,
    AttributeCriteria,
    AttributeDef,
    DefinitionRegistry,
    DynamicSpec,
    ElementCriterion,
    ElementDef,
    HybridCatalog,
    HybridStore,
    IngestReceipt,
    MemoryHybridStore,
    MyAttr,
    MyFile,
    NodeKind,
    ObjectQuery,
    Op,
    PlanTrace,
    SchemaNode,
    Shredder,
    ValueType,
    attribute,
    melement,
    shred_query,
    structural,
    sub_attribute,
)
from .errors import (
    CatalogError,
    DefinitionError,
    QueryError,
    ReproError,
    ResponseError,
    SchemaError,
    ShredError,
    ValidationError,
)
from .faults import FaultError, FaultPlan, RetryPolicy, TransientFault
from .sharding import ShardedCatalog

__version__ = "1.0.0"

__all__ = [
    "AnnotatedSchema",
    "AttributeCriteria",
    "AttributeDef",
    "CatalogError",
    "DefinitionError",
    "DefinitionRegistry",
    "DynamicSpec",
    "ElementCriterion",
    "ElementDef",
    "FaultError",
    "FaultPlan",
    "HybridCatalog",
    "HybridStore",
    "IngestReceipt",
    "MemoryHybridStore",
    "MyAttr",
    "MyFile",
    "NodeKind",
    "ObjectQuery",
    "Op",
    "PlanTrace",
    "QueryError",
    "ReproError",
    "ResponseError",
    "RetryPolicy",
    "SchemaError",
    "SchemaNode",
    "ShardedCatalog",
    "ShredError",
    "Shredder",
    "TransientFault",
    "ValidationError",
    "ValueType",
    "attribute",
    "melement",
    "shred_query",
    "structural",
    "sub_attribute",
    "__version__",
]
