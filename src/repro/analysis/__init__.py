"""Repo-specific static analysis (``repro lint``).

The public surface is :func:`run_lint` plus the reporters; everything
else (the rule classes, the AST helpers) is importable for tests and
for adding new rules.
"""

from .cache import DEFAULT_CACHE_DIR, LintResultCache, rules_signature
from .findings import Finding, Severity, active
from .linter import (
    LintContext,
    Rule,
    SourceModule,
    default_rules,
    parse_json_report,
    render_json_report,
    render_sarif_report,
    render_text_report,
    run_lint,
    source_texts,
)
from .program import content_digest

__all__ = [
    "DEFAULT_CACHE_DIR",
    "Finding",
    "LintContext",
    "LintResultCache",
    "Rule",
    "Severity",
    "SourceModule",
    "active",
    "content_digest",
    "default_rules",
    "parse_json_report",
    "render_json_report",
    "render_sarif_report",
    "render_text_report",
    "rules_signature",
    "run_lint",
    "source_texts",
]
