"""Repo-specific static analysis (``repro lint``).

The public surface is :func:`run_lint` plus the reporters; everything
else (the rule classes, the AST helpers) is importable for tests and
for adding new rules.
"""

from .findings import Finding, Severity, active
from .linter import (
    LintContext,
    Rule,
    SourceModule,
    default_rules,
    parse_json_report,
    render_json_report,
    render_text_report,
    run_lint,
)

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "Severity",
    "SourceModule",
    "active",
    "default_rules",
    "parse_json_report",
    "render_json_report",
    "render_text_report",
    "run_lint",
]
