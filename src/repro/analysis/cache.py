"""Content-addressed result cache for ``repro lint``.

The whole-program engine parses every module and closes a call graph
on each run; the ISSUE 9 CI gate requires a warm run to finish in
≤ 1 s, which rules out redoing that work when nothing changed.  The
cache therefore stores the *finished findings* keyed by a digest of
every input that could change them:

* the display path and full text of every linted module (and fault-
  test module), via :func:`~repro.analysis.program.content_digest`;
* a rule signature — the sorted ``(id, class name)`` pairs of the rule
  set — so adding, removing, or renaming a rule invalidates entries;
* a schema version constant, bumped when the Finding format moves.

A hit replays the stored findings verbatim (including suppressed
ones); a miss runs the engine and writes the entry.  Entries are
plain JSON files named by their key under ``.repro-lint-cache/`` —
inspectable, diffable, and safe to delete wholesale at any time.
Corrupt or unreadable entries are treated as misses, never errors.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import List, Optional, Sequence

from .findings import Finding

__all__ = ["LintResultCache", "rules_signature", "DEFAULT_CACHE_DIR"]

_SCHEMA = "repro.lint-cache/v1"
DEFAULT_CACHE_DIR = ".repro-lint-cache"


def rules_signature(rules: Sequence[object]) -> str:
    parts = sorted(
        f"{getattr(r, 'id', '?')}:{type(r).__name__}" for r in rules
    )
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


class LintResultCache:
    """Findings keyed by (sources digest, rule signature)."""

    def __init__(self, directory: Path) -> None:
        self.directory = directory
        self.hit = False  # set by load(); CLI reports it in verbose runs

    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    @staticmethod
    def key_for(sources_digest: str, rule_sig: str) -> str:
        return hashlib.sha256(
            f"{_SCHEMA}|{sources_digest}|{rule_sig}".encode()
        ).hexdigest()

    def load(self, key: str) -> Optional[List[Finding]]:
        self.hit = False
        path = self._entry_path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("schema") != _SCHEMA:
            return None
        try:
            findings = [
                Finding.from_dict(entry) for entry in payload["findings"]
            ]
        except (KeyError, TypeError, ValueError):
            return None
        self.hit = True
        return findings

    def store(self, key: str, findings: Sequence[Finding]) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = {
                "schema": _SCHEMA,
                "findings": [f.as_dict() for f in findings],
            }
            tmp = self._entry_path(key).with_suffix(".tmp")
            tmp.write_text(json.dumps(payload, sort_keys=True))
            tmp.replace(self._entry_path(key))
        except OSError:
            # A read-only checkout must still lint; caching is advisory.
            pass
