"""Project-wide call graph over the :class:`~repro.analysis.program.Program`.

Two derived relations feed the interprocedural rules:

* :func:`reachable_call_names` — the **optimistic** transitive closure
  of call-target names from a starting function.  Used by LCK01's
  "does this entry point reach a lock acquire" existence check, where
  an unresolvable edge must not hide a genuine acquisition.
* :func:`may_acquire` / :func:`acquisition_sites` — the **precise**
  closure of lock tokens a function may take, used by LCK02's
  upgrade/ordering checks, where a guessed edge would fabricate a
  deadlock report.

Lock *tokens* name a lock per defining class: ``Shard._write_lock``
for a ``with self._write_lock:`` acquisition, ``HybridStore.rwlock``
for the RWLock behind ``read_locked``/``write_locked``/
``transaction``/``run_transaction``.  Tokens are what the lock-order
graph is built over, so two methods of the same class taking the same
attribute collapse to one node.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .linter import call_name
from .program import ClassInfo, FunctionInfo, Program

__all__ = [
    "CallGraph",
    "LockAcquisition",
    "acquisition_token",
    "lexical_acquisitions",
]

#: Context-manager method names that acquire the class's RWLock.
RWLOCK_METHODS = frozenset(
    {"read_locked", "write_locked", "transaction", "run_transaction"}
)
#: Of those, the ones that take (or may take) the write side.
RWLOCK_WRITE_METHODS = frozenset(
    {"write_locked", "transaction", "run_transaction"}
)


class LockAcquisition:
    """One lexical lock acquisition: a ``with``-item whose context
    expression names a lock, plus the statements it covers."""

    __slots__ = ("token", "write", "node", "body", "fn")

    def __init__(
        self,
        token: str,
        write: bool,
        node: ast.stmt,
        body: Sequence[ast.stmt],
        fn: FunctionInfo,
    ) -> None:
        self.token = token
        self.write = write
        self.node = node
        self.body = list(body)
        self.fn = fn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "w" if self.write else "r"
        return f"LockAcquisition({self.token}/{mode}@{self.node.lineno})"


def _owner_name(program: Program, fn: FunctionInfo) -> str:
    cls = program.enclosing_class(fn)
    return cls.name if cls is not None else fn.module.display


def _attr_owner(program: Program, fn: FunctionInfo, attr: str) -> str:
    """The class that *defines* ``self.<attr>`` (first of the class and
    its bases whose ``__init__`` assigns it), so a base-class lock used
    from two subclasses is one token, not three."""
    cls = program.enclosing_class(fn)
    if cls is None:
        return fn.module.display
    for candidate in [cls] + program.bases_of(cls):
        init = candidate.methods.get("__init__")
        if init is None:
            continue
        for node in ast.walk(init.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == attr
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return candidate.name
    return cls.name


def _method_owner(program: Program, fn: FunctionInfo, method: str) -> str:
    """The class *defining* ``self.<method>()`` — same collapsing as
    :func:`_attr_owner`, for the RWLock context-manager methods."""
    cls = program.enclosing_class(fn)
    if cls is None:
        return fn.module.display
    defined = program.resolve_method(cls, method)
    if defined is not None and defined.cls is not None:
        return defined.cls.name
    return cls.name


def acquisition_token(
    program: Program, fn: FunctionInfo, expr: ast.AST
) -> Optional[Tuple[str, bool]]:
    """``(token, is_write)`` when ``expr`` (a with-item context
    expression) acquires a lock; ``None`` otherwise.

    Recognized shapes, all scoped to the defining class so unrelated
    classes' ``_lock`` attributes stay distinct tokens:

    * ``self._lock`` / ``self._cond`` — a plain mutex attribute
      (always exclusive).
    * ``self.read_locked()`` / ``self.write_locked()`` /
      ``self.transaction(...)`` — the class RWLock, read or write side.
    * ``<anything>.read_locked()`` etc. on a non-self receiver — the
      RWLock of whichever class defines the method when the receiver
      is a known attribute; otherwise a receiver-less generic token.
    * ``lock`` / ``LOCK_NAME`` bare names bound at module level —
      module-scoped token.
    """
    owner = _owner_name(program, fn)
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        attr_lower = expr.attr.lower()
        looks_like_lock = any(
            word in attr_lower for word in ("lock", "cond", "mutex")
        )
        if not looks_like_lock:
            # ``with self.connection:`` and friends are context
            # managers, not provable lock acquisitions.
            return None
        if expr.value.id in ("self", "cls"):
            return f"{_attr_owner(program, fn, expr.attr)}.{expr.attr}", True
        if expr.value.id == expr.value.id.upper():
            return f"{fn.module.display}.{expr.attr}", True
        return None
    if isinstance(expr, ast.Name):
        name = expr.id
        if name == name.upper() and ("LOCK" in name or "MUTEX" in name):
            return f"{fn.module.display}.{name}", True
        return None
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        if name in RWLOCK_METHODS:
            write = name in RWLOCK_WRITE_METHODS
            receiver = expr.func
            if isinstance(receiver, ast.Attribute):
                value = receiver.value
                if isinstance(value, ast.Name) and value.id in ("self", "cls"):
                    return f"{_method_owner(program, fn, name)}.rwlock", write
                # store.read_locked(), self._store.transaction(): token per
                # the class that defines the method, if unambiguous.
                defs = {
                    f.cls.name for f in program.by_name.get(name, [])
                    if f.cls is not None
                }
                if len(defs) == 1:
                    return f"{next(iter(defs))}.rwlock", write
                return "<extern>.rwlock", write
            return "<extern>.rwlock", write
        # with self._lock.read() / .write() style wrappers.
        if name in ("read", "write") and isinstance(expr.func, ast.Attribute):
            inner = expr.func.value
            if (
                isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id in ("self", "cls")
            ):
                return f"{owner}.{inner.attr}", name == "write"
        # acquire-style helper: with locked(self._x): not used here.
        return None
    return None


def lexical_acquisitions(
    program: Program, fn: FunctionInfo
) -> List[LockAcquisition]:
    """Every lock-acquiring ``with`` item lexically inside ``fn``
    (excluding nested defs — they acquire in their own frame).

    The covered statements are the ``with`` body only: context
    expressions of sibling with-items evaluate *before* the acquisition
    completes, so ``with self._rwlock().read_locked():`` does not put
    the ``_rwlock()`` call under the lock."""
    out: List[LockAcquisition] = []
    nested = {
        node
        for node in ast.walk(fn.node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node is not fn.node
    }

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if child in nested:
                continue
            if isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    tok = acquisition_token(program, fn, item.context_expr)
                    if tok is not None:
                        out.append(
                            LockAcquisition(tok[0], tok[1], child, child.body, fn)
                        )
            visit(child)

    visit(fn.node)
    return out


class CallGraph:
    """Cached resolution + closures over a built Program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._reachable: Dict[FunctionInfo, Set[str]] = {}
        self._may_acquire: Dict[FunctionInfo, Set[Tuple[str, bool]]] = {}
        self._acq_cache: Dict[FunctionInfo, List[LockAcquisition]] = {}
        self._opt_edges: Dict[
            FunctionInfo, Tuple[Set[str], List[FunctionInfo]]
        ] = {}
        self._precise_edges: Dict[
            FunctionInfo, Tuple[Set[Tuple[str, bool]], List[FunctionInfo]]
        ] = {}

    # -- lexical --------------------------------------------------------
    def acquisitions(self, fn: FunctionInfo) -> List[LockAcquisition]:
        if fn not in self._acq_cache:
            self._acq_cache[fn] = lexical_acquisitions(self.program, fn)
        return self._acq_cache[fn]

    # -- per-function edges (memoized: every closure that visits a
    # function reuses one resolution pass) -------------------------------
    def _optimistic_edges(
        self, fn: FunctionInfo
    ) -> Tuple[Set[str], List[FunctionInfo]]:
        cached = self._opt_edges.get(fn)
        if cached is None:
            names: Set[str] = set()
            targets: List[FunctionInfo] = []
            for call in self.program.iter_calls(fn):
                name = call_name(call)
                if name is not None:
                    names.add(name)
                targets.extend(
                    self.program.resolve_call(fn, call, optimistic=True)
                )
            # Nested defs run in service of the enclosing function.
            targets.extend(self.program.children.get(fn, ()))
            cached = (names, targets)
            self._opt_edges[fn] = cached
        return cached

    def _precise_edges_of(
        self, fn: FunctionInfo
    ) -> Tuple[Set[Tuple[str, bool]], List[FunctionInfo]]:
        cached = self._precise_edges.get(fn)
        if cached is None:
            tokens: Set[Tuple[str, bool]] = {
                (acq.token, acq.write) for acq in self.acquisitions(fn)
            }
            targets: List[FunctionInfo] = []
            # RWLock methods ARE acquisitions when called (not as a
            # with-context — that case is a lexical acquisition already).
            for call in self.program.iter_calls(fn):
                if call_name(call) == "run_transaction":
                    tok = acquisition_token(self.program, fn, call)
                    if tok is not None:
                        tokens.add(tok)
                targets.extend(self.program.resolve_call(fn, call))
            cached = (tokens, targets)
            self._precise_edges[fn] = cached
        return cached

    # -- optimistic closure ---------------------------------------------
    def reachable_call_names(self, fn: FunctionInfo) -> Set[str]:
        """Every call-target *name* reachable from ``fn`` through the
        optimistic call graph (attribute calls fan out to all same-named
        functions).  Nested defs of ``fn`` count as reachable — they run
        (or are scheduled) from the enclosing body."""
        cached = self._reachable.get(fn)
        if cached is not None:
            return cached
        names: Set[str] = set()
        seen: Set[FunctionInfo] = set()
        stack: List[FunctionInfo] = [fn]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            edge_names, targets = self._optimistic_edges(current)
            names |= edge_names
            for target in targets:
                if target not in seen:
                    stack.append(target)
        self._reachable[fn] = names
        return names

    # -- precise closure ------------------------------------------------
    def may_acquire(self, fn: FunctionInfo) -> Set[Tuple[str, bool]]:
        """Lock tokens ``fn`` may take — its own lexical acquisitions
        plus those of precisely-resolved callees, transitively.  Under-
        approximate by construction: an unresolved call contributes
        nothing, so every token in the result is justified by a chain
        of real definitions."""
        cached = self._may_acquire.get(fn)
        if cached is not None:
            return cached
        tokens: Set[Tuple[str, bool]] = set()
        seen: Set[FunctionInfo] = set()
        stack: List[FunctionInfo] = [fn]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            edge_tokens, targets = self._precise_edges_of(current)
            tokens |= edge_tokens
            for target in targets:
                if target not in seen:
                    stack.append(target)
        self._may_acquire[fn] = tokens
        return tokens

    # -- iteration helpers ----------------------------------------------
    def functions(self) -> Iterator[FunctionInfo]:
        yield from self.program.functions.values()

    def methods_of(self, cls: ClassInfo) -> Iterator[FunctionInfo]:
        yield from cls.methods.values()
