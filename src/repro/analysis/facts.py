"""Greatest-fixpoint fact solving for the interprocedural rules.

``rules/txn.py`` (PR 4) hand-rolled this loop for one question — which
methods are only ever called under a transaction.  The pattern is
general: start from the **top** of the lattice (every candidate holds
the fact) and repeatedly drop any candidate whose supporting condition
fails given the current set, until nothing changes.  Starting from the
top yields the *greatest* fixpoint, which is what mutually-recursive
helpers need: two methods that only call each other under a
transaction both keep the fact, where a least fixpoint would strip
both.

:func:`greatest_fixpoint` is the shared engine; TXN01 now delegates to
it, and the LCK rules use it for their lock-order edge propagation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Set, Tuple, TypeVar

T = TypeVar("T")

__all__ = ["greatest_fixpoint", "transitive_edges", "find_cycle"]


def greatest_fixpoint(
    candidates: Iterable[T],
    holds: Callable[[T, Set[T]], bool],
) -> Set[T]:
    """The largest subset ``S`` of ``candidates`` such that
    ``holds(x, S - {x})`` for every ``x`` in ``S``.

    ``holds`` receives the candidate and the *other* members still
    holding the fact, so conditions of the form "every caller is safe
    or itself fact-holding" express mutual recursion naturally."""
    current: Set[T] = set(candidates)
    changed = True
    while changed:
        changed = False
        for item in sorted(current, key=repr):
            if not holds(item, current - {item}):
                current.discard(item)
                changed = True
    return current


def transitive_edges(
    edges: Dict[T, Set[T]],
) -> Dict[T, Set[T]]:
    """Transitive closure of a small edge relation (the lock-order
    graph has a handful of nodes; cubic is fine and obvious)."""
    closure: Dict[T, Set[T]] = {k: set(v) for k, v in edges.items()}
    changed = True
    while changed:
        changed = False
        for node, succ in closure.items():
            extra: Set[T] = set()
            for nxt in succ:
                extra |= closure.get(nxt, set())
            if not extra <= succ:
                succ |= extra
                changed = True
    return closure


def find_cycle(edges: Dict[T, Set[T]]) -> Tuple[T, ...]:
    """A node sequence forming a cycle in ``edges``, or ``()`` if the
    graph is acyclic.  Deterministic: nodes are visited in sorted
    order so reports are stable across runs."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[T, int] = {}
    stack_path: list = []

    def visit(node: T) -> Tuple[T, ...]:
        color[node] = GRAY
        stack_path.append(node)
        for nxt in sorted(edges.get(node, ()), key=repr):
            state = color.get(nxt, WHITE)
            if state == GRAY:
                start = stack_path.index(nxt)
                return tuple(stack_path[start:] + [nxt])
            if state == WHITE:
                cycle = visit(nxt)
                if cycle:
                    return cycle
        stack_path.pop()
        color[node] = BLACK
        return ()

    for node in sorted(edges, key=repr):
        if color.get(node, WHITE) == WHITE:
            cycle = visit(node)
            if cycle:
                return cycle
    return ()
