"""Structured findings produced by the ``repro lint`` rule engine."""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional


class Severity(enum.Enum):
    """How bad a finding is.  ``ERROR`` findings fail the lint run;
    ``WARNING`` findings are reported but do not affect the exit code
    (no current rule emits them at lower than ERROR, but fixture tests
    and future rules need the distinction)."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Finding:
    """One rule violation, anchored to a file and line."""

    __slots__ = ("rule_id", "path", "line", "message", "severity", "suppressed")

    def __init__(
        self,
        rule_id: str,
        path: str,
        line: int,
        message: str,
        severity: Severity = Severity.ERROR,
        suppressed: bool = False,
    ) -> None:
        self.rule_id = rule_id
        self.path = path
        self.line = line
        self.message = message
        self.severity = severity
        #: True when a ``# reprolint: ignore[RULE]`` pragma on the line
        #: waives the finding; suppressed findings are kept (so ``--json``
        #: can audit waivers) but do not affect the exit code.
        self.suppressed = suppressed

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule_id, self.message)

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "severity": self.severity.value,
            "message": self.message,
            "suppressed": self.suppressed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        return cls(
            rule_id=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),
            message=str(data["message"]),
            severity=Severity(data.get("severity", "error")),
            suppressed=bool(data.get("suppressed", False)),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Finding):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", suppressed" if self.suppressed else ""
        return (
            f"Finding({self.rule_id}, {self.path}:{self.line}, "
            f"{self.severity.value}{flag}: {self.message!r})"
        )


def active(findings) -> list:
    """The findings that count toward the exit code: unsuppressed errors."""
    return [
        f for f in findings
        if not f.suppressed and f.severity is Severity.ERROR
    ]


def make_finding(
    rule_id: str,
    path: str,
    line: int,
    message: str,
    severity: Severity = Severity.ERROR,
    pragmas: Optional[Dict[int, set]] = None,
) -> Finding:
    """Build a finding, honoring any pragma suppression for its line."""
    suppressed = False
    if pragmas:
        rules = pragmas.get(line)
        if rules is not None and (rule_id in rules or "*" in rules):
            suppressed = True
    return Finding(rule_id, path, line, message, severity, suppressed)
