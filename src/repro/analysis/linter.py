"""``repro lint`` — the project-specific static-analysis engine.

The catalog's correctness rests on a handful of conventions that no
general-purpose tool knows about: every write flows through
``run_transaction`` (PR 2), fault-site names stay registered and
exercised (PR 2), metric names stay declared and unique (PR 1), cached
plan stages stay literal-free (PR 3), and the two storage backends keep
one interface (PR 3).  This module turns those conventions into
machine-checked invariants: it parses ``src/`` (and, for fault-site
coverage, ``tests/faults/``) into ASTs once, hands the parsed modules
to each registered :class:`Rule`, and collects structured
:class:`~repro.analysis.findings.Finding` records.

A finding can be waived with an inline pragma on the offending line::

    cur.execute(...)  # reprolint: ignore[TXN01] temp-table scratch

Waivers stay visible: suppressed findings are kept in the report (with
``suppressed: true`` in ``--json`` output) so they can be audited; they
simply do not affect the exit code.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Finding, Severity, active, make_finding

__all__ = [
    "LintContext",
    "Rule",
    "SourceModule",
    "active",
    "default_rules",
    "render_json_report",
    "render_sarif_report",
    "render_text_report",
    "run_lint",
    "source_texts",
]

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*ignore(?:\[([A-Za-z0-9_*,\s]+)\])?"
)


def parse_pragmas(text: str) -> Dict[int, Set[str]]:
    """``line -> {rule ids}`` for every ``# reprolint: ignore[...]``
    pragma; a bare ``ignore`` (no bracket) waives every rule (``*``)."""
    pragmas: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = match.group(1)
        if rules is None:
            pragmas[lineno] = {"*"}
        else:
            pragmas[lineno] = {r.strip() for r in rules.split(",") if r.strip()}
    return pragmas


def expand_pragmas(
    tree: ast.Module, pragmas: Dict[int, Set[str]]
) -> Dict[int, Set[str]]:
    """Widen the raw line→rules pragma map to cover whole statements.

    Rules report on a statement's *first* line, but a pragma naturally
    lives where the reader put it — on the closing line of a wrapped
    call, or on a decorator above a ``def``.  Two widenings keep the
    intended behavior:

    * a pragma on **any** physical line of a simple (body-less)
      statement applies to the statement's entire ``lineno..end_lineno``
      range;
    * a pragma on a decorator line of a function/class definition
      applies to the ``def``/``class`` line itself (where PLN/PAR-style
      definition findings anchor).

    Compound statements (``if``/``with``/``for`` …) deliberately do not
    spread a body pragma across the whole block — a waiver inside a
    ``with`` must not silence an unrelated finding three lines up."""
    if not pragmas:
        return pragmas
    expanded: Dict[int, Set[str]] = {k: set(v) for k, v in pragmas.items()}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            for decorator in node.decorator_list:
                for line in range(
                    decorator.lineno, (decorator.end_lineno or decorator.lineno) + 1
                ):
                    rules = pragmas.get(line)
                    if rules:
                        expanded.setdefault(node.lineno, set()).update(rules)
            continue
        if not isinstance(node, ast.stmt) or hasattr(node, "body"):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        if end == node.lineno:
            continue
        span = range(node.lineno, end + 1)
        hits: Set[str] = set()
        for line in span:
            hits.update(pragmas.get(line, ()))
        if hits:
            for line in span:
                expanded.setdefault(line, set()).update(hits)
    return expanded


class SourceModule:
    """One parsed source file: AST, raw text, and pragma map."""

    __slots__ = ("path", "display", "text", "tree", "pragmas", "error")

    def __init__(self, path: Path, display: str) -> None:
        self.path = path
        self.display = display
        self.text = path.read_text()
        self.pragmas = parse_pragmas(self.text)
        self.error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(
                self.text, filename=str(path)
            )
        except SyntaxError as exc:
            self.tree = None
            self.error = exc
        if self.tree is not None:
            self.pragmas = expand_pragmas(self.tree, self.pragmas)

    def endswith(self, *suffixes: str) -> bool:
        """Match by path suffix so rules target the same files in the
        real tree and in fixture trees."""
        posix = self.path.as_posix()
        return any(posix.endswith(suffix) for suffix in suffixes)


class LintContext:
    """Everything a rule sees: parsed ``src`` modules plus the
    ``tests/faults`` modules (for FLT01 coverage), the shared
    whole-program model, and a findings sink.

    ``scope`` (``repro lint --changed``) restricts which modules
    *file-level* rules report on — ``modules_matching`` filters to it —
    while ``self.modules`` and the :class:`Program` always cover the
    full tree, so interprocedural facts stay whole-program even when
    only one file is being re-checked."""

    def __init__(
        self,
        modules: Sequence[SourceModule],
        fault_test_modules: Sequence[SourceModule] = (),
        scope: Optional[Set[str]] = None,
    ) -> None:
        self.modules = list(modules)
        self.fault_test_modules = list(fault_test_modules)
        self.findings: List[Finding] = []
        self.scope = scope
        self._program = None

    @property
    def program(self):
        """The shared whole-program model, built on first use."""
        if self._program is None:
            from .program import build_program

            self._program = build_program(self.modules)
        return self._program

    def in_scope(self, module: SourceModule) -> bool:
        return self.scope is None or module.display in self.scope

    def modules_matching(self, *suffixes: str) -> List[SourceModule]:
        return [
            m for m in self.modules
            if m.endswith(*suffixes) and self.in_scope(m)
        ]

    def report(
        self,
        rule_id: str,
        module: Optional[SourceModule],
        line: int,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> None:
        display = module.display if module is not None else "<project>"
        pragmas = module.pragmas if module is not None else None
        self.findings.append(
            make_finding(rule_id, display, line, message, severity, pragmas)
        )


class Rule:
    """A named invariant checked over the parsed tree."""

    id: str = "RULE"
    title: str = ""

    def check(self, ctx: LintContext) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Shared AST helpers used by the concrete rules
# ---------------------------------------------------------------------------

def call_name(node: ast.Call) -> Optional[str]:
    """The trailing name of a call target: ``foo(...)`` and
    ``self.foo(...)`` both yield ``"foo"``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def const_str(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def str_prefix(node: Optional[ast.AST]) -> Optional[str]:
    """The leading literal text of a string expression: a plain
    constant, or the constant head of an f-string (enough to read a
    SQL verb or a site prefix off a partially dynamic string)."""
    literal = const_str(node)
    if literal is not None:
        return literal
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value
    return None


def local_str_values(scope: ast.AST, name: str) -> Optional[List[str]]:
    """Every string a local ``name`` can hold inside ``scope``, when
    all of its bindings are resolvable literals (assignments or
    for-loops over literal tuples); ``None`` when any binding is
    opaque."""
    values: List[str] = []
    resolvable = True
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    prefix = str_prefix(node.value)
                    if prefix is None:
                        resolvable = False
                    else:
                        values.append(prefix)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            if isinstance(target, ast.Name) and target.id == name:
                iter_node = node.iter
                if isinstance(iter_node, (ast.Tuple, ast.List)):
                    for element in iter_node.elts:
                        prefix = str_prefix(element)
                        if prefix is None:
                            resolvable = False
                        else:
                            values.append(prefix)
                else:
                    resolvable = False
    if not resolvable or not values:
        return None
    return values


def enclosing_functions(
    tree: ast.AST,
) -> Dict[ast.AST, List[ast.AST]]:
    """Map every AST node to its chain of enclosing function-like
    scopes (outermost first)."""
    chains: Dict[ast.AST, List[ast.AST]] = {}

    def visit(node: ast.AST, chain: List[ast.AST]) -> None:
        chains[node] = chain
        is_scope = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        child_chain = chain + [node] if is_scope else chain
        for child in ast.iter_child_nodes(node):
            visit(child, child_chain)

    visit(tree, [])
    return chains


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------

def default_rules() -> List[Rule]:
    """The five repo rules, bound to the live registries."""
    from .rules import build_default_rules

    return build_default_rules()


def _iter_py_files(root: Path) -> Iterable[Path]:
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


def _display_for(path: Path, base: Optional[Path]) -> str:
    if base is not None:
        try:
            return path.relative_to(base).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def load_modules(root: Path, display_base: Optional[Path] = None) -> List[SourceModule]:
    base = display_base if display_base is not None else root.parent
    return [SourceModule(path, _display_for(path, base)) for path in _iter_py_files(root)]


def source_texts(
    root: Path, display_base: Optional[Path] = None
) -> List[Tuple[str, str]]:
    """``(display, text)`` pairs for the tree without parsing anything —
    the cheap input to :func:`~repro.analysis.program.content_digest`
    that lets a warm cached run skip AST construction entirely."""
    base = display_base if display_base is not None else root.parent
    out: List[Tuple[str, str]] = []
    for path in _iter_py_files(root):
        try:
            text = path.read_text()
        except OSError:
            text = ""
        out.append((_display_for(path, base), text))
    return out


def run_lint(
    src_root: Path,
    fault_tests_root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    display_base: Optional[Path] = None,
    scope: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint the tree rooted at ``src_root``; returns all findings
    (including suppressed ones), sorted by location.  ``scope`` limits
    which files rules report on (``--changed``) without narrowing the
    whole-program model."""
    modules = load_modules(src_root, display_base)
    fault_tests: List[SourceModule] = []
    if fault_tests_root is not None and fault_tests_root.is_dir():
        fault_tests = load_modules(fault_tests_root, display_base)
    ctx = LintContext(modules, fault_tests, scope=scope)
    for module in ctx.modules + ctx.fault_test_modules:
        if module.error is not None:
            ctx.report(
                "PARSE", module, module.error.lineno or 1,
                f"file does not parse: {module.error.msg}",
            )
    for rule in (rules if rules is not None else default_rules()):
        rule.check(ctx)
    ctx.findings.sort(key=Finding.sort_key)
    return ctx.findings


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------

def render_text_report(findings: Sequence[Finding]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines: List[str] = []
    for f in findings:
        tag = " (suppressed)" if f.suppressed else ""
        lines.append(
            f"{f.location()}: {f.rule_id} {f.severity.value}{tag}: {f.message}"
        )
    live = active(findings)
    suppressed = sum(1 for f in findings if f.suppressed)
    summary = f"{len(live)} finding(s)"
    if suppressed:
        summary += f", {suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_json_report(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable schema, round-trips through
    :meth:`Finding.from_dict`)."""
    live = active(findings)
    payload = {
        "schema": "repro.lint/v1",
        "findings": [f.as_dict() for f in findings],
        "counts": {
            "total": len(findings),
            "active": len(live),
            "suppressed": sum(1 for f in findings if f.suppressed),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def parse_json_report(text: str) -> List[Finding]:
    """Inverse of :func:`render_json_report` (used by tooling/tests)."""
    payload = json.loads(text)
    return [Finding.from_dict(entry) for entry in payload.get("findings", ())]


def render_sarif_report(
    findings: Sequence[Finding],
    rules: Optional[Sequence[Rule]] = None,
) -> str:
    """SARIF 2.1.0 report (``repro lint --sarif``) so CI can annotate
    pull requests with findings in place.  Suppressed findings are
    carried as SARIF suppressions rather than dropped, mirroring the
    audit-visible waiver policy of the JSON report."""
    rule_meta = {}
    for rule in rules or default_rules():
        rule_meta[rule.id] = {
            "id": rule.id,
            "shortDescription": {"text": rule.title or rule.id},
        }
    rule_meta.setdefault(
        "PARSE",
        {"id": "PARSE", "shortDescription": {"text": "file does not parse"}},
    )
    results = []
    for f in findings:
        rule_meta.setdefault(
            f.rule_id,
            {"id": f.rule_id, "shortDescription": {"text": f.rule_id}},
        )
        entry = {
            "ruleId": f.rule_id,
            "level": "error" if f.severity is Severity.ERROR else "warning",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {"startLine": max(f.line, 1)},
                    }
                }
            ],
        }
        if f.suppressed:
            entry["suppressions"] = [
                {"kind": "inSource", "justification": "reprolint: ignore pragma"}
            ]
        results.append(entry)
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "https://example.invalid/repro",
                        "version": "1.0.0",
                        "rules": [
                            rule_meta[key] for key in sorted(rule_meta)
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
