"""``repro lint`` — the project-specific static-analysis engine.

The catalog's correctness rests on a handful of conventions that no
general-purpose tool knows about: every write flows through
``run_transaction`` (PR 2), fault-site names stay registered and
exercised (PR 2), metric names stay declared and unique (PR 1), cached
plan stages stay literal-free (PR 3), and the two storage backends keep
one interface (PR 3).  This module turns those conventions into
machine-checked invariants: it parses ``src/`` (and, for fault-site
coverage, ``tests/faults/``) into ASTs once, hands the parsed modules
to each registered :class:`Rule`, and collects structured
:class:`~repro.analysis.findings.Finding` records.

A finding can be waived with an inline pragma on the offending line::

    cur.execute(...)  # reprolint: ignore[TXN01] temp-table scratch

Waivers stay visible: suppressed findings are kept in the report (with
``suppressed: true`` in ``--json`` output) so they can be audited; they
simply do not affect the exit code.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Finding, Severity, active, make_finding

__all__ = [
    "LintContext",
    "Rule",
    "SourceModule",
    "active",
    "default_rules",
    "render_json_report",
    "render_text_report",
    "run_lint",
]

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*ignore(?:\[([A-Za-z0-9_*,\s]+)\])?"
)


def parse_pragmas(text: str) -> Dict[int, Set[str]]:
    """``line -> {rule ids}`` for every ``# reprolint: ignore[...]``
    pragma; a bare ``ignore`` (no bracket) waives every rule (``*``)."""
    pragmas: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = match.group(1)
        if rules is None:
            pragmas[lineno] = {"*"}
        else:
            pragmas[lineno] = {r.strip() for r in rules.split(",") if r.strip()}
    return pragmas


class SourceModule:
    """One parsed source file: AST, raw text, and pragma map."""

    __slots__ = ("path", "display", "text", "tree", "pragmas", "error")

    def __init__(self, path: Path, display: str) -> None:
        self.path = path
        self.display = display
        self.text = path.read_text()
        self.pragmas = parse_pragmas(self.text)
        self.error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(
                self.text, filename=str(path)
            )
        except SyntaxError as exc:
            self.tree = None
            self.error = exc

    def endswith(self, *suffixes: str) -> bool:
        """Match by path suffix so rules target the same files in the
        real tree and in fixture trees."""
        posix = self.path.as_posix()
        return any(posix.endswith(suffix) for suffix in suffixes)


class LintContext:
    """Everything a rule sees: parsed ``src`` modules plus the
    ``tests/faults`` modules (for FLT01 coverage) and a findings sink."""

    def __init__(
        self,
        modules: Sequence[SourceModule],
        fault_test_modules: Sequence[SourceModule] = (),
    ) -> None:
        self.modules = list(modules)
        self.fault_test_modules = list(fault_test_modules)
        self.findings: List[Finding] = []

    def modules_matching(self, *suffixes: str) -> List[SourceModule]:
        return [m for m in self.modules if m.endswith(*suffixes)]

    def report(
        self,
        rule_id: str,
        module: Optional[SourceModule],
        line: int,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> None:
        display = module.display if module is not None else "<project>"
        pragmas = module.pragmas if module is not None else None
        self.findings.append(
            make_finding(rule_id, display, line, message, severity, pragmas)
        )


class Rule:
    """A named invariant checked over the parsed tree."""

    id: str = "RULE"
    title: str = ""

    def check(self, ctx: LintContext) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Shared AST helpers used by the concrete rules
# ---------------------------------------------------------------------------

def call_name(node: ast.Call) -> Optional[str]:
    """The trailing name of a call target: ``foo(...)`` and
    ``self.foo(...)`` both yield ``"foo"``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def const_str(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def str_prefix(node: Optional[ast.AST]) -> Optional[str]:
    """The leading literal text of a string expression: a plain
    constant, or the constant head of an f-string (enough to read a
    SQL verb or a site prefix off a partially dynamic string)."""
    literal = const_str(node)
    if literal is not None:
        return literal
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value
    return None


def local_str_values(scope: ast.AST, name: str) -> Optional[List[str]]:
    """Every string a local ``name`` can hold inside ``scope``, when
    all of its bindings are resolvable literals (assignments or
    for-loops over literal tuples); ``None`` when any binding is
    opaque."""
    values: List[str] = []
    resolvable = True
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    prefix = str_prefix(node.value)
                    if prefix is None:
                        resolvable = False
                    else:
                        values.append(prefix)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            if isinstance(target, ast.Name) and target.id == name:
                iter_node = node.iter
                if isinstance(iter_node, (ast.Tuple, ast.List)):
                    for element in iter_node.elts:
                        prefix = str_prefix(element)
                        if prefix is None:
                            resolvable = False
                        else:
                            values.append(prefix)
                else:
                    resolvable = False
    if not resolvable or not values:
        return None
    return values


def enclosing_functions(
    tree: ast.AST,
) -> Dict[ast.AST, List[ast.AST]]:
    """Map every AST node to its chain of enclosing function-like
    scopes (outermost first)."""
    chains: Dict[ast.AST, List[ast.AST]] = {}

    def visit(node: ast.AST, chain: List[ast.AST]) -> None:
        chains[node] = chain
        is_scope = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        child_chain = chain + [node] if is_scope else chain
        for child in ast.iter_child_nodes(node):
            visit(child, child_chain)

    visit(tree, [])
    return chains


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------

def default_rules() -> List[Rule]:
    """The five repo rules, bound to the live registries."""
    from .rules import build_default_rules

    return build_default_rules()


def _iter_py_files(root: Path) -> Iterable[Path]:
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


def _display_for(path: Path, base: Optional[Path]) -> str:
    if base is not None:
        try:
            return path.relative_to(base).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def load_modules(root: Path, display_base: Optional[Path] = None) -> List[SourceModule]:
    base = display_base if display_base is not None else root.parent
    return [SourceModule(path, _display_for(path, base)) for path in _iter_py_files(root)]


def run_lint(
    src_root: Path,
    fault_tests_root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    display_base: Optional[Path] = None,
) -> List[Finding]:
    """Lint the tree rooted at ``src_root``; returns all findings
    (including suppressed ones), sorted by location."""
    modules = load_modules(src_root, display_base)
    fault_tests: List[SourceModule] = []
    if fault_tests_root is not None and fault_tests_root.is_dir():
        fault_tests = load_modules(fault_tests_root, display_base)
    ctx = LintContext(modules, fault_tests)
    for module in ctx.modules + ctx.fault_test_modules:
        if module.error is not None:
            ctx.report(
                "PARSE", module, module.error.lineno or 1,
                f"file does not parse: {module.error.msg}",
            )
    for rule in (rules if rules is not None else default_rules()):
        rule.check(ctx)
    ctx.findings.sort(key=Finding.sort_key)
    return ctx.findings


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------

def render_text_report(findings: Sequence[Finding]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines: List[str] = []
    for f in findings:
        tag = " (suppressed)" if f.suppressed else ""
        lines.append(
            f"{f.location()}: {f.rule_id} {f.severity.value}{tag}: {f.message}"
        )
    live = active(findings)
    suppressed = sum(1 for f in findings if f.suppressed)
    summary = f"{len(live)} finding(s)"
    if suppressed:
        summary += f", {suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_json_report(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable schema, round-trips through
    :meth:`Finding.from_dict`)."""
    live = active(findings)
    payload = {
        "schema": "repro.lint/v1",
        "findings": [f.as_dict() for f in findings],
        "counts": {
            "total": len(findings),
            "active": len(live),
            "suppressed": sum(1 for f in findings if f.suppressed),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def parse_json_report(text: str) -> List[Finding]:
    """Inverse of :func:`render_json_report` (used by tooling/tests)."""
    payload = json.loads(text)
    return [Finding.from_dict(entry) for entry in payload.get("findings", ())]
