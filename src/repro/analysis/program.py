"""The whole-program model behind the interprocedural lint rules.

PR 4's rules were strictly per-file: each rule re-walked its own
module's AST and could not see that a helper called three frames deep
touches shared state without a lock.  This module parses the whole
tree **once** into a :class:`Program` — a module index, a class table
with base resolution, and a function table keyed by qualified name —
which :mod:`repro.analysis.callgraph` turns into a project-wide call
graph and :mod:`repro.analysis.facts` runs fixpoint solvers over.

Resolution is name-based and deliberately two-speed:

* ``self.m()`` / ``cls.m()`` resolve **precisely** through the class
  table (own methods first, then bases by simple name, transitively);
  bare ``f()`` resolves to same-module functions and then to imported
  names.  Precise resolution never guesses, so facts derived from it
  (may-acquire sets, lock-order edges) carry no cross-class noise.
* ``obj.m()`` on an arbitrary expression resolves **optimistically**
  to every program function named ``m`` — a sound over-approximation
  for reachability questions ("does this entry point reach a lock
  acquire on *some* path"), where missing an edge would fabricate a
  finding.

Both resolutions are computed once per build and cached on the
:class:`Program`; a module-level parse cache keyed by content hash
keeps repeated in-process ``run_lint`` calls (the test suite runs
hundreds) from re-parsing unchanged files.
"""

from __future__ import annotations

import ast
import hashlib
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .linter import SourceModule, call_name

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "Program",
    "content_digest",
]


def content_digest(texts: Sequence[Tuple[str, str]]) -> str:
    """Stable digest over ``(display, text)`` pairs — the cache key for
    everything derived from a set of sources."""
    digest = hashlib.sha256()
    for display, text in sorted(texts):
        digest.update(display.encode())
        digest.update(b"\x00")
        digest.update(text.encode())
        digest.update(b"\x01")
    return digest.hexdigest()


class FunctionInfo:
    """One function-like scope: a method, a module-level function, or
    a nested function (lambdas are anonymous and not indexed)."""

    __slots__ = ("qualname", "name", "node", "module", "cls", "parent")

    def __init__(
        self,
        qualname: str,
        node: ast.AST,
        module: "ModuleInfo",
        cls: Optional["ClassInfo"],
        parent: Optional["FunctionInfo"],
    ) -> None:
        self.qualname = qualname
        self.name = getattr(node, "name", "<lambda>")
        self.node = node
        self.module = module
        self.cls = cls
        self.parent = parent

    def is_abstract(self) -> bool:
        """True for stub bodies: a lone docstring, ``...``, ``pass``,
        or a single unconditional ``raise``."""
        body = list(self.node.body)
        if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant
        ):
            body = body[1:]
        if not body:
            return True
        if len(body) == 1:
            stmt = body[0]
            if isinstance(stmt, ast.Pass) or isinstance(stmt, ast.Raise):
                return True
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                return True
            if isinstance(stmt, ast.Return) and (
                stmt.value is None or isinstance(stmt.value, ast.Constant)
            ):
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname})"


class ClassInfo:
    """One class definition with its direct methods and base names."""

    __slots__ = ("name", "node", "module", "methods", "base_names")

    def __init__(self, name: str, node: ast.ClassDef, module: "ModuleInfo") -> None:
        self.name = name
        self.node = node
        self.module = module
        self.methods: Dict[str, FunctionInfo] = {}
        self.base_names: List[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                self.base_names.append(base.id)
            elif isinstance(base, ast.Attribute):
                self.base_names.append(base.attr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClassInfo({self.name})"


class ModuleInfo:
    """One parsed module: its classes, functions, and imported names."""

    __slots__ = ("source", "classes", "functions", "imports")

    def __init__(self, source: SourceModule) -> None:
        self.source = source
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: local alias -> imported simple name (``from x import f as g``
        #: maps ``g`` to ``f``; ``import x.y`` maps ``x`` to ``x``).
        self.imports: Dict[str, str] = {}

    @property
    def display(self) -> str:
        return self.source.display


#: In-process parse-product cache: content digest of one file -> the
#: structural index built from it is NOT cached (it holds AST object
#: identity used as dict keys by rules); SourceModule itself caches the
#: parse, so Program construction is an AST walk only.
class Program:
    """The whole tree, parsed once and indexed for interprocedural
    rules.  Built by :func:`build_program`; one instance is shared by
    every rule in a lint run through ``LintContext.program``."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules: List[ModuleInfo] = []
        #: qualified name ("module.py::Class.method") -> FunctionInfo
        self.functions: Dict[str, FunctionInfo] = {}
        #: simple function/method name -> every FunctionInfo bearing it
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        #: simple class name -> every ClassInfo bearing it
        self.classes: Dict[str, List[ClassInfo]] = {}
        #: FunctionInfo for an AST node (defs only, not lambdas)
        self.by_node: Dict[ast.AST, FunctionInfo] = {}
        #: directly nested defs per function (parent backlink inverted)
        self.children: Dict[FunctionInfo, List[FunctionInfo]] = {}
        #: memoized per-function call lists (closures revisit functions
        #: once per entry point; the AST walk must not repeat)
        self._call_lists: Dict[FunctionInfo, List[ast.Call]] = {}
        self.digest = content_digest(
            [(m.display, m.text) for m in modules]
        )
        for source in modules:
            if source.tree is None:
                continue
            self.modules.append(self._index_module(source))
        for info in self.functions.values():
            if info.parent is not None:
                self.children.setdefault(info.parent, []).append(info)

    # -- construction ---------------------------------------------------
    def _index_module(self, source: SourceModule) -> ModuleInfo:
        module = ModuleInfo(source)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    module.imports[local] = alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    local = alias.asname or alias.name
                    module.imports[local] = alias.name

        def add_function(
            node: ast.AST,
            cls: Optional[ClassInfo],
            parent: Optional[FunctionInfo],
        ) -> FunctionInfo:
            scope = f"{cls.name}." if cls is not None else ""
            prefix = f"{parent.qualname}::" if parent is not None else (
                f"{module.display}::"
            )
            qualname = (
                f"{prefix}{scope}{node.name}"
                if parent is None
                else f"{prefix}{node.name}"
            )
            info = FunctionInfo(qualname, node, module, cls, parent)
            self.functions[qualname] = info
            self.by_name.setdefault(info.name, []).append(info)
            self.by_node[node] = info
            if cls is not None and parent is None:
                cls.methods[info.name] = info
            elif cls is None and parent is None:
                module.functions[info.name] = info
            return info

        def visit(
            node: ast.AST,
            cls: Optional[ClassInfo],
            parent: Optional[FunctionInfo],
        ) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    info = ClassInfo(child.name, child, module)
                    module.classes[child.name] = info
                    self.classes.setdefault(child.name, []).append(info)
                    visit(child, info, None)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = add_function(child, cls if parent is None else None, parent)
                    visit(child, cls, fn)
                else:
                    visit(child, cls, parent)

        visit(source.tree, None, None)
        return module

    # -- resolution -----------------------------------------------------
    def bases_of(self, cls: ClassInfo) -> List[ClassInfo]:
        """Transitive base classes resolved by simple name (first
        definition wins; cycles are cut)."""
        out: List[ClassInfo] = []
        seen = {cls.name}
        stack = list(cls.base_names)
        while stack:
            name = stack.pop(0)
            if name in seen:
                continue
            seen.add(name)
            candidates = self.classes.get(name)
            if not candidates:
                continue
            base = candidates[0]
            out.append(base)
            stack.extend(base.base_names)
        return out

    def base_name_closure(self, cls: ClassInfo) -> Set[str]:
        """Every base *name* in the transitive chain, including names
        that never resolve to a definition in the program (fixture
        trees subclass ``HybridStore`` without shipping it)."""
        names: Set[str] = set()
        stack = list(cls.base_names)
        while stack:
            name = stack.pop()
            if name in names:
                continue
            names.add(name)
            for base in self.classes.get(name, ()):
                stack.extend(base.base_names)
        return names

    def subclasses_of(self, name: str) -> List[ClassInfo]:
        """Every class whose (transitive) base-name chain includes
        ``name`` — how rules find both backends from ``HybridStore``."""
        out = []
        for candidates in self.classes.values():
            for cls in candidates:
                if cls.name == name or name in self.base_name_closure(cls):
                    out.append(cls)
        return out

    def resolve_method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """``self.<name>`` resolution: the class's own method, else the
        first base (by MRO-ish order) defining it."""
        if name in cls.methods:
            return cls.methods[name]
        for base in self.bases_of(cls):
            if name in base.methods:
                return base.methods[name]
        return None

    def overrides_of(self, cls: ClassInfo, name: str) -> List[FunctionInfo]:
        """Virtual dispatch: the method plus every subclass override
        (a ``self._txn_begin()`` in the base reaches both backends)."""
        out: List[FunctionInfo] = []
        own = self.resolve_method(cls, name)
        if own is not None:
            out.append(own)
        for sub in self.subclasses_of(cls.name):
            if sub is not cls and name in sub.methods:
                out.append(sub.methods[name])
        return out

    def enclosing_class(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        node: Optional[FunctionInfo] = fn
        while node is not None:
            if node.cls is not None:
                return node.cls
            node = node.parent
        return None

    def resolve_call(
        self, fn: FunctionInfo, node: ast.Call, optimistic: bool = False
    ) -> List[FunctionInfo]:
        """Targets of one call site from inside ``fn``.

        Precise mode resolves ``self.m()`` (own class + bases +
        subclass overrides), bare names (nested siblings, same-module
        functions, imported names), and nothing else.  Optimistic mode
        adds every program function matching an attribute call's
        trailing name."""
        func = node.func
        name = call_name(node)
        if name is None:
            return []
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id in ("self", "cls"):
                cls = self.enclosing_class(fn)
                if cls is not None:
                    targets = self.overrides_of(cls, name)
                    if targets:
                        return targets
                return self.by_name.get(name, []) if optimistic else []
            if optimistic:
                return self.by_name.get(name, [])
            return []
        if isinstance(func, ast.Name):
            # Nested sibling / own module / imported function.
            scope = fn.parent
            while scope is not None:
                for child in ast.walk(scope.node):
                    info = self.by_node.get(child)
                    if info is not None and info.name == name and info.parent is scope:
                        return [info]
                scope = scope.parent
            module = fn.module
            if name in module.functions:
                return [module.functions[name]]
            imported = module.imports.get(name)
            if imported is not None:
                candidates = [
                    f for f in self.by_name.get(imported, [])
                    if f.cls is None and f.parent is None
                ]
                if candidates:
                    return candidates
            if optimistic:
                return [
                    f for f in self.by_name.get(name, [])
                    if f.parent is None
                ]
            return []
        return []

    def iter_calls(self, fn: FunctionInfo) -> Iterator[ast.Call]:
        """Call nodes belonging to ``fn`` itself (not to nested defs —
        those are separate FunctionInfos with their own call sites;
        lambdas stay with their enclosing function).  Memoized: the
        walk runs once per function per Program."""
        cached = self._call_lists.get(fn)
        if cached is None:
            cached = []
            stack: List[ast.AST] = [fn.node]
            while stack:
                node = stack.pop()
                for child in ast.iter_child_nodes(node):
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    if isinstance(child, ast.Call):
                        cached.append(child)
                    stack.append(child)
            self._call_lists[fn] = cached
        return iter(cached)


def build_program(modules: Sequence[SourceModule]) -> Program:
    return Program(modules)
