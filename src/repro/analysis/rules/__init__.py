"""The concrete ``repro lint`` rules."""

from __future__ import annotations

from typing import List

from ..linter import Rule
from .fault_sites import FaultSiteRule
from .metrics import MetricNameRule
from .parity import BackendParityRule
from .plan_purity import PlanPurityRule
from .stage_surface import StageSurfaceRule
from .txn import TxnSafetyRule

__all__ = [
    "BackendParityRule",
    "FaultSiteRule",
    "MetricNameRule",
    "PlanPurityRule",
    "StageSurfaceRule",
    "TxnSafetyRule",
    "build_default_rules",
]


def build_default_rules() -> List[Rule]:
    """All six repo rules, bound to the live site/metric registries."""
    return [
        TxnSafetyRule(),
        FaultSiteRule(),
        MetricNameRule(),
        PlanPurityRule(),
        StageSurfaceRule(),
        BackendParityRule(),
    ]
