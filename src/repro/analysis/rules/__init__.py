"""The concrete ``repro lint`` rules."""

from __future__ import annotations

from typing import List

from ..linter import Rule
from .fault_sites import FaultSiteRule
from .guarded_fields import GuardedFieldRule
from .lock_discipline import LockOrderRule, LockReachabilityRule
from .metrics import MetricNameRule
from .parity import BackendParityRule
from .plan_purity import PlanPurityRule
from .resources import ResourceLifecycleRule
from .sql_safety import SqlSafetyRule
from .stage_surface import StageSurfaceRule
from .txn import TxnSafetyRule

__all__ = [
    "BackendParityRule",
    "FaultSiteRule",
    "GuardedFieldRule",
    "LockOrderRule",
    "LockReachabilityRule",
    "MetricNameRule",
    "PlanPurityRule",
    "ResourceLifecycleRule",
    "SqlSafetyRule",
    "StageSurfaceRule",
    "TxnSafetyRule",
    "build_default_rules",
]


def build_default_rules() -> List[Rule]:
    """All eleven repo rules, bound to the live site/metric registries."""
    return [
        TxnSafetyRule(),
        FaultSiteRule(),
        MetricNameRule(),
        PlanPurityRule(),
        StageSurfaceRule(),
        BackendParityRule(),
        LockReachabilityRule(),
        LockOrderRule(),
        GuardedFieldRule(),
        ResourceLifecycleRule(),
        SqlSafetyRule(),
    ]
