"""FLT01 — fault-site strings stay registered and exercised.

The crash-safety suite (PR 2) drives deterministic fault injection by
*site name* (``insert:clobs``, ``store_object``, ...).  Site names are
plain strings, so a rename on the write path silently detaches every
test that targeted the old name — the sweep still passes, it just no
longer injects anything.  This rule pins both ends:

* every site literal passed to ``FaultPlan(site=...)``,
  ``run_transaction(...)``, ``transaction(...)``, or ``_fault(...)``
  anywhere in ``src/`` must appear in the central registry
  (:mod:`repro.faults.sites`);
* a dynamically built site must go through
  :func:`repro.faults.sites.check_site` (runtime-validated) — a bare
  f-string or variable is a finding;
* every registered *statement* site must appear as a string literal in
  at least one module under ``tests/faults/`` — dead sweep detection.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Optional, Set

from ..linter import (
    LintContext,
    Rule,
    call_name,
    const_str,
    local_str_values,
)

#: Calls whose first positional argument is a transaction-site label.
_TXN_CALLS = frozenset({"run_transaction", "transaction"})


class FaultSiteRule(Rule):
    """See module docstring."""

    id = "FLT01"
    title = "fault sites must be registered and test-covered"

    def __init__(
        self,
        statement_sites: Optional[FrozenSet[str]] = None,
        transaction_sites: Optional[FrozenSet[str]] = None,
        registry_path: str = "faults/sites.py",
    ) -> None:
        if statement_sites is None or transaction_sites is None:
            from ...faults import sites as _sites

            statement_sites = _sites.STATEMENT_SITES
            transaction_sites = _sites.TRANSACTION_SITES
        self.statement_sites = statement_sites
        self.transaction_sites = transaction_sites
        self.all_sites = statement_sites | transaction_sites
        self.registry_path = registry_path

    # ------------------------------------------------------------------
    def _site_arg(self, node: ast.Call) -> Optional[ast.AST]:
        """The site expression of a relevant call, or None."""
        name = call_name(node)
        if name == "FaultPlan":
            for kw in node.keywords:
                if kw.arg == "site":
                    return kw.value
            if len(node.args) >= 2:
                return node.args[1]
            return None
        if name in _TXN_CALLS or name == "_fault":
            return node.args[0] if node.args else None
        return None

    def _expected_for(self, node: ast.Call) -> FrozenSet[str]:
        name = call_name(node)
        if name in _TXN_CALLS:
            return self.transaction_sites
        if name == "_fault":
            return self.statement_sites
        return self.all_sites  # FaultPlan targets either kind

    def _check_site_value(
        self,
        ctx: LintContext,
        module,
        call: ast.Call,
        arg: ast.AST,
        scope: Optional[ast.AST],
    ) -> None:
        expected = self._expected_for(call)
        kind = call_name(call)
        literal = const_str(arg)
        if literal is not None:
            if literal not in expected:
                ctx.report(
                    self.id, module, call.lineno,
                    f"site {literal!r} passed to {kind} is not registered in "
                    f"repro.{self.registry_path.replace('/', '.')[:-3]}",
                )
            return
        # check_site(...) wrapping delegates validation to runtime.
        if isinstance(arg, ast.Call) and call_name(arg) == "check_site":
            return
        if isinstance(arg, ast.Name) and scope is not None:
            values = local_str_values(scope, arg.id)
            if values is not None:
                for value in values:
                    if value not in expected:
                        ctx.report(
                            self.id, module, call.lineno,
                            f"site {value!r} (via local {arg.id!r}) passed to "
                            f"{kind} is not registered",
                        )
                return
        ctx.report(
            self.id, module, call.lineno,
            f"dynamic fault site passed to {kind}; use a string literal or "
            "wrap it in repro.faults.sites.check_site()",
        )

    # ------------------------------------------------------------------
    def check(self, ctx: LintContext) -> None:
        for module in ctx.modules:
            if module.tree is None:
                continue
            # Skip the registry itself and the FaultPlan definition —
            # their mentions of site strings are declarations, not uses.
            if module.endswith(self.registry_path, "faults/plan.py"):
                continue
            scopes: list = []

            def visit(node: ast.AST) -> None:
                is_scope = isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                )
                if is_scope:
                    scopes.append(node)
                if isinstance(node, ast.Call):
                    arg = self._site_arg(node)
                    if arg is not None:
                        scope = scopes[-1] if scopes else None
                        self._check_site_value(ctx, module, node, arg, scope)
                for child in ast.iter_child_nodes(node):
                    visit(child)
                if is_scope:
                    scopes.pop()

            visit(module.tree)

        self._check_test_coverage(ctx)

    def _check_test_coverage(self, ctx: LintContext) -> None:
        if not ctx.fault_test_modules:
            return  # no tests/faults tree in view (fixture runs)
        covered: Set[str] = set()
        for module in ctx.fault_test_modules:
            if module.tree is None:
                continue
            for node in ast.walk(module.tree):
                value = const_str(node)
                if value is not None:
                    covered.add(value)
        registry_modules = ctx.modules_matching(self.registry_path)
        anchor = registry_modules[0] if registry_modules else None
        for site in sorted(self.statement_sites - covered):
            ctx.report(
                self.id, anchor, 1,
                f"registered fault site {site!r} is not exercised by any "
                "test under tests/faults/",
            )
