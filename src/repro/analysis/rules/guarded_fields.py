"""GRD01 — guarded-field lockset analysis (RacerD-style heuristic).

A field is *guarded* when the class itself treats it as lock-protected:
it is a shared mutable container created in ``__init__`` (dict, list,
set, ``itertools.count`` …) and at least one of its **mutations** runs
under an exclusive lock.  Once a field is guarded, every other mutation
must hold an exclusive lock too — lexically, or by running in a helper
method that is only ever called from locked contexts (a greatest
fixpoint over the class's internal call graph, the same solver TXN01
uses for transaction-only helpers).

Two deliberate exclusions keep the signal clean:

* ``__init__`` mutations are exempt — the object is not shared yet;
* unlocked **reads** are exempt: CPython's GIL makes single dict/list
  reads atomic, and the repo's read paths lean on that (e.g. the
  sharding facade reads the routing map without the write mutex —
  readers racing one routing update see either the old or new map,
  both valid).  What must never race is two read-modify-write
  mutations, and that is exactly what this rule pins.

Read-side RWLock acquisitions do **not** guard a mutation — two
readers hold them concurrently.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from ..callgraph import CallGraph
from ..facts import greatest_fixpoint
from ..linter import LintContext, Rule, call_name
from ..program import ClassInfo, FunctionInfo
from .lock_discipline import shared_callgraph

__all__ = ["GuardedFieldRule"]

#: Constructor calls whose results are shared mutable containers.
_MUTABLE_CTORS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter",
    "deque", "count",
})

#: Method calls that mutate their receiver container.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "update", "pop", "popleft", "popitem",
    "clear", "remove", "discard", "extend", "insert", "setdefault",
})


def _self_attr(node: ast.AST) -> str:
    """``"attr"`` when ``node`` is ``self.attr`` / ``cls.attr``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("self", "cls")
    ):
        return node.attr
    return ""


def _tracked_attrs(init: FunctionInfo) -> Set[str]:
    """Mutable-container attributes assigned in ``__init__``."""
    attrs: Set[str] = set()
    for node in ast.walk(init.node):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        mutable = isinstance(
            value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                    ast.ListComp, ast.SetComp)
        ) or (
            isinstance(value, ast.Call) and call_name(value) in _MUTABLE_CTORS
        )
        if not mutable:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr:
                attrs.add(attr)
    return attrs


def _mutations(fn: FunctionInfo, attrs: Set[str]) -> List[Tuple[str, ast.AST]]:
    """``(attr, node)`` for every mutation of a tracked attribute
    inside ``fn`` (excluding nested defs — separate FunctionInfos)."""
    out: List[Tuple[str, ast.AST]] = []
    nested = {
        node for node in ast.walk(fn.node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node is not fn.node
    }

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if child in nested:
                continue
            if isinstance(child, (ast.Assign, ast.AugAssign)):
                targets = (
                    child.targets if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        attr = _self_attr(target.value)
                        if attr in attrs:
                            out.append((attr, child))
            elif isinstance(child, ast.Delete):
                for target in child.targets:
                    if isinstance(target, ast.Subscript):
                        attr = _self_attr(target.value)
                        if attr in attrs:
                            out.append((attr, child))
            elif isinstance(child, ast.Call):
                name = call_name(child)
                if name in _MUTATOR_METHODS and isinstance(
                    child.func, ast.Attribute
                ):
                    attr = _self_attr(child.func.value)
                    if attr in attrs:
                        out.append((attr, child))
                elif (
                    name == "next"
                    and child.args
                    and _self_attr(child.args[0]) in attrs
                ):
                    # next(self._object_ids) advances the shared counter.
                    out.append((_self_attr(child.args[0]), child))
            visit(child)

    visit(fn.node)
    return out


class GuardedFieldRule(Rule):
    """See module docstring."""

    id = "GRD01"
    title = "guarded fields must be mutated under their lock"

    def _locked_nodes(
        self, graph: CallGraph, fn: FunctionInfo
    ) -> Tuple[Set[ast.AST], Set[str]]:
        """Nodes of ``fn`` under an exclusive acquisition, and the
        tokens of those acquisitions."""
        members: Set[ast.AST] = set()
        tokens: Set[str] = set()
        for acq in graph.acquisitions(fn):
            if not acq.write:
                continue
            tokens.add(acq.token)
            for stmt in acq.body:
                members.add(stmt)
                members.update(ast.walk(stmt))
        return members, tokens

    def _check_class(
        self, ctx: LintContext, graph: CallGraph, cls: ClassInfo
    ) -> None:
        init = cls.methods.get("__init__")
        if init is None:
            return
        attrs = _tracked_attrs(init)
        if not attrs:
            return
        methods = {
            name: fn for name, fn in cls.methods.items() if name != "__init__"
        }
        locked: Dict[str, Tuple[Set[ast.AST], Set[str]]] = {
            name: self._locked_nodes(graph, fn)
            for name, fn in methods.items()
        }

        # Greatest fixpoint: a method is locked-context when every
        # internal call site of it sits under an exclusive lock or in
        # another locked-context method.
        call_sites: Dict[str, List[Tuple[str, ast.Call]]] = {}
        for caller, fn in methods.items():
            for call in graph.program.iter_calls(fn):
                callee = call_name(call)
                if (
                    callee in methods
                    and callee != caller
                    and isinstance(call.func, ast.Attribute)
                    and _self_attr(call.func) == callee
                ):
                    call_sites.setdefault(callee, []).append((caller, call))

        def holds(name: str, others: Set[str]) -> bool:
            sites = call_sites.get(name)
            if not sites:
                return False
            return all(
                node in locked[caller][0] or caller in others
                for caller, node in sites
            )

        locked_methods = greatest_fixpoint(call_sites, holds)

        # Pass 1: which attrs have at least one locked mutation (that is
        # what makes them *guarded*), and under which tokens.
        guard_tokens: Dict[str, Set[str]] = {}
        all_mutations: List[Tuple[str, str, FunctionInfo, ast.AST, bool]] = []
        for name, fn in methods.items():
            members, tokens = locked[name]
            for attr, node in _mutations(fn, attrs):
                is_locked = node in members or name in locked_methods
                if is_locked and tokens:
                    guard_tokens.setdefault(attr, set()).update(tokens)
                elif is_locked and name in locked_methods:
                    guard_tokens.setdefault(attr, set())
                all_mutations.append((attr, name, fn, node, is_locked))

        # Pass 2: flag unlocked mutations of guarded attrs.
        for attr, name, fn, node, is_locked in all_mutations:
            if is_locked or attr not in guard_tokens:
                continue
            if not ctx.in_scope(fn.module.source):
                continue
            tokens = sorted(guard_tokens[attr]) or ["its lock"]
            ctx.report(
                self.id, fn.module.source, node.lineno,
                f"{cls.name}.{attr} is guarded by {', '.join(tokens)} "
                f"elsewhere but {name}() mutates it without holding an "
                f"exclusive lock",
            )

    def check(self, ctx: LintContext) -> None:
        graph = shared_callgraph(ctx)
        seen: Set[int] = set()
        for candidates in ctx.program.classes.values():
            for cls in candidates:
                if id(cls) in seen:
                    continue
                seen.add(id(cls))
                self._check_class(ctx, graph, cls)
