"""LCK01/LCK02 — interprocedural lock discipline.

Since PR 5 the catalog's consistency under threads rests on a
hand-maintained protocol: every store write runs under the write side
of the store's RWLock (via ``run_transaction``/``transaction``), every
read surface under the read side (``read_locked`` / the pooled
``_reader``), and the sharding facade serializes id allocation and
routing-map updates behind its own mutex.  Nothing enforced that
protocol — deleting one ``with self.read_locked():`` would pass every
functional test and fail only probabilistically under the concurrency
suites.  These two rules make it machine-checked:

* **LCK01** — every configured public read/write entry point on the
  storage backends and on :class:`ShardedCatalog` must *reach* the
  correct lock acquisition through the optimistic whole-program call
  graph.  Over-approximate resolution is the right polarity here: a
  call edge we cannot rule out may be the one that takes the lock, so
  LCK01 only fires when **no** path can possibly acquire it.
* **LCK02** — three lock-safety checks built on the *precise* call
  graph (under-approximate: every reported chain is real):

  - read→write **upgrades**: a write-side acquisition of the same lock
    reachable from inside a read-side block (the RWLock raises at
    runtime by design; the linter moves that to lint time);
  - lock acquisitions inside **scatter-gather worker threads**
    (functions handed to ``executor.submit`` must stay lock-free — a
    worker queueing on a facade lock held across the fan-out is a
    deadlock);
  - the global **lock-order graph** (edges from lexically nested
    ``with`` acquisitions plus precise interprocedural edges) must be
    acyclic — a static deadlock detector.

Context expressions of a ``with`` item evaluate *before* the lock is
taken, so ``with self._rwlock().write_locked():`` contributes no edge
from the RWLock to the init lock ``_rwlock`` takes internally.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..callgraph import CallGraph, LockAcquisition
from ..facts import find_cycle
from ..linter import LintContext, Rule, call_name
from ..program import FunctionInfo

__all__ = ["LockReachabilityRule", "LockOrderRule", "EntryPointSpec"]


def shared_callgraph(ctx: LintContext) -> CallGraph:
    """One CallGraph per lint run, shared by every rule that wants it."""
    graph = getattr(ctx, "_callgraph", None)
    if graph is None or graph.program is not ctx.program:
        graph = CallGraph(ctx.program)
        ctx._callgraph = graph
    return graph


class EntryPointSpec:
    """Lock obligations for one class family: which public methods are
    read/write entry points and which acquisition names discharge
    each obligation."""

    __slots__ = ("root", "read_entries", "write_entries",
                 "read_protections", "write_protections")

    def __init__(
        self,
        root: str,
        read_entries: FrozenSet[str],
        write_entries: FrozenSet[str],
        read_protections: FrozenSet[str],
        write_protections: FrozenSet[str],
    ) -> None:
        self.root = root
        self.read_entries = read_entries
        self.write_entries = write_entries
        self.read_protections = read_protections
        self.write_protections = write_protections


#: Write entries hold the RWLock write side via the transaction
#: protocol.  ``install_schema`` is deliberately absent: it runs on the
#: construction path before the store is shared, by contract.
_STORE_SPEC = EntryPointSpec(
    root="HybridStore",
    read_entries=frozenset({
        "is_initialized", "attach_schema", "load_definition_rows",
        "load_objects", "has_object", "object_count", "max_clob_seq",
        "instance_counts", "match_objects", "collect_statistics",
        "build_responses", "storage_report",
    }),
    write_entries=frozenset({
        "sync_definitions", "store_object", "append_rows",
        "delete_object", "remove_attribute_instance",
    }),
    # A write-side acquisition also excludes writers, so it satisfies a
    # read obligation (the :memory: fast path reads on the writer
    # connection inside an open transaction).
    read_protections=frozenset({
        "read_locked", "_reader", "write_locked", "transaction",
        "run_transaction",
    }),
    write_protections=frozenset({
        "run_transaction", "transaction", "write_locked",
    }),
)

#: The facade's writes end on a shard's transaction protocol; its
#: reads end on a shard store's read surface.
_SHARD_SPEC = EntryPointSpec(
    root="ShardedCatalog",
    read_entries=frozenset({
        "query", "explain", "fetch", "search", "collect_statistics",
        "storage_report", "shard_status",
    }),
    write_entries=frozenset({
        "ingest", "ingest_many", "delete", "add_attribute",
        "remove_attribute", "define_attribute", "define_element",
        "resync_definitions",
    }),
    read_protections=frozenset({
        "read_locked", "_reader", "write_locked", "transaction",
        "run_transaction",
    }),
    write_protections=frozenset({
        "run_transaction", "transaction", "write_locked",
    }),
)

#: The service facade's bookkeeping (users, experiments, ownership,
#: the published set, provenance links) is guarded by its own RWLock;
#: mutators hold the write side, multi-step reads the read side.  The
#: catalog delegations inside these entries take the store's lock on
#: their own — the spec pins the *service* lock reachability.
_SERVICE_SPEC = EntryPointSpec(
    root="MyLeadService",
    read_entries=frozenset({
        "users", "has_user", "experiment", "experiments_of",
        "is_visible", "query", "fetch", "search", "search_slice",
        "experiment_contents", "sources_of", "derived_products",
        "provenance_closure", "query_derived_from_matching",
    }),
    write_entries=frozenset({
        "create_user", "create_experiment", "add_file",
        "publish", "unpublish", "record_derivation",
    }),
    read_protections=frozenset({
        "read_locked", "_reader", "write_locked", "transaction",
        "run_transaction",
    }),
    write_protections=frozenset({
        "run_transaction", "transaction", "write_locked",
    }),
)

DEFAULT_SPECS: Tuple[EntryPointSpec, ...] = (
    _STORE_SPEC, _SHARD_SPEC, _SERVICE_SPEC,
)


class LockReachabilityRule(Rule):
    """LCK01 — see module docstring."""

    id = "LCK01"
    title = "public entry points must reach their lock acquisitions"

    def __init__(self, specs: Tuple[EntryPointSpec, ...] = DEFAULT_SPECS) -> None:
        self.specs = specs

    def check(self, ctx: LintContext) -> None:
        graph = shared_callgraph(ctx)
        program = ctx.program
        for spec in self.specs:
            for cls in program.subclasses_of(spec.root):
                for mode, entries, protections in (
                    ("read", spec.read_entries, spec.read_protections),
                    ("write", spec.write_entries, spec.write_protections),
                ):
                    for name in sorted(entries):
                        fn = cls.methods.get(name)
                        if fn is None or fn.is_abstract():
                            continue
                        if not ctx.in_scope(fn.module.source):
                            continue
                        reached = graph.reachable_call_names(fn)
                        if reached & protections:
                            continue
                        want = "/".join(sorted(protections))
                        ctx.report(
                            self.id, fn.module.source, fn.node.lineno,
                            f"{cls.name}.{name} is a {mode} entry point but "
                            f"no call path from it reaches a lock "
                            f"acquisition ({want})",
                        )


class LockOrderRule(Rule):
    """LCK02 — see module docstring."""

    id = "LCK02"
    title = "no lock upgrades, locked workers, or lock-order cycles"

    def _body_members(
        self, graph: CallGraph, acq: LockAcquisition
    ) -> Set[ast.AST]:
        """Nodes executed while ``acq`` is held: the with-body subtree,
        minus nested function definitions (they run in their own
        frame, possibly on another thread)."""
        members: Set[ast.AST] = set()
        program = graph.program

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if (
                    isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and program.by_node.get(child) is not None
                ):
                    continue
                members.add(child)
                visit(child)

        for stmt in acq.body:
            members.add(stmt)
            visit(stmt)
        return members

    def _calls_in(self, graph: CallGraph, fn: FunctionInfo,
                  members: Set[ast.AST]) -> List[ast.Call]:
        return [
            call for call in graph.program.iter_calls(fn) if call in members
        ]

    # -- (a) read→write upgrades ---------------------------------------
    def _check_upgrades(self, ctx: LintContext, graph: CallGraph,
                        fn: FunctionInfo) -> None:
        acquisitions = graph.acquisitions(fn)
        for acq in acquisitions:
            if acq.write:
                continue
            members = self._body_members(graph, acq)
            for other in acquisitions:
                if other.write and other.token == acq.token and (
                    other.node in members
                ):
                    ctx.report(
                        self.id, fn.module.source, other.node.lineno,
                        f"read→write upgrade on {acq.token}: write-side "
                        f"acquisition inside a read-locked block "
                        f"(deadlocks a write-preferring RWLock)",
                    )
            for call in self._calls_in(graph, fn, members):
                for target in graph.program.resolve_call(fn, call):
                    if (acq.token, True) in graph.may_acquire(target):
                        ctx.report(
                            self.id, fn.module.source, call.lineno,
                            f"read→write upgrade on {acq.token}: "
                            f"{call_name(call)}() acquires the write side "
                            f"while the read side is held here",
                        )

    # -- (b) locks inside scatter-gather workers ------------------------
    def _worker_target(
        self, graph: CallGraph, fn: FunctionInfo, arg: ast.AST
    ) -> Optional[FunctionInfo]:
        program = graph.program
        if isinstance(arg, ast.Name):
            for node in ast.walk(fn.node):
                info = program.by_node.get(node)
                if info is not None and info.name == arg.id and (
                    info.parent is fn
                ):
                    return info
        if isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name):
            if arg.value.id in ("self", "cls"):
                cls = program.enclosing_class(fn)
                if cls is not None:
                    return program.resolve_method(cls, arg.attr)
        return None

    def _check_workers(self, ctx: LintContext, graph: CallGraph,
                       fn: FunctionInfo) -> None:
        for call in graph.program.iter_calls(fn):
            if call_name(call) != "submit" or not call.args:
                continue
            target = self._worker_target(graph, fn, call.args[0])
            if target is None:
                continue
            tokens = sorted({tok for tok, _w in graph.may_acquire(target)})
            if tokens:
                ctx.report(
                    self.id, fn.module.source, call.lineno,
                    f"worker {target.name}() submitted to an executor may "
                    f"acquire {', '.join(tokens)}; scatter-gather workers "
                    f"must stay lock-free (deadlock with the dispatching "
                    f"thread's locks)",
                )

    # -- (c) lock-order graph ------------------------------------------
    def _collect_edges(
        self, ctx: LintContext, graph: CallGraph
    ) -> Tuple[Dict[str, Set[str]], Dict[Tuple[str, str], Tuple]]:
        edges: Dict[str, Set[str]] = {}
        sites: Dict[Tuple[str, str], Tuple] = {}

        def add_edge(a: str, b: str, module, line: int, why: str) -> None:
            if a == b:
                return
            edges.setdefault(a, set()).add(b)
            sites.setdefault((a, b), (module, line, why))

        for fn in graph.program.functions.values():
            acquisitions = graph.acquisitions(fn)
            if not acquisitions:
                continue
            for acq in acquisitions:
                members = self._body_members(graph, acq)
                for other in acquisitions:
                    if other is acq:
                        continue
                    if other.node in members:
                        add_edge(
                            acq.token, other.token,
                            fn.module.source, other.node.lineno,
                            f"nested with in {fn.name}",
                        )
                    elif other.node is acq.node:
                        # `with a, b:` acquires left-to-right.
                        if acquisitions.index(acq) < acquisitions.index(other):
                            add_edge(
                                acq.token, other.token,
                                fn.module.source, other.node.lineno,
                                f"multi-item with in {fn.name}",
                            )
                for call in self._calls_in(graph, fn, members):
                    for target in graph.program.resolve_call(fn, call):
                        for token, _w in graph.may_acquire(target):
                            add_edge(
                                acq.token, token,
                                fn.module.source, call.lineno,
                                f"{fn.name} calls {call_name(call)}",
                            )
        return edges, sites

    def check(self, ctx: LintContext) -> None:
        graph = shared_callgraph(ctx)
        for fn in graph.program.functions.values():
            if not ctx.in_scope(fn.module.source):
                continue
            self._check_upgrades(ctx, graph, fn)
            self._check_workers(ctx, graph, fn)
        edges, sites = self._collect_edges(ctx, graph)
        cycle = find_cycle(edges)
        if cycle:
            first = sites.get((cycle[0], cycle[1]))
            module, line = (first[0], first[1]) if first else (None, 1)
            order = " -> ".join(cycle)
            ctx.report(
                self.id, module, line,
                f"lock-order cycle {order}: these locks are acquired in "
                f"both nesting orders, which can deadlock; pick one global "
                f"order",
            )
