"""OBS01 — metric names are declared once and created once.

The observability layer (PR 1) identifies metrics by name across
process boundaries (the ``<db>.metrics.json`` sidecar, Prometheus
exposition, the bench sidecars), so names are API.  Two failure modes
crept in as the codebase grew: the same metric created at several call
sites with duplicated help strings (which can drift apart), and names
that break the ``*_total`` / ``*_seconds`` convention the exporters and
dashboards assume.  This rule checks, over all of ``src/`` outside the
:mod:`repro.obs` infrastructure (whose span histograms derive names
from span names):

* every literal metric name created via ``.counter()`` / ``.gauge()`` /
  ``.histogram()`` (or passed to the ``_txn_counter`` cache helper) is
  declared in :mod:`repro.obs.names`, with the matching kind;
* counters end in ``_total``; histograms in ``_seconds`` or ``_rows``;
  gauges in neither;
* literal ``labels=(...)`` tuples match the declaration;
* each name has exactly one creation call site — shared metrics go
  through one helper, not copy-pasted registrations;
* a dynamic (non-literal) name is only allowed in a function that
  resolves its declaration via :func:`repro.obs.names.spec`.

PR 6 extends the same discipline to the other two name-keyed
observability surfaces:

* every literal event name passed to an ``.emit(...)`` attribute call
  is declared in :data:`repro.obs.names.EVENTS`, and every literal
  keyword on the call is one of that event's declared fields (events
  may be emitted from many sites — unlike metrics there is no
  single-site requirement, since emission is not registration);
* a dynamic event name is only allowed in a function that resolves the
  declaration via :func:`repro.obs.names.event_spec`;
* every literal series name passed to ``series_spec(...)`` is declared
  in :data:`repro.obs.names.SERIES`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from ..linter import LintContext, Rule, SourceModule, call_name, const_str

_CREATORS = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}

#: Required / forbidden suffixes per kind.
_COUNTER_SUFFIX = "_total"
_HISTOGRAM_SUFFIXES = ("_seconds", "_rows")


def _suffix_problem(name: str, kind: str) -> Optional[str]:
    if kind == "counter" and not name.endswith(_COUNTER_SUFFIX):
        return f"counter {name!r} must end in {_COUNTER_SUFFIX!r}"
    if kind == "histogram" and not name.endswith(_HISTOGRAM_SUFFIXES):
        return (
            f"histogram {name!r} must end in one of {_HISTOGRAM_SUFFIXES!r}"
        )
    if kind == "gauge" and name.endswith((_COUNTER_SUFFIX, *_HISTOGRAM_SUFFIXES)):
        return f"gauge {name!r} must not use a counter/histogram suffix"
    return None


class MetricNameRule(Rule):
    """See module docstring."""

    id = "OBS01"
    title = "metric, event, and series names are declared centrally"

    def __init__(
        self,
        registry: Optional[Dict[str, object]] = None,
        exempt_dirs: Tuple[str, ...] = ("obs/",),
        events_registry: Optional[Dict[str, object]] = None,
        series_registry: Optional[Dict[str, object]] = None,
    ) -> None:
        if registry is None:
            from ...obs.names import METRICS

            registry = dict(METRICS)
        if events_registry is None:
            from ...obs.names import EVENTS

            events_registry = dict(EVENTS)
        if series_registry is None:
            from ...obs.names import SERIES

            series_registry = dict(SERIES)
        self.registry = registry
        self.events_registry = events_registry
        self.series_registry = series_registry
        self.exempt_dirs = exempt_dirs

    def _exempt(self, module: SourceModule) -> bool:
        posix = module.path.as_posix()
        return any(f"/{d}" in posix or posix.startswith(d) for d in self.exempt_dirs)

    # ------------------------------------------------------------------
    def _literal_labels(self, node: ast.Call) -> Optional[Tuple[str, ...]]:
        for kw in node.keywords:
            if kw.arg != "labels":
                continue
            if isinstance(kw.value, (ast.Tuple, ast.List)):
                labels: List[str] = []
                for element in kw.value.elts:
                    value = const_str(element)
                    if value is None:
                        return None
                    labels.append(value)
                return tuple(labels)
            return None
        return ()

    def _uses_helper(self, scope: Optional[ast.AST], helper: str) -> bool:
        if scope is None:
            return False
        return any(
            isinstance(node, ast.Call) and call_name(node) == helper
            for node in ast.walk(scope)
        )

    def check(self, ctx: LintContext) -> None:
        creations: Dict[str, List[Tuple[SourceModule, int]]] = {}
        for module in ctx.modules:
            if module.tree is None or self._exempt(module):
                continue
            self._scan_module(ctx, module, creations)
        for name, sites in sorted(creations.items()):
            if len(sites) <= 1:
                continue
            first = sites[0]
            for module, line in sites[1:]:
                ctx.report(
                    self.id, module, line,
                    f"metric {name!r} is created at {len(sites)} call sites "
                    f"(first at {first[0].display}:{first[1]}); share one "
                    "creation helper",
                )

    def _scan_module(
        self,
        ctx: LintContext,
        module: SourceModule,
        creations: Dict[str, List[Tuple[SourceModule, int]]],
    ) -> None:
        assert module.tree is not None
        scopes: List[ast.AST] = []

        def visit(node: ast.AST) -> None:
            is_scope = isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            )
            if is_scope:
                scopes.append(node)
            if isinstance(node, ast.Call):
                self._check_call(
                    ctx, module, node, scopes[-1] if scopes else None, creations
                )
            for child in ast.iter_child_nodes(node):
                visit(child)
            if is_scope:
                scopes.pop()

        visit(module.tree)

    def _check_call(
        self,
        ctx: LintContext,
        module: SourceModule,
        node: ast.Call,
        scope: Optional[ast.AST],
        creations: Dict[str, List[Tuple[SourceModule, int]]],
    ) -> None:
        name_of_call = call_name(node)
        if isinstance(node.func, ast.Attribute) and name_of_call == "emit":
            self._check_emit(ctx, module, node, scope)
            return
        if name_of_call == "series_spec":
            self._check_series_ref(ctx, module, node)
            return
        kind: Optional[str] = None
        if isinstance(node.func, ast.Attribute) and name_of_call in _CREATORS:
            kind = _CREATORS[name_of_call]
        elif name_of_call == "_txn_counter":
            kind = "counter"
        if kind is None or not node.args:
            return
        metric_name = const_str(node.args[0])
        if metric_name is None:
            # time.perf_counter() and friends take no string argument and
            # never reach here; a genuinely dynamic name must resolve its
            # declaration through repro.obs.names.spec in the same scope.
            if isinstance(node.args[0], ast.Constant):
                return  # non-string constant: not a metric creation
            if not self._uses_helper(scope, "spec"):
                ctx.report(
                    self.id, module, node.lineno,
                    f"dynamic metric name passed to {name_of_call}(); resolve "
                    "the declaration via repro.obs.names.spec() or use a "
                    "literal",
                )
            return
        creations.setdefault(metric_name, []).append((module, node.lineno))
        declared = self.registry.get(metric_name)
        if declared is None:
            ctx.report(
                self.id, module, node.lineno,
                f"metric {metric_name!r} is not declared in repro.obs.names",
            )
        else:
            declared_kind = getattr(declared, "kind", None)
            if declared_kind is not None and declared_kind != kind:
                ctx.report(
                    self.id, module, node.lineno,
                    f"metric {metric_name!r} is declared as a "
                    f"{declared_kind}, created as a {kind}",
                )
            declared_labels = getattr(declared, "labels", None)
            actual_labels = self._literal_labels(node)
            if (
                declared_labels is not None
                and actual_labels is not None
                and name_of_call != "_txn_counter"
                and tuple(actual_labels) != tuple(declared_labels)
            ):
                ctx.report(
                    self.id, module, node.lineno,
                    f"metric {metric_name!r} created with labels "
                    f"{tuple(actual_labels)!r} but declared with "
                    f"{tuple(declared_labels)!r}",
                )
        problem = _suffix_problem(metric_name, kind)
        if problem is not None:
            ctx.report(self.id, module, node.lineno, problem)

    # ------------------------------------------------------------------
    # Events and series (the PR 6 extension)
    # ------------------------------------------------------------------
    def _check_emit(
        self,
        ctx: LintContext,
        module: SourceModule,
        node: ast.Call,
        scope: Optional[ast.AST],
    ) -> None:
        """An ``<obj>.emit("event", field=...)`` call: the event name
        must be declared (or resolved via ``event_spec`` when dynamic)
        and every literal keyword must be a declared field."""
        if not node.args:
            return
        event_name = const_str(node.args[0])
        if event_name is None:
            if isinstance(node.args[0], ast.Constant):
                return  # non-string constant: not an event emission
            if not self._uses_helper(scope, "event_spec"):
                ctx.report(
                    self.id, module, node.lineno,
                    "dynamic event name passed to emit(); resolve the "
                    "declaration via repro.obs.names.event_spec() or use "
                    "a literal",
                )
            return
        declared = self.events_registry.get(event_name)
        if declared is None:
            ctx.report(
                self.id, module, node.lineno,
                f"event {event_name!r} is not declared in repro.obs.names",
            )
            return
        declared_fields = set(getattr(declared, "fields", ()) or ())
        for kw in node.keywords:
            if kw.arg is None:  # **fields: checked at runtime by EventLog
                continue
            if kw.arg not in declared_fields:
                ctx.report(
                    self.id, module, node.lineno,
                    f"event {event_name!r} emitted with undeclared field "
                    f"{kw.arg!r}; declared: {sorted(declared_fields)}",
                )

    def _check_series_ref(
        self,
        ctx: LintContext,
        module: SourceModule,
        node: ast.Call,
    ) -> None:
        """A literal name passed to ``series_spec(...)`` must be
        declared; dynamic names are the resolver's own job."""
        if not node.args:
            return
        series_name = const_str(node.args[0])
        if series_name is None:
            return
        if series_name not in self.series_registry:
            ctx.report(
                self.id, module, node.lineno,
                f"series {series_name!r} is not declared in repro.obs.names",
            )
