"""PAR01 — the two storage backends expose one interface.

The whole point of the hybrid design is that the memory engine and the
sqlite backend are interchangeable behind :class:`HybridStore`; the
test suite runs most scenarios against both.  Interface drift defeats
that quietly: a public method added to one backend (``close()`` was the
real example) works in every direct test and then explodes with
``AttributeError`` the first time generic code calls it on the other
backend.  This rule checks, purely lexically:

* every ``@abstractmethod`` on ``HybridStore`` is overridden by *both*
  concrete backends;
* every public method (no leading underscore, not a dunder) defined on
  a concrete backend also exists on ``HybridStore`` — as an abstract
  method or a concrete base implementation.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Tuple

from ..linter import LintContext, Rule, SourceModule

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_abstract(node: ast.AST) -> bool:
    for dec in getattr(node, "decorator_list", ()):
        name: Optional[str] = None
        if isinstance(dec, ast.Name):
            name = dec.id
        elif isinstance(dec, ast.Attribute):
            name = dec.attr
        if name == "abstractmethod":
            return True
    return False


def _methods(cls: ast.ClassDef) -> Dict[str, ast.AST]:
    return {
        node.name: node for node in cls.body if isinstance(node, _FuncDef)
    }


def _find_class(
    ctx: LintContext, path_suffix: str, class_name: str
) -> Tuple[Optional[SourceModule], Optional[ast.ClassDef]]:
    for module in ctx.modules_matching(path_suffix):
        if module.tree is None:
            continue
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                return module, node
    return None, None


class BackendParityRule(Rule):
    """See module docstring."""

    id = "PAR01"
    title = "storage backends share the HybridStore interface"

    def __init__(
        self,
        base: Tuple[str, str] = ("core/storage.py", "HybridStore"),
        impls: Tuple[Tuple[str, str], ...] = (
            ("core/storage.py", "MemoryHybridStore"),
            ("backends/sqlite.py", "SqliteHybridStore"),
        ),
    ) -> None:
        self.base = base
        self.impls = impls

    def check(self, ctx: LintContext) -> None:
        base_module, base_cls = _find_class(ctx, *self.base)
        if base_cls is None or base_module is None:
            return  # base not in view (partial fixture tree): nothing to pin
        base_methods = _methods(base_cls)
        abstract = {
            name for name, node in base_methods.items() if _is_abstract(node)
        }

        for impl_path, impl_name in self.impls:
            impl_module, impl_cls = _find_class(ctx, impl_path, impl_name)
            if impl_cls is None or impl_module is None:
                ctx.report(
                    self.id, base_module, base_cls.lineno,
                    f"backend class {impl_name} not found in {impl_path}",
                )
                continue
            impl_methods = _methods(impl_cls)
            for name in sorted(abstract - set(impl_methods)):
                ctx.report(
                    self.id, impl_module, impl_cls.lineno,
                    f"{impl_name} does not override abstract "
                    f"HybridStore.{name}",
                )
            for name, node in sorted(impl_methods.items()):
                if name.startswith("_"):
                    continue  # private / dunder: backend-internal by design
                if name not in base_methods:
                    ctx.report(
                        self.id, impl_module, node.lineno,
                        f"{impl_name}.{name} is public but absent from "
                        "HybridStore; add it to the base interface so both "
                        "backends stay interchangeable",
                    )
