"""PLN01 — cached plan stages must not carry comparison literals.

The logical-plan IR (PR 3) caches plans by *shape* and rebinds the
comparison literals per query.  That only works if stage objects hold
no literal values at all: a stage field carrying the comparison text or
number would be frozen into the cached plan and silently reused for
every later query with the same shape — the cache-poisoning bug the
PR 3 design explicitly forbids.  This rule makes the invariant
structural: in ``core/logical.py``, any class that declares a
class-level ``kind = "..."`` marker (the stage convention) must not

* declare a slot or ``__init__`` parameter whose name says it stores a
  literal (``value``, ``values``, ``literal``, ``text``, ...), nor
* assign a non-``None`` constant to an instance attribute in
  ``__init__`` (a baked-in default literal is still a literal).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from ..linter import LintContext, Rule, SourceModule, const_str

#: Field names that denote a carried comparison literal.
_LITERAL_NAMES = frozenset(
    {"value", "values", "literal", "literals", "text", "value_text", "value_num"}
)


def _is_literal_name(name: str) -> bool:
    return name in _LITERAL_NAMES or name.startswith("value_")


def _class_kind(cls: ast.ClassDef) -> Optional[str]:
    """The class-level ``kind = "..."`` marker, when present."""
    for node in cls.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == "kind":
                return const_str(node.value)
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            if isinstance(target, ast.Name) and target.id == "kind":
                return const_str(node.value)
    return None


class PlanPurityRule(Rule):
    """See module docstring."""

    id = "PLN01"
    title = "plan stages carry no comparison literals"

    def __init__(self, targets: Tuple[str, ...] = ("core/logical.py",)) -> None:
        self.targets = targets

    # ------------------------------------------------------------------
    def _slot_names(self, cls: ast.ClassDef) -> List[Tuple[str, int]]:
        for node in cls.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Name) and target.id == "__slots__"):
                continue
            if isinstance(node.value, (ast.Tuple, ast.List)):
                names: List[Tuple[str, int]] = []
                for element in node.value.elts:
                    value = const_str(element)
                    if value is not None:
                        names.append((value, element.lineno))
                return names
        return []

    def _check_stage(
        self, ctx: LintContext, module: SourceModule, cls: ast.ClassDef, kind: str
    ) -> None:
        for slot, lineno in self._slot_names(cls):
            if _is_literal_name(slot):
                ctx.report(
                    self.id, module, lineno,
                    f"plan stage {cls.name} (kind={kind!r}) declares slot "
                    f"{slot!r}; comparison literals must stay out of cached "
                    "stages — bind them at execution time",
                )
        init = next(
            (
                node for node in cls.body
                if isinstance(node, ast.FunctionDef) and node.name == "__init__"
            ),
            None,
        )
        if init is None:
            return
        for arg in list(init.args.args)[1:] + list(init.args.kwonlyargs):
            if _is_literal_name(arg.arg):
                ctx.report(
                    self.id, module, arg.lineno,
                    f"plan stage {cls.name}.__init__ takes literal-bearing "
                    f"parameter {arg.arg!r}",
                )
        for node in ast.walk(init):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if (
                    isinstance(node.value, ast.Constant)
                    and node.value.value is not None
                    and not isinstance(node.value.value, bool)
                ):
                    ctx.report(
                        self.id, module, node.lineno,
                        f"plan stage {cls.name}.__init__ bakes constant "
                        f"{node.value.value!r} into field {target.attr!r}; "
                        "cached stages must be literal-free",
                    )

    def check(self, ctx: LintContext) -> None:
        for module in ctx.modules_matching(*self.targets):
            if module.tree is None:
                continue
            for node in module.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                kind = _class_kind(node)
                if kind is not None:
                    self._check_stage(ctx, module, node, kind)
