"""RES01 — resource lifecycle: acquisitions are released on every path.

PR 5's BulkLoader leak — a pooled connection checked out and dropped on
an exception path — is the template.  The rule tracks calls that mint
an owned resource (a sqlite connection, a pool checkout, a file
handle) and requires each acquisition to be *discharged* in its
function by one of the ownership idioms the codebase actually uses:

* the call is a ``with`` context expression (release is structural);
* the result is **returned** — ownership transfers to the caller
  (``yield`` is deliberately NOT a transfer: a generator context
  manager still owns the resource and must pair it with
  ``try/finally``, which is exactly the bug class this rule exists
  to catch);
* the result is stored on ``self`` or passed into another call —
  ownership transfers to the object/callee (``self._file = ...``,
  ``_TrackedConnection(sqlite3.connect(...))``);
* a ``finally`` block in the same function calls a matching releaser
  on the bound name (``finally: self._release(conn)``).

An acquisition whose result is discarded outright, or bound to a local
that none of the idioms cover, is a finding.  Analysis is per-function
and syntactic — no path-sensitivity — which is exactly why it is fast
and why its verdicts are easy to audit.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Set, Tuple

from ..linter import LintContext, Rule, SourceModule, call_name
from ..program import FunctionInfo

__all__ = ["ResourceLifecycleRule"]

#: acquirer call name -> names that release what it returned.
_ACQUIRERS: Dict[str, FrozenSet[str]] = {
    "connect": frozenset({"close"}),
    "_connect": frozenset({"close", "_release"}),
    "_acquire": frozenset({"_release", "release", "close"}),
    "open": frozenset({"close"}),
}


def _names_in(node: ast.AST) -> Set[str]:
    return {
        n.id for n in ast.walk(node) if isinstance(n, ast.Name)
    }


class ResourceLifecycleRule(Rule):
    """See module docstring."""

    id = "RES01"
    title = "acquired resources must be released on every path"

    def _with_context_calls(self, fn: FunctionInfo) -> Set[ast.AST]:
        """Call nodes used directly as ``with`` context expressions."""
        out: Set[ast.AST] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        out.add(item.context_expr)
        return out

    def _finally_released_names(self, fn: FunctionInfo) -> Set[str]:
        """Locals a ``finally`` block releases: the var appears as a
        releaser's receiver (``conn.close()``) or argument
        (``self._release(conn)``)."""
        released: Set[str] = set()
        all_releasers: FrozenSet[str] = frozenset().union(*_ACQUIRERS.values())
        for node in ast.walk(fn.node):
            if not isinstance(node, (ast.Try,)):
                continue
            for stmt in node.finalbody:
                for call in ast.walk(stmt):
                    if not isinstance(call, ast.Call):
                        continue
                    if call_name(call) not in all_releasers:
                        continue
                    func = call.func
                    if isinstance(func, ast.Attribute) and isinstance(
                        func.value, ast.Name
                    ):
                        released.add(func.value.id)
                    for arg in call.args:
                        if isinstance(arg, ast.Name):
                            released.add(arg.id)
        return released

    def _returned_names(self, fn: FunctionInfo) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                out |= _names_in(node.value)
        return out

    def _escaping_names(self, fn: FunctionInfo) -> Set[str]:
        """Locals whose value escapes the function's ownership: stored
        on ``self``/a container, or passed to another call."""
        out: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        out |= _names_in(node.value)
            elif isinstance(node, ast.Call):
                releasers: FrozenSet[str] = frozenset().union(
                    *_ACQUIRERS.values()
                )
                if call_name(node) in releasers:
                    continue  # releasing is not an ownership escape
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        out.add(arg.id)
        return out

    def _check_function(
        self, ctx: LintContext, module: SourceModule, fn: FunctionInfo
    ) -> None:
        with_calls = self._with_context_calls(fn)
        released = self._finally_released_names(fn)
        returned = self._returned_names(fn)
        escaped = self._escaping_names(fn)

        # Statement-level classification of each acquirer call.  Nested
        # defs are separate FunctionInfos with their own pass — walking
        # into them here would double-report their acquisitions.
        nested = {
            node for node in ast.walk(fn.node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not fn.node
        }
        own_nodes: List[ast.AST] = []
        stack: List[ast.AST] = [fn.node]
        while stack:
            current = stack.pop()
            for child in ast.iter_child_nodes(current):
                if child in nested:
                    continue
                own_nodes.append(child)
                stack.append(child)

        handled: Set[ast.AST] = set(with_calls)
        findings: List[Tuple[ast.Call, str]] = []
        for node in own_nodes:
            if isinstance(node, ast.Return) and isinstance(
                node.value, ast.Call
            ):
                handled.add(node.value)  # direct transfer to caller
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                acquirer = call_name(node.value)
                if acquirer not in _ACQUIRERS:
                    continue
                handled.add(node.value)
                target = node.targets[0]
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue  # stored on self/container: escapes
                if not isinstance(target, ast.Name):
                    continue  # tuple unpack: out of syntactic reach
                var = target.id
                if var in returned or var in escaped or var in released:
                    continue
                findings.append((
                    node.value,
                    f"{acquirer}() result bound to '{var}' is never "
                    f"released: no return, no self-attribute, and no "
                    f"finally block calling "
                    f"{'/'.join(sorted(_ACQUIRERS[acquirer]))} on it",
                ))
            elif isinstance(node, ast.Expr) and isinstance(
                node.value, ast.Call
            ):
                acquirer = call_name(node.value)
                if acquirer in _ACQUIRERS and node.value not in with_calls:
                    handled.add(node.value)
                    findings.append((
                        node.value,
                        f"{acquirer}() result is discarded — the acquired "
                        f"resource can never be released",
                    ))
        for call, message in findings:
            ctx.report(self.id, module, call.lineno, message)

    def check(self, ctx: LintContext) -> None:
        program = ctx.program
        for fn in program.functions.values():
            module = fn.module.source
            if module.tree is None or not ctx.in_scope(module):
                continue
            # Fast pre-filter on the memoized call list: most functions
            # acquire nothing, so skip the classification walks outright.
            if not any(
                call_name(call) in _ACQUIRERS
                for call in program.iter_calls(fn)
            ):
                continue
            self._check_function(ctx, module, fn)
