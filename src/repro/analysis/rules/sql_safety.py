"""SQL01 — SQL construction safety.

No string interpolation into SQL text, anywhere, except identifiers
routed through the single audited
:func:`~repro.identifiers.quote_identifier` helper; literals go
through ``?`` parameters.  The rule scans every way this codebase
builds strings — f-strings, ``%`` formatting, ``str.format``, ``+``
concatenation — and treats a string as SQL when its constant head
starts with an uppercase SQL verb (``SELECT``/``INSERT``/``CREATE``
…).  Matching on the *string*, not just on ``execute()`` arguments,
catches SQL assembled in helpers and stored in locals before it
reaches a cursor (the ``_compile_seek`` pattern).

Sanctioned interpolations:

* a direct ``quote_identifier(...)`` call in the hole;
* a plain name whose **every** binding visible at the hole (own scope
  first, then lexically enclosing scopes) is a
  ``quote_identifier(...)`` call — the ``qm = quote_identifier(...)``
  … ``f"INSERT INTO {qm}"`` idiom, including closures over it.
  Function parameters are never sanctioned: the caller's string is
  not visible here, so the callee must re-validate.

The uppercase-verb head keeps fault-site strings like
``f"insert:{table}"`` and log messages out of scope by construction.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional

from ..linter import LintContext, Rule, SourceModule, call_name

__all__ = ["SqlSafetyRule"]

_SQL_HEAD_RE = re.compile(
    r"^\s*(SELECT|INSERT|UPDATE|DELETE|REPLACE|CREATE|DROP|WITH|PRAGMA|"
    r"ATTACH|VACUUM|BEGIN|ALTER)\b"
)

_EXECUTORS = frozenset({"execute", "executemany", "executescript"})


def _is_sql_head(text: Optional[str]) -> bool:
    return text is not None and _SQL_HEAD_RE.match(text) is not None


def _joined_head(node: ast.JoinedStr) -> Optional[str]:
    if node.values and isinstance(node.values[0], ast.Constant) and isinstance(
        node.values[0].value, str
    ):
        return node.values[0].value
    return None


def _is_quote_identifier_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and call_name(node) == "quote_identifier"


def _is_function(node: ast.AST) -> bool:
    return isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))


class SqlSafetyRule(Rule):
    """See module docstring."""

    id = "SQL01"
    title = "no interpolation into SQL except quote_identifier()"

    # -- sanctioned-name environments -----------------------------------
    def _own_bindings(self, scope: ast.AST) -> Dict[str, bool]:
        """name -> True when every binding of the name directly in
        ``scope`` (nested defs excluded — they are their own scopes) is
        a ``quote_identifier(...)`` call."""
        verdicts: Dict[str, bool] = {}

        def record(name: str, ok: bool) -> None:
            verdicts[name] = verdicts.get(name, True) and ok

        if _is_function(scope):
            args = scope.args
            for arg in list(args.args) + list(args.kwonlyargs) + (
                [args.vararg] if args.vararg else []
            ) + ([args.kwarg] if args.kwarg else []):
                record(arg.arg, False)

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if _is_function(child):
                    record(child.name, False)
                    continue
                if isinstance(child, ast.Assign):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            record(
                                target.id,
                                _is_quote_identifier_call(child.value),
                            )
                        elif isinstance(target, ast.Tuple):
                            value = child.value
                            if isinstance(value, ast.Tuple) and len(
                                value.elts
                            ) == len(target.elts):
                                for t, v in zip(target.elts, value.elts):
                                    if isinstance(t, ast.Name):
                                        record(
                                            t.id,
                                            _is_quote_identifier_call(v),
                                        )
                            else:
                                for t in target.elts:
                                    if isinstance(t, ast.Name):
                                        record(t.id, False)
                elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                    target = child.target
                    if isinstance(target, ast.Name):
                        record(target.id, False)
                elif isinstance(child, (ast.For, ast.comprehension)):
                    target = child.target
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            record(name_node.id, False)
                visit(child)

        visit(scope)
        return verdicts

    def _hole_is_sanctioned(
        self, expr: ast.AST, env: Dict[str, bool]
    ) -> bool:
        if _is_quote_identifier_call(expr):
            return True
        if isinstance(expr, ast.Name):
            return env.get(expr.id, False)
        return False

    # -- expression checks ----------------------------------------------
    @staticmethod
    def _const_head(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.JoinedStr):
            return _joined_head(node)
        return None

    def _flatten_concat(self, node: ast.AST) -> List[ast.AST]:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return self._flatten_concat(node.left) + self._flatten_concat(
                node.right
            )
        return [node]

    def _scan_expr(
        self,
        ctx: LintContext,
        module: SourceModule,
        node: ast.AST,
        env: Dict[str, bool],
    ) -> None:
        if isinstance(node, ast.JoinedStr) and _is_sql_head(_joined_head(node)):
            for value in node.values:
                if not isinstance(value, ast.FormattedValue):
                    continue
                if not self._hole_is_sanctioned(value.value, env):
                    ctx.report(
                        self.id, module, node.lineno,
                        "f-string interpolation into SQL: route identifiers "
                        "through quote_identifier() and bind values with "
                        "? parameters",
                    )
                    break
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
            if _is_sql_head(self._const_head(node.left)):
                ctx.report(
                    self.id, module, node.lineno,
                    "%-formatting into SQL: route identifiers through "
                    "quote_identifier() and bind values with ? parameters",
                )
        elif isinstance(node, ast.Call) and call_name(node) == "format":
            func = node.func
            if isinstance(func, ast.Attribute) and _is_sql_head(
                self._const_head(func.value)
            ):
                holes = list(node.args) + [kw.value for kw in node.keywords]
                if not all(
                    self._hole_is_sanctioned(hole, env) for hole in holes
                ):
                    ctx.report(
                        self.id, module, node.lineno,
                        ".format() interpolation into SQL: route "
                        "identifiers through quote_identifier() and bind "
                        "values with ? parameters",
                    )
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            operands = self._flatten_concat(node)
            if operands and _is_sql_head(self._const_head(operands[0])):
                for operand in operands[1:]:
                    if self._const_head(operand) is not None:
                        continue
                    if not self._hole_is_sanctioned(operand, env):
                        ctx.report(
                            self.id, module, node.lineno,
                            "string concatenation into SQL: route "
                            "identifiers through quote_identifier() and "
                            "bind values with ? parameters",
                        )
                        break
        elif isinstance(node, ast.Call) and call_name(node) in _EXECUTORS:
            if node.args:
                arg = node.args[0]
                if isinstance(arg, ast.JoinedStr) and _joined_head(arg) is None:
                    ctx.report(
                        self.id, module, node.lineno,
                        "SQL passed to execute() starts with a dynamic "
                        "fragment — statements must open with a literal "
                        "verb so they can be audited",
                    )

    # -- scope recursion -------------------------------------------------
    def _handle_scope(
        self,
        ctx: LintContext,
        module: SourceModule,
        scope: ast.AST,
        parent_env: Dict[str, bool],
    ) -> None:
        env = dict(parent_env)
        env.update(self._own_bindings(scope))
        children: List[ast.AST] = []

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if _is_function(child):
                    children.append(child)
                    continue
                self._scan_expr(ctx, module, child, env)
                visit(child)

        visit(scope)
        for child in children:
            self._handle_scope(ctx, module, child, env)

    def check(self, ctx: LintContext) -> None:
        for module in ctx.modules:
            if module.tree is None or not ctx.in_scope(module):
                continue
            self._handle_scope(ctx, module, module.tree, {})
