"""PLN02 — both executors declare the full logical-plan stage surface.

The memory interpreter (``core/planner.py``) and the sqlite compiler
(``backends/sqlite.py``) execute the *same* logical plan IR; a stage
kind added to ``core/logical.py`` but handled by only one backend would
silently desync them — the exact drift the parity suites exist to
catch, but at review time rather than test time.  This rule makes the
surface a checked declaration: each executor module carries a
module-level

    HANDLED_STAGE_KINDS = ("ElementSeek", ...)

tuple of string literals, and the rule asserts that **both**
declarations exist and that each is *equal as a set* to the ``kind``
markers on the stage classes in ``core/logical.py`` (the same markers
PLN01 keys on).  Adding a stage class therefore fails lint until both
executors acknowledge it; removing one fails until the declarations
shrink with it.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from ..linter import LintContext, Rule, SourceModule, const_str
from .plan_purity import _class_kind

#: The module-level declaration each executor must carry.
DECLARATION = "HANDLED_STAGE_KINDS"


def _declared_kinds(module: SourceModule) -> Optional[Tuple[List[str], int]]:
    """The executor's ``HANDLED_STAGE_KINDS`` literal, with its line."""
    if module.tree is None:
        return None
    for node in module.tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == DECLARATION):
            continue
        if not isinstance(node.value, (ast.Tuple, ast.List)):
            return ([], node.lineno)
        kinds: List[str] = []
        for element in node.value.elts:
            value = const_str(element)
            if value is not None:
                kinds.append(value)
        return (kinds, node.lineno)
    return None


class StageSurfaceRule(Rule):
    """See module docstring."""

    id = "PLN02"
    title = "stage surface mirrored across backends"

    def __init__(
        self,
        ir_target: str = "core/logical.py",
        executor_targets: Tuple[str, ...] = (
            "core/planner.py",
            "backends/sqlite.py",
        ),
    ) -> None:
        self.ir_target = ir_target
        self.executor_targets = executor_targets

    def _ir_kinds(self, ctx: LintContext) -> List[str]:
        kinds: List[str] = []
        for module in ctx.modules_matching(self.ir_target):
            if module.tree is None:
                continue
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    kind = _class_kind(node)
                    if kind is not None:
                        kinds.append(kind)
        return kinds

    def check(self, ctx: LintContext) -> None:
        ir_kinds = set(self._ir_kinds(ctx))
        if not ir_kinds:
            # No IR module in scope (e.g. fixture trees without one):
            # nothing to mirror.
            return
        for target in self.executor_targets:
            for module in ctx.modules_matching(target):
                declared = _declared_kinds(module)
                if declared is None:
                    ctx.report(
                        self.id, module, 1,
                        f"executor {module.display} does not declare "
                        f"{DECLARATION}; every plan executor must state the "
                        "stage kinds it handles",
                    )
                    continue
                kinds, lineno = declared
                missing = sorted(ir_kinds - set(kinds))
                extra = sorted(set(kinds) - ir_kinds)
                if missing:
                    ctx.report(
                        self.id, module, lineno,
                        f"{DECLARATION} is missing stage kind(s) "
                        f"{', '.join(repr(k) for k in missing)} declared in "
                        "core/logical.py — handle them (or update the IR)",
                    )
                if extra:
                    ctx.report(
                        self.id, module, lineno,
                        f"{DECLARATION} declares unknown stage kind(s) "
                        f"{', '.join(repr(k) for k in extra)} — no such "
                        "kind marker exists in core/logical.py",
                    )
