"""TXN01 — every catalog-table mutation runs inside a transaction.

PR 2 made crash safety depend on one convention: a write statement
(a row ``insert``/``delete_where`` on the memory engine, an
``INSERT``/``UPDATE``/``DELETE`` statement on sqlite) may only execute
from code reachable via ``run_transaction`` (or a
``with store.transaction():`` block), because that is where the
BEGIN IMMEDIATE/undo-journal bracketing, rollback, and retry live.  A
mutation on any other path silently bypasses the whole protocol — it
would still pass the functional tests, and only a crash would reveal
it.  This rule makes the convention lexical:

* a mutation is **safe** when it sits inside a nested function or
  lambda passed to ``run_transaction`` in the same method, inside a
  ``with self.transaction(...):`` block, or inside a method that is
  *only ever called* from such contexts (computed as a greatest
  fixpoint over the class's internal call graph);
* anything else is a finding.

Read-path scratch writes (the sqlite backend's ``CREATE TEMP TABLE``
query pipeline) are deliberate exceptions and carry
``# reprolint: ignore[TXN01]`` pragmas — the waiver is visible in the
report rather than baked into the rule.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..facts import greatest_fixpoint
from ..linter import (
    LintContext,
    Rule,
    SourceModule,
    call_name,
    enclosing_functions,
    local_str_values,
    str_prefix,
)

#: Memory-engine table mutators.
_ENGINE_MUTATORS = frozenset({"insert", "delete_where", "update_where"})

#: SQL verbs that mutate rows (DDL and SELECT are not crash points).
_SQL_MUTATION_VERBS = frozenset({"INSERT", "UPDATE", "DELETE", "REPLACE"})

#: sqlite execution entry points carrying SQL text as their first arg.
_SQL_EXECUTORS = frozenset({"execute", "executemany", "executescript"})


def _sql_verb(sql: str) -> Optional[str]:
    tokens = sql.split(None, 1)
    return tokens[0].upper() if tokens else None


class TxnSafetyRule(Rule):
    """See module docstring."""

    id = "TXN01"
    title = "catalog mutations must run inside run_transaction"

    def __init__(
        self,
        targets: Tuple[str, ...] = ("core/storage.py", "backends/sqlite.py"),
    ) -> None:
        self.targets = targets

    # -- mutation detection --------------------------------------------
    def _module_constants(self, tree: ast.Module) -> Dict[str, str]:
        """Module-level ``NAME = "literal"`` bindings (resolves the DDL
        script constant on the sqlite backend)."""
        out: Dict[str, str] = {}
        for node in tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = str_prefix(node.value)
                if isinstance(target, ast.Name) and value is not None:
                    out[target.id] = value
        return out

    def _sql_texts(
        self,
        arg: ast.AST,
        scope: Optional[ast.AST],
        module_consts: Dict[str, str],
    ) -> Optional[List[str]]:
        """Candidate SQL texts for an executor's first argument; ``None``
        when the argument cannot be resolved statically."""
        prefix = str_prefix(arg)
        if prefix is not None:
            return [prefix]
        if isinstance(arg, ast.Name):
            if arg.id in module_consts:
                return [module_consts[arg.id]]
            if scope is not None:
                return local_str_values(scope, arg.id)
        return None

    def _is_mutation(
        self,
        node: ast.Call,
        scope: Optional[ast.AST],
        module_consts: Dict[str, str],
    ) -> bool:
        name = call_name(node)
        if name in _ENGINE_MUTATORS:
            return True
        if name in _SQL_EXECUTORS and node.args:
            texts = self._sql_texts(node.args[0], scope, module_consts)
            if texts is None:
                return False  # opaque SQL: out of static reach
            return any(_sql_verb(text) in _SQL_MUTATION_VERBS for text in texts)
        return False

    # -- safety analysis ------------------------------------------------
    def _safe_scopes_for_method(self, method: ast.AST) -> Set[ast.AST]:
        """Function-like nodes inside ``method`` whose bodies run under a
        transaction: nested defs / lambdas passed to ``run_transaction``."""
        safe: Set[ast.AST] = set()
        nested_defs: Dict[str, ast.AST] = {
            node.name: node
            for node in ast.walk(method)
            if isinstance(node, ast.FunctionDef) and node is not method
        }
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) != "run_transaction" or len(node.args) < 2:
                continue
            fn = node.args[1]
            if isinstance(fn, ast.Lambda):
                safe.add(fn)
            elif isinstance(fn, ast.Name) and fn.id in nested_defs:
                safe.add(nested_defs[fn.id])
        return safe

    def _txn_with_blocks(self, method: ast.AST) -> List[ast.With]:
        """``with self.transaction(...):`` blocks inside ``method``."""
        blocks: List[ast.With] = []
        for node in ast.walk(method):
            if not isinstance(node, ast.With):
                continue
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call) and call_name(expr) == "transaction":
                    blocks.append(node)
                    break
        return blocks

    def _check_class(
        self, ctx: LintContext, module: SourceModule, cls: ast.ClassDef,
        module_consts: Dict[str, str],
    ) -> None:
        methods: Dict[str, ast.FunctionDef] = {
            node.name: node for node in cls.body if isinstance(node, ast.FunctionDef)
        }
        chains = {m: enclosing_functions(m) for m in methods.values()}
        safe_scopes: Dict[str, Set[ast.AST]] = {
            name: self._safe_scopes_for_method(m) for name, m in methods.items()
        }
        with_blocks: Dict[str, List[ast.With]] = {
            name: self._txn_with_blocks(m) for name, m in methods.items()
        }
        with_members: Dict[str, Set[ast.AST]] = {
            name: {
                inner
                for block in blocks
                for inner in ast.walk(block)
            }
            for name, blocks in with_blocks.items()
        }

        def context_is_safe(
            method_name: str, node: ast.AST, txn_only: Set[str]
        ) -> bool:
            method = methods[method_name]
            chain = chains[method][node]
            if any(scope in safe_scopes[method_name] for scope in chain):
                return True
            if node in with_members[method_name]:
                return True
            # The body of a transaction-only helper is safe throughout
            # (but not its own nested defs that escape — none do here).
            return method_name in txn_only

        # Internal call sites per method name: (caller, node).
        call_sites: Dict[str, List[Tuple[str, ast.Call]]] = {}
        for caller, method in methods.items():
            for node in ast.walk(method):
                if isinstance(node, ast.Call):
                    callee = call_name(node)
                    if callee in methods and callee != caller:
                        call_sites.setdefault(callee, []).append((caller, node))

        # Greatest fixpoint (shared solver, see analysis/facts.py):
        # start from every internally-called method, drop any with a
        # call site outside a safe context.
        txn_only: Set[str] = greatest_fixpoint(
            {
                name for name in call_sites
                if name not in ("run_transaction", "transaction")
            },
            lambda name, others: all(
                context_is_safe(caller, node, others)
                for caller, node in call_sites[name]
            ),
        )

        for method_name, method in methods.items():
            for node in ast.walk(method):
                if not isinstance(node, ast.Call):
                    continue
                if not self._is_mutation(node, method, module_consts):
                    continue
                if context_is_safe(method_name, node, txn_only):
                    continue
                ctx.report(
                    self.id, module, node.lineno,
                    f"{cls.name}.{method_name} mutates catalog state outside "
                    f"a transaction ({call_name(node)}); route it through "
                    "run_transaction or store.transaction()",
                )

    def check(self, ctx: LintContext) -> None:
        for module in ctx.modules_matching(*self.targets):
            if module.tree is None:
                continue
            module_consts = self._module_constants(module.tree)
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    self._check_class(ctx, module, node, module_consts)
                elif isinstance(node, ast.FunctionDef):
                    # Module-level functions have no transaction context.
                    for call in ast.walk(node):
                        if isinstance(call, ast.Call) and self._is_mutation(
                            call, node, module_consts
                        ):
                            ctx.report(
                                self.id, module, call.lineno,
                                f"module-level function {node.name} mutates "
                                "catalog state outside any transaction",
                            )

    # Convenience for tests.
    @staticmethod
    def sql_verb(sql: str) -> Optional[str]:
        return _sql_verb(sql)
