"""``repro.backends`` — interchangeable hybrid-store backends (S3).

The in-memory backend lives with the core
(:class:`repro.core.storage.MemoryHybridStore`); this package adds
:class:`SqliteHybridStore`, the same layout and plans on stdlib sqlite,
used for cross-validation (tests) and backend benchmarking (E9).
"""

from .sqlite import SqliteHybridStore

__all__ = ["SqliteHybridStore"]
