"""Reader connection pool for on-disk sqlite catalogs.

One :class:`~repro.backends.sqlite.SqliteHybridStore` owns exactly one
*writer* connection — the S32 single-writer protocol serializes every
transaction behind the store's write lock.  Reads, however, do not need
that connection: a WAL database gives each additional connection a
consistent snapshot that is never blocked by (and never blocks) the
writer.  :class:`ReaderConnectionPool` hands reader threads their own
connections on checkout, so ``match_objects`` / ``build_responses`` /
``collect_statistics`` from N threads run genuinely in parallel while
ingest holds the write lock.

Sizing: connections are created on demand up to ``capacity`` (default
:data:`DEFAULT_CAPACITY`) and kept idle for reuse — a reader beyond the
cap waits for a checkout to return rather than opening an unbounded
number of file handles.  The pool gauge ``sqlite_pool_connections``
tracks how many pooled connections exist.

Fault injection: ``pool:acquire`` is a registered fault site, but the
pool consults the store's armed :class:`~repro.faults.FaultPlan` only
when the plan *targets that site* — a plain ``fail_at=N`` statement
sweep must see exactly the write statements it saw before pooling
existed, or the deterministic crash-point sweeps would drift under
concurrent readers.

``:memory:`` catalogs have no pool: sqlite in-memory databases are
per-connection, so readers share the writer connection under the
store's read lock instead (see ``SqliteHybridStore._reader``).
"""

from __future__ import annotations

import sqlite3
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

from ..errors import CatalogClosedError

__all__ = ["ReaderConnectionPool", "DEFAULT_CAPACITY"]

#: Default pool cap.  Reads are CPU-bound inside sqlite's C code (which
#: releases the GIL), so a small multiple of typical core counts covers
#: the useful parallelism without hoarding file handles.
DEFAULT_CAPACITY = 8


class ReaderConnectionPool:
    """A bounded checkout pool of read-only-by-convention connections
    to one WAL database file.

    ``connect`` is the zero-arg factory producing a new connection
    (the store passes one that applies its tracking wrapper and
    pragmas); ``on_acquire`` is called at every checkout *before* a
    connection is handed out — the store uses it for the
    ``pool:acquire`` fault hook and the pool gauge; ``on_wait``
    receives the queued seconds for every checkout that actually
    blocked at capacity (at-capacity checkouts only, so the hot path
    never touches a clock) — the store feeds it into the
    ``pool_acquire_wait_seconds`` histogram and the active query
    profile.
    """

    def __init__(
        self,
        connect: Callable[[], object],
        capacity: int = DEFAULT_CAPACITY,
        on_acquire: Optional[Callable[[], None]] = None,
        on_wait: Optional[Callable[[float], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("pool capacity must be >= 1")
        self.capacity = capacity
        self._connect = connect
        self._on_acquire = on_acquire
        self._on_wait = on_wait
        self._cond = threading.Condition()
        self._idle: List[object] = []
        self._open = 0  # connections in existence (idle + checked out)
        self._waiters = 0  # threads queued at capacity right now
        self._closed = False
        #: Lifetime checkout count (observable in tests/benchmarks).
        self.acquires = 0

    # ------------------------------------------------------------------
    def open_connections(self) -> int:
        with self._cond:
            return self._open

    def queue_depth(self) -> int:
        """Reader threads currently queued waiting for a connection."""
        with self._cond:
            return self._waiters

    def _acquire(self):
        if self._on_acquire is not None:
            # Outside the condition: an injected fault must not leave
            # the pool lock held, and the hook may touch the metrics
            # registry (its own locks).
            self._on_acquire()
        waited: Optional[float] = None
        with self._cond:
            while True:
                if self._closed:
                    raise CatalogClosedError("reader pool is closed")
                if self._idle:
                    self.acquires += 1
                    conn = self._idle.pop()
                    break
                if self._open < self.capacity:
                    self._open += 1
                    conn = None
                    break
                t0 = time.perf_counter()
                self._waiters += 1
                try:
                    self._cond.wait()
                finally:
                    self._waiters -= 1
                waited = (waited or 0.0) + time.perf_counter() - t0
        if waited is not None and self._on_wait is not None:
            # Outside the pool lock, same reasoning as on_acquire.
            self._on_wait(waited)
        if conn is not None:
            return conn
        # Connect outside the lock (file open + pragmas are not free);
        # undo the reservation if the factory fails.
        try:
            conn = self._connect()
        except BaseException:
            with self._cond:
                self._open -= 1
                self._cond.notify()
            raise
        with self._cond:
            self.acquires += 1
        return conn

    def _release(self, conn) -> None:
        with self._cond:
            if not self._closed:
                self._idle.append(conn)
                self._cond.notify()
                return
            self._open -= 1
        # Pool closed while this connection was checked out: it is the
        # straggler's job to close it.
        conn.close()

    @contextmanager
    def connection(self) -> Iterator[object]:
        """Check a connection out for the duration of the block."""
        conn = self._acquire()
        try:
            yield conn
        except BaseException:
            # A failed read may leave cursor state behind; rolling back
            # is harmless on a clean connection and restores a dirty one.
            try:
                conn.rollback()
            except sqlite3.Error:  # pragma: no cover - defensive
                pass
            raise
        finally:
            self._release(conn)

    def close(self) -> None:
        """Close every idle connection and refuse new checkouts;
        idempotent.  Checked-out connections are closed as their
        readers return them."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            self._open -= len(idle)
            self._cond.notify_all()
        for conn in idle:
            conn.close()
