"""Hybrid store on stdlib :mod:`sqlite3` (system S3).

The identical table layout as :class:`MemoryHybridStore`, with the
Fig-4 count-matching plan and the §5 response builder expressed as
actual SQL:

* the backend-neutral :class:`~repro.core.logical.LogicalPlan` is
  compiled stage by stage: each ``ElementSeek`` becomes one
  ``INSERT ... SELECT`` with a concrete operator predicate (so sqlite
  drives the ``elements_by_def`` index per criterion, in the
  optimizer's most-selective-first order, short-circuiting when a seek
  matches nothing);
* ``DirectCountMatch`` is ``GROUP BY ... HAVING COUNT(DISTINCT ...)``;
* ``AncestorCountMatch`` is one set-based ``DELETE ... WHERE NOT
  EXISTS`` per criteria edge, joining the sub-attribute inverted list —
  no recursive SQL;
* responses are produced by a single ``UNION ALL`` event query over the
  ancestor inverted list, the global-ordering table, and the CLOB
  table, ordered so the rows concatenate directly into tagged XML ("no
  final tagging is needed at the server").

Equivalence with the memory store is property-tested
(``tests/integration/test_backend_equivalence.py``) and measured in
bench E9.

Crash safety (S32): the connection runs in autocommit
(``isolation_level=None``) and every logical mutation is wrapped in an
explicit ``BEGIN IMMEDIATE`` … ``COMMIT`` — one commit per operation,
``ROLLBACK`` on any exception — via the shared
:class:`~repro.core.storage.HybridStore` transaction protocol.  The
tracked-connection proxy consults the store's installed
:class:`~repro.faults.FaultPlan` before each data statement issued
inside a transaction (site = ``verb:table``), which is how the fault
suite fails any individual write deterministically.  On-disk catalogs
get ``journal_mode=WAL`` + ``synchronous=NORMAL`` so a killed process
cannot corrupt the file; ``:memory:`` catalogs keep the fast pragmas.

Concurrency: transactions serialize behind the store's write lock (one
writer, ever — S32), while reads on on-disk catalogs check out
per-thread connections from a
:class:`~repro.backends.pool.ReaderConnectionPool` and run on WAL
snapshots in parallel with each other *and* with the writer.
``:memory:`` catalogs have no pool (an in-memory sqlite database is
private to its connection); their reads share the writer connection
under the store's read lock.
"""

from __future__ import annotations

import itertools
import sqlite3
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.definitions import DefinitionRegistry
from ..core.logical import LogicalPlan, build_plan
from ..core.ordering import ancestor_pairs
from ..core.query import Op
from ..core.response import record_response_metrics
from ..core.schema import AnnotatedSchema
from ..core.shredder import ShredResult
from ..core.stats import StatsSnapshot
from ..core.storage import HybridStore, PlanTrace, record_plan
from ..errors import CatalogError
from ..identifiers import quote_identifier
from ..obs import names as metric_names
from ..obs.metrics import MetricsRegistry
from ..obs.profile import QueryProfile, current_profile
from .pool import DEFAULT_CAPACITY, ReaderConnectionPool

#: Stage kinds this compiler executes.  PLN02 (reprolint) asserts this
#: declaration stays mirrored with the memory interpreter and with the
#: ``kind`` markers on the stage classes in :mod:`repro.core.logical`.
HANDLED_STAGE_KINDS = (
    "ElementSeek",
    "DirectCountMatch",
    "AncestorCountMatch",
    "ObjectIntersect",
)

_DDL = """
CREATE TABLE objects (
    object_id INTEGER PRIMARY KEY,
    name TEXT,
    owner TEXT
);
CREATE TABLE clobs (
    object_id INTEGER NOT NULL,
    schema_order INTEGER NOT NULL,
    clob_seq INTEGER NOT NULL,
    content TEXT NOT NULL,
    PRIMARY KEY (object_id, schema_order, clob_seq)
);
CREATE TABLE attributes (
    object_id INTEGER NOT NULL,
    attr_id INTEGER NOT NULL,
    seq_id INTEGER NOT NULL,
    clob_order INTEGER NOT NULL,
    clob_seq INTEGER NOT NULL,
    PRIMARY KEY (object_id, attr_id, seq_id)
);
CREATE INDEX attributes_by_def ON attributes (attr_id);
CREATE TABLE elements (
    object_id INTEGER NOT NULL,
    attr_id INTEGER NOT NULL,
    seq_id INTEGER NOT NULL,
    elem_id INTEGER NOT NULL,
    elem_seq INTEGER NOT NULL,
    value_text TEXT,
    value_num REAL
);
CREATE INDEX elements_by_def ON elements (elem_id, value_num, value_text);
CREATE TABLE attr_ancestors (
    object_id INTEGER NOT NULL,
    desc_attr_id INTEGER NOT NULL,
    desc_seq INTEGER NOT NULL,
    anc_attr_id INTEGER NOT NULL,
    anc_seq INTEGER NOT NULL,
    distance INTEGER NOT NULL
);
CREATE INDEX anc_by_pair ON attr_ancestors (desc_attr_id, anc_attr_id);
CREATE TABLE schema_order (
    node_order INTEGER PRIMARY KEY,
    tag TEXT NOT NULL,
    last_child_order INTEGER NOT NULL
);
CREATE TABLE node_ancestors (
    node_order INTEGER NOT NULL,
    ancestor_order INTEGER NOT NULL
);
CREATE INDEX node_anc_by_node ON node_ancestors (node_order);
CREATE TABLE attr_defs (
    attr_id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    source TEXT NOT NULL,
    parent_id INTEGER,
    schema_order INTEGER NOT NULL,
    scope TEXT NOT NULL,
    queryable INTEGER NOT NULL,
    structural INTEGER NOT NULL
);
CREATE TABLE elem_defs (
    elem_id INTEGER PRIMARY KEY,
    attr_id INTEGER NOT NULL,
    name TEXT NOT NULL,
    source TEXT NOT NULL,
    value_type TEXT NOT NULL,
    scope TEXT NOT NULL
);
"""

_BIG_SEQ = 1 << 60

#: Transaction-control verbs that bypass fault injection (they *are*
#: the crash-safety machinery, not a crash point).
_CONTROL_VERBS = frozenset(("BEGIN", "COMMIT", "ROLLBACK", "END"))


def _statement_site(sql: str) -> str:
    """``verb:table`` site name for a data statement, matching the
    memory store's naming so one FaultPlan drives both backends."""
    tokens = sql.split(None, 5)
    if not tokens:
        return "empty"
    verb = tokens[0].upper()
    try:
        if verb == "INSERT":
            # INSERT INTO t ... / INSERT OR IGNORE INTO t ...
            table = tokens[2] if tokens[1].upper() == "INTO" else tokens[4]
            return f"insert:{table}"
        if verb == "DELETE":
            return f"delete:{tokens[2]}"
        if verb == "UPDATE":
            return f"update:{tokens[1]}"
    except IndexError:  # pragma: no cover - malformed SQL
        pass
    return verb.lower()


class _StatementCounters:
    """Pre-resolved metric handles for one registry (resolving a metric
    by name on every statement would double the wrapper's cost)."""

    __slots__ = ("registry", "execute", "executemany", "script",
                 "rows", "txn_seconds")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        statements = registry.counter(
            "sqlite_statements_total",
            "SQL statements issued against the sqlite backend",
            labels=("kind",),
        )
        self.execute = statements.labels(kind="execute")
        self.executemany = statements.labels(kind="executemany")
        self.script = statements.labels(kind="script")
        self.rows = registry.counter(
            "sqlite_rows_fetched_total", "rows fetched from sqlite cursors"
        )
        self.txn_seconds = registry.histogram(
            "sqlite_txn_seconds", "sqlite transaction commit wall time"
        )


class _TrackedCursor:
    """Counts rows as they are fetched; otherwise a transparent proxy."""

    __slots__ = ("_cursor", "_counters")

    def __init__(self, cursor, counters: _StatementCounters) -> None:
        self._cursor = cursor
        self._counters = counters

    def fetchone(self):
        row = self._cursor.fetchone()
        if row is not None:
            self._counters.rows.inc()
        return row

    def fetchall(self):
        rows = self._cursor.fetchall()
        self._counters.rows.inc(len(rows))
        return rows

    def __iter__(self):
        for row in self._cursor:
            self._counters.rows.inc()
            yield row

    def __getattr__(self, name):
        return getattr(self._cursor, name)


class _TrackedConnection:
    """Counts statements and times commits; the metric handles follow
    the owning store's bound registry (the catalog may re-bind after
    the connection is created)."""

    __slots__ = ("_connection", "_store", "_counters")

    def __init__(self, connection: sqlite3.Connection, store: "SqliteHybridStore") -> None:
        self._connection = connection
        self._store = store
        self._counters: Optional[_StatementCounters] = None

    def _c(self) -> _StatementCounters:
        registry = self._store.metrics_registry()
        counters = self._counters
        if counters is None or counters.registry is not registry:
            counters = _StatementCounters(registry)
            self._counters = counters
        return counters

    def _maybe_fault(self, sql: str) -> None:
        store = self._store
        if store._fault_armed():
            site = _statement_site(sql)
            if site.split(":", 1)[0].upper() not in _CONTROL_VERBS:
                # Site names derived from executed SQL include read
                # verbs that are deliberately unregistered (a FaultPlan
                # targeting them simply never fires).
                store._fault(site)  # reprolint: ignore[FLT01]

    def execute(self, sql, params=()):
        counters = self._c()
        counters.execute.inc()
        self._maybe_fault(sql)
        return _TrackedCursor(self._connection.execute(sql, params), counters)

    def executemany(self, sql, rows):
        counters = self._c()
        counters.executemany.inc()
        self._maybe_fault(sql)
        return _TrackedCursor(self._connection.executemany(sql, rows), counters)

    def executescript(self, script):
        counters = self._c()
        counters.script.inc()
        return _TrackedCursor(self._connection.executescript(script), counters)

    def execute_control(self, sql) -> None:
        """Transaction-control statements: uncounted, never faulted."""
        self._connection.execute(sql)

    def commit(self) -> None:
        counters = self._c()
        start = time.perf_counter()
        self._connection.commit()
        counters.txn_seconds.observe(time.perf_counter() - start)

    def close(self) -> None:
        self._connection.close()

    def __getattr__(self, name):
        return getattr(self._connection, name)


class SqliteHybridStore(HybridStore):
    """The hybrid layout and plans on a real RDBMS (sqlite)."""

    def __init__(
        self,
        path: str = ":memory:",
        durable: Optional[bool] = None,
        pool_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self._path = path
        # Autocommit: transactions are explicit (BEGIN IMMEDIATE issued
        # by the HybridStore transaction protocol), never implicit.
        # check_same_thread=False: the concurrency contract serializes
        # all writer-connection use behind the store's locks, and
        # close() may legitimately run on a different thread.
        self.connection = _TrackedConnection(
            sqlite3.connect(path, isolation_level=None, check_same_thread=False),
            self,
        )
        if durable is None:
            durable = path != ":memory:" and not path.startswith("file::memory:")
        self.durable = durable
        if durable:
            # On-disk catalogs: WAL survives a killed process and keeps
            # readers unblocked during a write transaction.
            self.connection.execute("PRAGMA journal_mode = WAL")
            self.connection.execute("PRAGMA synchronous = NORMAL")
        else:
            self.connection.execute("PRAGMA journal_mode = MEMORY")
            self.connection.execute("PRAGMA synchronous = OFF")
        self.schema: Optional[AnnotatedSchema] = None
        self._temp_ids = itertools.count(1)
        # Reader pool: only on-disk WAL catalogs — an in-memory sqlite
        # database is private to its connection, so ``:memory:`` readers
        # share the writer connection under the read lock instead.
        self._pool: Optional[ReaderConnectionPool] = (
            ReaderConnectionPool(
                self._reader_connect,
                capacity=pool_capacity,
                on_acquire=self._pool_acquire_hook,
                on_wait=self._observe_pool_wait,
            )
            if durable
            else None
        )

    # ------------------------------------------------------------------
    # Reader pool (WAL snapshot reads in parallel with the writer)
    # ------------------------------------------------------------------
    def _reader_connect(self) -> "_TrackedConnection":
        conn = _TrackedConnection(
            sqlite3.connect(
                self._path, isolation_level=None, check_same_thread=False
            ),
            self,
        )
        # A WAL reader can still hit SQLITE_BUSY around checkpoint
        # restarts; a short busy wait beats surfacing it to callers.
        conn.execute_control("PRAGMA busy_timeout = 5000")
        return conn

    def _pool_acquire_hook(self) -> None:
        """Fault hook at reader-connection checkout.  Consulted only
        when the armed plan targets ``pool:acquire``: a plain
        ``fail_at=N`` write-statement sweep must count exactly the
        statements it counted before pooling existed."""
        plan = self.fault_plan
        if plan is not None and plan.site == "pool:acquire":
            plan.before("pool:acquire", self.metrics_registry())

    def _observe_pool_wait(self, seconds: float) -> None:
        """Pool contention observer: checkouts that queued at capacity
        land in the acquire-wait histogram and on the active query
        profile (never called on the idle-connection fast path)."""
        registry = self.metrics_registry()
        registry.histogram(
            "pool_acquire_wait_seconds",
            metric_names.spec("pool_acquire_wait_seconds").help,
        ).observe(seconds)
        prof = current_profile()
        if prof is not None:
            prof.add_wait("pool", seconds)

    def _set_pool_gauge(self) -> None:
        if self._pool is not None:
            registry = self.metrics_registry()
            registry.gauge(
                "sqlite_pool_connections",
                "reader connections currently open in the pool",
            ).set(self._pool.open_connections())
            registry.gauge(
                "pool_queue_depth",
                metric_names.spec("pool_queue_depth").help,
            ).set(self._pool.queue_depth())

    @contextmanager
    def _reader(self) -> Iterator["_TrackedConnection"]:
        """The connection a read runs on.  Inside the calling thread's
        own transaction: the writer connection (the read must see the
        transaction's uncommitted writes).  On-disk catalogs: a pooled
        connection — WAL snapshot isolation, parallel with the writer.
        ``:memory:`` catalogs: the single shared connection under the
        read lock."""
        if self.in_transaction():
            yield self.connection
            return
        if self._pool is None:
            with self.read_locked():
                yield self.connection
            return
        self._check_open()
        with self._pool.connection() as conn:
            self._set_pool_gauge()
            yield conn

    # ------------------------------------------------------------------
    # Transactions (explicit BEGIN IMMEDIATE / COMMIT / ROLLBACK)
    # ------------------------------------------------------------------
    def _txn_begin(self, site: str) -> None:
        self.connection.execute_control("BEGIN IMMEDIATE")

    def _txn_commit(self, site: str) -> None:
        self.connection.commit()

    def _txn_rollback(self, site: str) -> None:
        # BEGIN itself may have failed (lock contention); only roll back
        # a transaction that actually started.
        if self.connection.in_transaction:
            self.connection.rollback()

    # ------------------------------------------------------------------
    # DDL / definitions
    # ------------------------------------------------------------------
    def is_initialized(self) -> bool:
        with self._reader() as cur:
            row = cur.execute(
                "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = 'objects'"
            ).fetchone()
        return row is not None

    def attach_schema(self, schema: AnnotatedSchema) -> None:
        """Bind ``schema`` to a reopened catalog file, verifying the
        stored global ordering matches it exactly."""
        if self.schema is not None:
            raise CatalogError("schema already installed")
        with self._reader() as cur:
            stored = cur.execute(
                "SELECT node_order, tag, last_child_order FROM schema_order "
                "ORDER BY node_order"
            ).fetchall()
        expected = [
            (n.order, n.tag, n.last_child_order) for n in schema.ordered_nodes
        ]
        if stored != expected:
            raise CatalogError(
                "the catalog file was created with a different schema "
                f"({len(stored)} stored ordered nodes vs {len(expected)})"
            )
        self.schema = schema

    def load_definition_rows(self):
        with self._reader() as cur:
            attr_rows = cur.execute(
                "SELECT attr_id, name, source, parent_id, schema_order, scope, "
                "queryable, structural FROM attr_defs"
            ).fetchall()
            elem_rows = cur.execute(
                "SELECT elem_id, attr_id, name, source, value_type, scope FROM elem_defs"
            ).fetchall()
        return attr_rows, elem_rows

    def load_objects(self):
        with self._reader() as cur:
            return cur.execute(
                "SELECT object_id, name, owner FROM objects ORDER BY object_id"
            ).fetchall()

    def install_schema(self, schema: AnnotatedSchema) -> None:
        if self.schema is not None:
            raise CatalogError("schema already installed")
        self._check_open()
        cur = self.connection
        self.schema = schema
        # DDL runs in autocommit (sqlite's executescript commits any
        # pending transaction anyway); the ordering rows are one txn.
        cur.executescript(_DDL)

        def write() -> None:
            cur.executemany(
                "INSERT INTO schema_order VALUES (?, ?, ?)",
                [(n.order, n.tag, n.last_child_order) for n in schema.ordered_nodes],
            )
            cur.executemany(
                "INSERT INTO node_ancestors VALUES (?, ?)",
                ancestor_pairs(schema.ordered_nodes),
            )

        self.run_transaction("install_schema", write)

    def sync_definitions(self, registry: DefinitionRegistry) -> None:
        self.run_transaction(
            "sync_definitions", lambda: self._sync_definitions(registry)
        )

    def _sync_definitions(self, registry: DefinitionRegistry) -> None:
        cur = self.connection
        cur.executemany(
            "INSERT OR IGNORE INTO attr_defs VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (d.attr_id, d.name, d.source, d.parent_id, d.schema_order,
                 d.scope, int(d.queryable), int(d.structural))
                for d in registry.all_attributes()
            ],
        )
        cur.executemany(
            "INSERT OR IGNORE INTO elem_defs VALUES (?, ?, ?, ?, ?, ?)",
            [
                (e.elem_id, e.attr_id, e.name, e.source, e.value_type.value, e.scope)
                for e in registry.all_elements()
            ],
        )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def store_object(self, object_id: int, name: str, owner: str, shred: ShredResult) -> None:
        def write() -> None:
            self.connection.execute(
                "INSERT INTO objects VALUES (?, ?, ?)", (object_id, name, owner)
            )
            self._append_rows(object_id, shred)

        self.run_transaction("store_object", write)

    def append_rows(self, object_id: int, shred: ShredResult) -> None:
        self.run_transaction(
            "append_rows", lambda: self._append_rows(object_id, shred)
        )

    def _append_rows(self, object_id: int, shred: ShredResult) -> None:
        cur = self.connection
        cur.executemany(
            "INSERT INTO clobs VALUES (?, ?, ?, ?)",
            [(object_id, c.schema_order, c.clob_seq, c.text) for c in shred.clobs],
        )
        cur.executemany(
            "INSERT INTO attributes VALUES (?, ?, ?, ?, ?)",
            [
                (object_id, a.attr_id, a.seq_id, a.clob_order, a.clob_seq)
                for a in shred.attributes
            ],
        )
        cur.executemany(
            "INSERT INTO elements VALUES (?, ?, ?, ?, ?, ?, ?)",
            [
                (object_id, e.attr_id, e.seq_id, e.elem_id, e.elem_seq,
                 e.value_text, e.value_num)
                for e in shred.elements
            ],
        )
        cur.executemany(
            "INSERT INTO attr_ancestors VALUES (?, ?, ?, ?, ?, ?)",
            [
                (object_id, i.desc_attr_id, i.desc_seq, i.anc_attr_id,
                 i.anc_seq, i.distance)
                for i in shred.inverted
            ],
        )

    def delete_object(self, object_id: int) -> None:
        if not self.has_object(object_id):
            raise CatalogError(f"no object {object_id}")

        def write() -> None:
            cur = self.connection
            for table in (
                "objects", "clobs", "attributes", "elements", "attr_ancestors"
            ):
                cur.execute(
                    f"DELETE FROM {quote_identifier(table)} WHERE object_id = ?",
                    (object_id,),
                )

        self.run_transaction("delete_object", write)

    def has_object(self, object_id: int) -> bool:
        with self._reader() as cur:
            row = cur.execute(
                "SELECT 1 FROM objects WHERE object_id = ?", (object_id,)
            ).fetchone()
        return row is not None

    def object_count(self) -> int:
        with self._reader() as cur:
            return cur.execute("SELECT COUNT(*) FROM objects").fetchone()[0]

    def max_clob_seq(self, object_id: int, schema_order: int) -> int:
        with self._reader() as cur:
            row = cur.execute(
                "SELECT MAX(clob_seq) FROM clobs WHERE object_id = ? AND schema_order = ?",
                (object_id, schema_order),
            ).fetchone()
        return row[0] or 0

    def instance_counts(self, object_id: int) -> Dict[int, int]:
        with self._reader() as cur:
            rows = cur.execute(
                "SELECT attr_id, MAX(seq_id) FROM attributes WHERE object_id = ? "
                "GROUP BY attr_id",
                (object_id,),
            ).fetchall()
        return {attr_id: seq for attr_id, seq in rows}

    def remove_attribute_instance(
        self, object_id: int, attr_id: int, seq_id: int
    ) -> None:
        self.run_transaction(
            "remove_attribute_instance",
            lambda: self._remove_attribute_instance(object_id, attr_id, seq_id),
        )

    def _remove_attribute_instance(
        self, object_id: int, attr_id: int, seq_id: int
    ) -> None:
        cur = self.connection
        target = cur.execute(
            "SELECT clob_order, clob_seq FROM attributes "
            "WHERE object_id = ? AND attr_id = ? AND seq_id = ?",
            (object_id, attr_id, seq_id),
        ).fetchone()
        if target is None:
            raise CatalogError(
                f"object {object_id} has no instance {seq_id} of attribute "
                f"{attr_id}"
            )
        clob_order, clob_seq = target
        if clob_seq < 1:
            raise CatalogError(
                "only top-level attribute instances can be removed; "
                f"attribute {attr_id} instance {seq_id} is a sub-attribute"
            )
        victims = [(attr_id, seq_id)] + cur.execute(
            "SELECT desc_attr_id, desc_seq FROM attr_ancestors "
            "WHERE object_id = ? AND anc_attr_id = ? AND anc_seq = ? "
            "AND distance >= 1",
            (object_id, attr_id, seq_id),
        ).fetchall()
        for victim_attr, victim_seq in victims:
            key = (object_id, victim_attr, victim_seq)
            cur.execute(
                "DELETE FROM attributes WHERE object_id = ? AND attr_id = ? "
                "AND seq_id = ?",
                key,
            )
            cur.execute(
                "DELETE FROM elements WHERE object_id = ? AND attr_id = ? "
                "AND seq_id = ?",
                key,
            )
            cur.execute(
                "DELETE FROM attr_ancestors WHERE object_id = ? AND "
                "desc_attr_id = ? AND desc_seq = ?",
                key,
            )
            cur.execute(
                "DELETE FROM attr_ancestors WHERE object_id = ? AND "
                "anc_attr_id = ? AND anc_seq = ?",
                key,
            )
        cur.execute(
            "DELETE FROM clobs WHERE object_id = ? AND schema_order = ? "
            "AND clob_seq = ?",
            (object_id, clob_order, clob_seq),
        )

    # ------------------------------------------------------------------
    # Query: compile the logical plan IR to SQL (Fig 4)
    # ------------------------------------------------------------------
    _SQL_OPS = {
        Op.EQ: "=", Op.NE: "<>", Op.LT: "<", Op.LE: "<=",
        Op.GT: ">", Op.GE: ">=",
    }

    def _compile_seek(self, plan: LogicalPlan, seek, qm: str):
        """One ``INSERT ... SELECT`` per ElementSeek: a concrete
        predicate over the criterion's literal, so sqlite seeks the
        ``elements_by_def (elem_id, value_num, value_text)`` index per
        criterion instead of filtering a disjunction over all ops."""
        qelem = plan.query.qelems[seek.qelem_id - 1]
        params: list = [seek.qattr_id, seek.qelem_id, qelem.elem_def_id]
        where = ["e.elem_id = ?"]
        if not plan.simple:
            # The general plan groups by attribute instance; pin the
            # hosting definition exactly as the memory interpreter does.
            where.append("e.attr_id = ?")
            params.append(plan.query.qattr(seek.qattr_id).attr_def_id)
        op = qelem.op
        if op is Op.IN_SET:
            values = sorted(qelem.value_set)  # deterministic placeholder order
            marks = ", ".join("?" for _ in values)
            column = "e.value_num" if qelem.numeric else "e.value_text"
            where.append(f"{column} IN ({marks})")
            params.extend(values)
        elif op is Op.CONTAINS:
            where.append("e.value_text IS NOT NULL AND instr(e.value_text, ?) > 0")
            params.append(qelem.value_text)
        elif qelem.numeric:
            where.append(f"e.value_num IS NOT NULL AND e.value_num {self._SQL_OPS[op]} ?")
            params.append(qelem.value_num)
        else:
            where.append(f"e.value_text IS NOT NULL AND e.value_text {self._SQL_OPS[op]} ?")
            params.append(qelem.value_text)
        # WHERE is assembled from the fixed _SQL_OPS table and ?-bound
        # literals above — no external string ever reaches the SQL text.
        sql = (  # reprolint: ignore[SQL01] fixed op table + ? params only
            f"INSERT INTO {quote_identifier(qm)} "
            "SELECT e.object_id, e.attr_id, e.seq_id, ?, ? FROM elements e "
            "WHERE " + " AND ".join(f"({clause})" for clause in where)
        )
        return sql, params

    def match_objects(self, shredded_query, trace: Optional[PlanTrace] = None) -> List[int]:
        plan = (
            shredded_query
            if isinstance(shredded_query, LogicalPlan)
            else build_plan(shredded_query)
        )
        if trace is None:
            trace = PlanTrace()
        # One contextvar read per query is the whole disabled-profiling
        # cost on this path (bench E13's ≤1% budget).
        prof = current_profile()
        # Temp tables are per-connection, so a pooled reader executes
        # the whole plan in its own namespace, in parallel with other
        # readers and (on WAL catalogs) with the writer.
        with self._reader() as cur:
            object_ids = self._match_objects(cur, plan, trace, prof)
        if prof is not None:
            prof.record_plan(plan, backend="sqlite", trace=trace)
        return object_ids

    def _match_objects(
        self,
        cur,
        plan: LogicalPlan,
        trace: PlanTrace,
        prof: Optional[QueryProfile] = None,
    ) -> List[int]:
        query = plan.query
        suffix = next(self._temp_ids)
        qm = quote_identifier(f"q_matches_{suffix}")
        qs = quote_identifier(f"q_satisfied_{suffix}")
        cur.execute(
            f"CREATE TEMP TABLE {qm} (object_id INTEGER, attr_id INTEGER,"
            " seq_id INTEGER, qattr_id INTEGER, qelem_id INTEGER)"
        )
        cur.execute(
            f"CREATE TEMP TABLE {qs} (qattr_id INTEGER, object_id INTEGER,"
            " seq_id INTEGER)"
        )
        trace.add(
            "query-criteria",
            len(query.qattrs) + len(query.qelems),
            f"{len(query.qattrs)} attribute, "
            f"{len(query.qelems)} element criteria"
            + (" (simplified plan)" if plan.simple else ""),
        )
        try:
            # ElementSeek stages, in the optimizer's order; a seek with
            # no matches empties the conjunctive result — skip the rest.
            match_rows = 0
            short_circuited = False
            clock = time.perf_counter if prof is not None else None
            for seek in plan.seeks:
                t0 = clock() if clock is not None else 0.0
                sql, params = self._compile_seek(plan, seek, qm)
                seek_rows = cur.execute(sql, params).rowcount  # reprolint: ignore[TXN01] temp-table scratch
                plan.actuals[seek.key()] = seek_rows
                if clock is not None:
                    prof.stage_seconds[seek.key()] = clock() - t0
                match_rows += seek_rows
                if seek_rows == 0:
                    short_circuited = True
                    break
            trace.add(
                "elements-meeting-criteria",
                match_rows,
                "short-circuited: a criterion matched nothing"
                if short_circuited else "",
            )
            if short_circuited:
                return self._empty_result(plan, trace)

            # DirectCountMatch stages: GROUP BY ... HAVING COUNT per
            # attribute criterion (by object under the §4 rewrite, by
            # attribute instance otherwise); existence-only criteria
            # take every instance of their definition.
            for count in plan.counts:
                t0 = clock() if clock is not None else 0.0
                if count.required == 0:
                    if count.per_object:
                        sql = (
                            f"INSERT INTO {qs} "
                            "SELECT DISTINCT ?, a.object_id, 0 "
                            "FROM attributes a WHERE a.attr_id = ?"
                        )
                    else:
                        sql = (
                            f"INSERT INTO {qs} "
                            "SELECT ?, a.object_id, a.seq_id "
                            "FROM attributes a WHERE a.attr_id = ?"
                        )
                    rows = cur.execute(sql, (count.qattr_id, count.attr_def_id)).rowcount  # reprolint: ignore[TXN01] temp-table scratch
                else:
                    if count.per_object:
                        sql = (
                            f"INSERT INTO {qs} "
                            f"SELECT ?, m.object_id, 0 FROM {qm} m "
                            "WHERE m.qattr_id = ? GROUP BY m.object_id "
                            "HAVING COUNT(DISTINCT m.qelem_id) = ?"
                        )
                    else:
                        sql = (
                            f"INSERT INTO {qs} "
                            f"SELECT ?, m.object_id, m.seq_id FROM {qm} m "
                            "WHERE m.qattr_id = ? GROUP BY m.object_id, m.seq_id "
                            "HAVING COUNT(DISTINCT m.qelem_id) = ?"
                        )
                    rows = cur.execute(  # reprolint: ignore[TXN01] temp-table scratch
                        sql, (count.qattr_id, count.qattr_id, count.required)
                    ).rowcount
                plan.actuals[count.key()] = rows
                if clock is not None:
                    prof.stage_seconds[count.key()] = clock() - t0
            direct_rows = cur.execute(f"SELECT COUNT(*) FROM {qs}").fetchone()[0]
            trace.add("attributes-direct", direct_rows)

            # AncestorCountMatch stages: one set-based DELETE per
            # criteria edge, joining the inverted list (bottom-up order
            # fixed by the plan builder).
            if not plan.simple:
                for edge in plan.containments:
                    t0 = clock() if clock is not None else 0.0
                    cur.execute(  # reprolint: ignore[TXN01] temp-table scratch
                        f"""
                        DELETE FROM {qs}
                        WHERE qattr_id = ?
                          AND NOT EXISTS (
                            SELECT 1
                            FROM attr_ancestors aa
                            JOIN {qs} cs
                              ON cs.qattr_id = ?
                             AND cs.object_id = aa.object_id
                             AND cs.seq_id = aa.desc_seq
                            WHERE aa.desc_attr_id = ?
                              AND aa.anc_attr_id = ?
                              AND aa.distance >= 1
                              AND aa.object_id = {qs}.object_id
                              AND aa.anc_seq = {qs}.seq_id)
                        """,
                        (edge.parent_qattr_id, edge.child_qattr_id,
                         edge.child_def_id, edge.parent_def_id),
                    )
                    plan.actuals[edge.key()] = cur.execute(
                        f"SELECT COUNT(*) FROM {qs} WHERE qattr_id = ?",
                        (edge.parent_qattr_id,),
                    ).fetchone()[0]
                    if clock is not None:
                        prof.stage_seconds[edge.key()] = clock() - t0
                indirect_rows = cur.execute(f"SELECT COUNT(*) FROM {qs}").fetchone()[0]
                trace.add("attributes-indirect", indirect_rows)

            # ObjectIntersect: the required number of satisfied tops.
            t0 = clock() if clock is not None else 0.0
            tops = plan.intersect.top_qattr_ids
            marks = ", ".join("?" for _ in tops)
            rows = cur.execute(  # reprolint: ignore[SQL01] marks is ? placeholder expansion
                f"""
                SELECT object_id FROM {qs}
                WHERE qattr_id IN ({marks})
                GROUP BY object_id
                HAVING COUNT(DISTINCT qattr_id) = ?
                ORDER BY object_id
                """,
                [*tops, len(tops)],
            ).fetchall()
            object_ids = [row[0] for row in rows]
            plan.actuals[plan.intersect.key()] = len(object_ids)
            if clock is not None:
                prof.stage_seconds[plan.intersect.key()] = clock() - t0
            trace.add("object-ids", len(object_ids))
            record_plan(trace, self.metrics_registry())
            return object_ids
        finally:
            for table in (qm, qs):
                cur.execute(f"DROP TABLE {quote_identifier(table)}")

    def _empty_result(self, plan: LogicalPlan, trace: PlanTrace) -> List[int]:
        """Uniform trace completion after a seek short-circuit (the
        memory interpreter emits the identical stage sequence)."""
        for seek in plan.seeks:
            plan.actuals.setdefault(seek.key(), 0)
        for count in plan.counts:
            plan.actuals[count.key()] = 0
        trace.add("attributes-direct", 0)
        if not plan.simple:
            for edge in plan.containments:
                plan.actuals[edge.key()] = 0
            trace.add("attributes-indirect", 0)
        plan.actuals[plan.intersect.key()] = 0
        trace.add("object-ids", 0)
        record_plan(trace, self.metrics_registry())
        return []

    # ------------------------------------------------------------------
    # Statistics (optimizer inputs)
    # ------------------------------------------------------------------
    def collect_statistics(self) -> StatsSnapshot:
        """One aggregation pass for the statistics layer: per element
        definition row/distinct counts, per attribute definition
        instance counts, and the object total."""
        elem_rows: Dict[int, int] = {}
        elem_distinct: Dict[int, int] = {}
        with self._reader() as cur:
            for elem_id, rows, distinct in cur.execute(
                "SELECT elem_id, COUNT(*), "
                "COUNT(DISTINCT COALESCE(value_text, CAST(value_num AS TEXT))) "
                "FROM elements GROUP BY elem_id"
            ):
                elem_rows[elem_id] = rows
                elem_distinct[elem_id] = distinct
            attr_rows = {
                attr_id: rows
                for attr_id, rows in cur.execute(
                    "SELECT attr_id, COUNT(*) FROM attributes GROUP BY attr_id"
                )
            }
            objects = cur.execute("SELECT COUNT(*) FROM objects").fetchone()[0]
        return StatsSnapshot(objects, elem_rows, elem_distinct, attr_rows)

    # ------------------------------------------------------------------
    # Response (§5 in SQL: one ordered UNION ALL event stream)
    # ------------------------------------------------------------------
    def build_responses(self, object_ids: Sequence[int]) -> Dict[int, str]:
        assert self.schema is not None
        with self._reader() as cur:
            return self._build_responses(cur, object_ids)

    def _build_responses(self, cur, object_ids: Sequence[int]) -> Dict[int, str]:
        suffix = next(self._temp_ids)
        req = quote_identifier(f"req_objects_{suffix}")
        cur.execute(f"CREATE TEMP TABLE {req} (object_id INTEGER PRIMARY KEY)")
        cur.executemany(  # reprolint: ignore[TXN01] temp-table scratch
            f"INSERT OR IGNORE INTO {req} VALUES (?)", [(i,) for i in object_ids]
        )
        rows = cur.execute(
            f"""
            WITH required AS (
                SELECT DISTINCT c.object_id, na.ancestor_order
                FROM clobs c
                JOIN {req} r ON r.object_id = c.object_id
                JOIN node_ancestors na ON na.node_order = c.schema_order
            )
            SELECT object_id, pos, seq, kind, tie, frag FROM (
                SELECT q.object_id AS object_id, so.node_order AS pos,
                       0 AS seq, 0 AS kind, -so.node_order AS tie,
                       '<' || so.tag || '>' AS frag
                FROM required q
                JOIN schema_order so ON so.node_order = q.ancestor_order
                UNION ALL
                SELECT q.object_id, so.last_child_order, ?, 2,
                       -so.node_order, '</' || so.tag || '>'
                FROM required q
                JOIN schema_order so ON so.node_order = q.ancestor_order
                UNION ALL
                SELECT c.object_id, c.schema_order, c.clob_seq, 1, 0, c.content
                FROM clobs c
                JOIN {req} r ON r.object_id = c.object_id
            )
            ORDER BY object_id, pos, seq, kind, tie
            """,
            (_BIG_SEQ,),
        ).fetchall()
        responses: Dict[int, str] = {}
        fragments: Dict[int, List[str]] = {}
        for object_id, _pos, _seq, _kind, _tie, frag in rows:
            fragments.setdefault(object_id, []).append(frag)
        for object_id, frags in fragments.items():
            responses[object_id] = "".join(frags)
        # Objects that exist but have no CLOBs collapse to an empty root.
        root_tag = self.schema.root.tag
        present = cur.execute(
            f"SELECT o.object_id FROM objects o JOIN {req} r ON r.object_id = o.object_id"
        ).fetchall()
        for (object_id,) in present:
            if object_id not in responses:
                responses[object_id] = f"<{root_tag}></{root_tag}>"
        cur.execute(f"DROP TABLE {req}")
        record_response_metrics(self.metrics_registry(), responses)
        return responses

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def storage_report(self) -> List[Tuple[str, int, int]]:
        report: List[Tuple[str, int, int]] = []
        with self._reader() as cur:
            tables = [
                row[0]
                for row in cur.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            ]
            for table in tables:
                name = quote_identifier(table)
                count = cur.execute(f"SELECT COUNT(*) FROM {name}").fetchone()[0]
                # Approximate byte accounting comparable to the memory store.
                size = 0
                for row in cur.execute(f"SELECT * FROM {name}"):
                    for value in row:
                        if value is None:
                            size += 1
                        elif isinstance(value, str):
                            size += len(value)
                        else:
                            size += 8
                report.append((table, count, size))
        report.sort(key=lambda item: item[2], reverse=True)
        return report

    def close(self) -> None:
        """Close the writer connection and the reader pool.  Idempotent;
        every subsequent operation raises
        :class:`~repro.errors.CatalogClosedError` instead of sqlite's
        raw ``ProgrammingError``."""
        if self._closed:
            return
        # Wait out an in-flight transaction, then fence new operations.
        with self._rwlock().write_locked():
            if self._closed:
                return
            self._closed = True
            if self._pool is not None:
                self._pool.close()
            self.connection.close()
