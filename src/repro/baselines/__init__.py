"""``repro.baselines`` — the related-work comparators (S11–S13).

Each baseline implements :class:`~repro.baselines.base.CatalogScheme`,
the same interface the hybrid catalog is adapted to, so benchmarks can
swap schemes:

* :class:`InliningCatalog` — shared schema inlining [14]
* :class:`EdgeCatalog` — edge table + typed value tables [16][17]
* :class:`ClobCatalog` — whole-document CLOBs [21][22]
* :func:`evaluate_shredded_query` — the scan oracle used for
  correctness testing and by the CLOB baseline's query path
"""

from .base import CatalogScheme, HybridScheme
from .clob import ClobCatalog
from .edge import EdgeCatalog
from .inlining import InliningCatalog
from .scan import evaluate_shredded_query

__all__ = [
    "CatalogScheme",
    "ClobCatalog",
    "EdgeCatalog",
    "HybridScheme",
    "InliningCatalog",
    "evaluate_shredded_query",
]
