"""Common interface for catalog schemes under comparison.

Every scheme — the hybrid catalog and the three related-work baselines
(§6: inlining [14], edge table [16][17], whole-document CLOB [21][22])
— is driven through :class:`CatalogScheme` so the benchmark harness can
swap them freely: ingest documents, run the same
:class:`~repro.core.query.ObjectQuery` objects, reconstruct responses,
and account storage.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

from ..core.catalog import HybridCatalog
from ..core.query import ObjectQuery


class CatalogScheme(abc.ABC):
    """A storage scheme for schema-based metadata documents."""

    #: Short name used in benchmark tables.
    name: str = "abstract"

    @abc.abstractmethod
    def ingest(self, document: str, name: str = "") -> int:
        """Store one document; returns the assigned object id."""

    def ingest_many(self, documents: Sequence[str]) -> List[int]:
        return [self.ingest(doc, name=f"object-{i}") for i, doc in enumerate(documents, 1)]

    @abc.abstractmethod
    def query(self, query: ObjectQuery) -> List[int]:
        """Sorted ids of objects matching the attribute criteria."""

    @abc.abstractmethod
    def fetch(self, object_ids: Sequence[int]) -> Dict[int, str]:
        """Reconstruct one XML document per object id."""

    @abc.abstractmethod
    def storage_report(self) -> List[Tuple[str, int, int]]:
        """Per-table ``(name, rows, bytes)`` accounting."""

    def total_bytes(self) -> int:
        return sum(b for _n, _r, b in self.storage_report())

    def total_rows(self) -> int:
        return sum(r for _n, r, _b in self.storage_report())


class HybridScheme(CatalogScheme):
    """Adapter presenting :class:`HybridCatalog` as a scheme."""

    name = "hybrid"

    def __init__(self, catalog: HybridCatalog) -> None:
        self.catalog = catalog

    def ingest(self, document: str, name: str = "") -> int:
        return self.catalog.ingest(document, name=name).object_id

    def query(self, query: ObjectQuery) -> List[int]:
        return self.catalog.query(query)

    def fetch(self, object_ids: Sequence[int]) -> Dict[int, str]:
        return self.catalog.fetch(object_ids)

    def storage_report(self) -> List[Tuple[str, int, int]]:
        return self.catalog.storage_report()
