"""Whole-document CLOB baseline (paper §6: DB2 XML Column / Oracle 10g
default storage [21][22]).

The entire document is stored as one CLOB.  Retrieval is a passthrough
(the strength the paper concedes: "the CLOB approach allows the
document to be retrieved in its original form"), but **every query must
parse and interpret every stored document** — there are no shredded
rows to index.  Parsed shreds are evaluated with the same oracle
semantics as the hybrid planner so results agree exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.definitions import DefinitionRegistry
from ..core.query import ObjectQuery, shred_query
from ..core.schema import AnnotatedSchema
from ..core.shredder import Shredder
from ..errors import CatalogError
from ..relational import Database, clob, integer, text
from ..xmlkit import parse
from .base import CatalogScheme
from .scan import evaluate_shredded_query


class ClobCatalog(CatalogScheme):
    """One CLOB per document; scan-and-parse queries."""

    name = "clob"

    def __init__(
        self,
        schema: AnnotatedSchema,
        registry: Optional[DefinitionRegistry] = None,
    ) -> None:
        self.schema = schema
        # The registry resolves query criteria names; sharing the hybrid
        # catalog's registry keeps dynamic definitions identical across
        # schemes in a comparison.
        self.registry = registry if registry is not None else DefinitionRegistry(schema)
        self.shredder = Shredder(schema, self.registry, on_unknown="store")
        self.db = Database("clob")
        self.documents = self.db.create_table(
            "documents",
            [integer("object_id", nullable=False), text("name"), clob("content", nullable=False)],
            primary_key=["object_id"],
        )
        self._next_id = 1

    def ingest(self, document: str, name: str = "") -> int:
        # Parse on ingest purely to reject malformed input; the stored
        # form is the raw text.
        parse(document)
        object_id = self._next_id
        self._next_id += 1
        self.documents.insert([object_id, name, document])
        return object_id

    def query(self, query: ObjectQuery) -> List[int]:
        shredded = shred_query(query, self.registry)
        matches: List[int] = []
        for object_id, _name, content in self.documents.scan():
            document = parse(content)
            shred = self.shredder.shred(document)
            if evaluate_shredded_query(shredded, shred):
                matches.append(object_id)
        return sorted(matches)

    def xpath_query(self, expression: str) -> List[int]:
        """General path query — the capability a document store retains
        that shredded schemes must emulate (§4's XQuery example).  Every
        stored document is parsed and evaluated with the XPath-lite
        engine; returns ids of documents the path selects into."""
        from ..xmlkit import xpath_exists

        return sorted(
            object_id
            for object_id, _name, content in self.documents.scan()
            if xpath_exists(parse(content).root, expression)
        )

    def fetch(self, object_ids: Sequence[int]) -> Dict[int, str]:
        out: Dict[int, str] = {}
        for object_id in object_ids:
            rows = self.documents.lookup(["object_id"], [object_id])
            if not rows:
                raise CatalogError(f"no object {object_id}")
            out[object_id] = rows[0][2]
        return out

    def storage_report(self) -> List[Tuple[str, int, int]]:
        return self.db.storage_report()
