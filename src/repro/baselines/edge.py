"""Edge-table baseline (paper §6: Florescu & Kossmann [17], the
schema-less shredding of [16][18]).

The document is a directed graph: one **edge row per element** —
``(object, node, parent, tag, ordinal)`` — plus typed value tables for
leaf text (a text table and a numeric table, per [17]'s separate value
tables by type).

Attribute queries translate into chains of parent/child probes — the
"self-joins that hinder the edge-table approach".  A dynamic attribute
criterion like ``("grid", "ARPS")`` costs four levels of navigation
(``detailed → enttyp → enttypl/enttypds``) before its elements are even
reached, and nested sub-attribute criteria walk ``attr`` chains level
by level.  Reconstruction rebuilds the element tree node by node (an
"external tagger").

The implementation uses hash indexes for each probe, which is the best
case for the scheme — the measured gap versus the hybrid plan is
therefore conservative.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.definitions import DefinitionRegistry
from ..core.query import AttributeCriteria, ElementCriterion, ObjectQuery, Op
from ..core.schema import AnnotatedSchema, DynamicSpec
from ..errors import CatalogError, QueryError
from ..relational import Database, integer, real, text
from ..xmlkit import Element, parse
from .base import CatalogScheme

NodeKey = Tuple[int, int]  # (object_id, node_id)


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class EdgeCatalog(CatalogScheme):
    """Edge table + typed value tables."""

    name = "edge"

    def __init__(
        self,
        schema: AnnotatedSchema,
        registry: Optional[DefinitionRegistry] = None,
    ) -> None:
        self.schema = schema
        self.registry = registry if registry is not None else DefinitionRegistry(schema)
        self.db = Database("edge")
        self.edges = self.db.create_table(
            "edges",
            [
                integer("object_id", nullable=False),
                integer("node_id", nullable=False),
                integer("parent_id", nullable=False),  # 0 = document root's parent
                text("tag", nullable=False),
                integer("ordinal", nullable=False),
            ],
            primary_key=["object_id", "node_id"],
        )
        self.edges.create_index("edges_by_tag", ["tag"])
        self.edges.create_index("edges_by_parent", ["object_id", "parent_id"])
        self.edges.create_index("edges_by_object", ["object_id"])
        self.values_text = self.db.create_table(
            "values_text",
            [
                integer("object_id", nullable=False),
                integer("node_id", nullable=False),
                text("value", nullable=False),
            ],
            primary_key=["object_id", "node_id"],
        )
        self.values_num = self.db.create_table(
            "values_num",
            [
                integer("object_id", nullable=False),
                integer("node_id", nullable=False),
                real("value", nullable=False),
            ],
            primary_key=["object_id", "node_id"],
        )
        self._next_id = 1

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, document: str, name: str = "") -> int:
        root = parse(document).root
        object_id = self._next_id
        self._next_id += 1
        counter = [0]

        def walk(element: Element, parent_id: int, ordinal: int) -> None:
            counter[0] += 1
            node_id = counter[0]
            self.edges.insert([object_id, node_id, parent_id, element.tag, ordinal])
            kids = element.child_elements()
            if kids:
                for i, kid in enumerate(kids, start=1):
                    walk(kid, node_id, i)
            else:
                value = element.text().strip()
                self.values_text.insert([object_id, node_id, value])
                try:
                    self.values_num.insert([object_id, node_id, float(value)])
                except ValueError:
                    pass

        walk(root, 0, 1)
        return object_id

    # ------------------------------------------------------------------
    # Navigation primitives (each probe models one self-join)
    # ------------------------------------------------------------------
    def _children(self, key: NodeKey, tag: Optional[str] = None) -> List[NodeKey]:
        object_id, node_id = key
        rows = self.edges.lookup(["object_id", "parent_id"], [object_id, node_id])
        if tag is None:
            return [(row[0], row[1]) for row in rows]
        return [(row[0], row[1]) for row in rows if row[3] == tag]

    def _text(self, key: NodeKey) -> Optional[str]:
        rows = self.values_text.lookup(["object_id", "node_id"], list(key))
        return rows[0][2] if rows else None

    def _num(self, key: NodeKey) -> Optional[float]:
        rows = self.values_num.lookup(["object_id", "node_id"], list(key))
        return rows[0][2] if rows else None

    def _nodes_with_tag(self, tag: str) -> List[NodeKey]:
        return [(row[0], row[1]) for row in self.edges.lookup(["tag"], [tag])]

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, query: ObjectQuery) -> List[int]:
        if query.is_empty():
            raise QueryError("query has no attribute criteria")
        result: Optional[set] = None
        for criteria in query.attributes:
            nodes = self._match_attribute(criteria, candidates=None)
            objects = {obj for obj, _node in nodes}
            result = objects if result is None else (result & objects)
            if not result:
                return []
        return sorted(result or set())

    def _match_attribute(
        self,
        criteria: AttributeCriteria,
        candidates: Optional[List[NodeKey]],
    ) -> List[NodeKey]:
        """Nodes satisfying ``criteria``.  ``candidates=None`` means a
        top-level criterion (seed from the tag index)."""
        attr_def = self.registry.lookup_attribute(criteria.name, criteria.source)
        structural = attr_def is None or attr_def.structural
        if structural:
            nodes = (
                self._nodes_with_tag(criteria.name)
                if candidates is None
                else [n for c in candidates for n in self._descendants_with_tag(c, criteria.name)]
            )
            matched = [n for n in nodes if self._elements_match(n, criteria.elements, dynamic=False)]
        else:
            if candidates is None:
                nodes = self._dynamic_candidates(criteria.name, criteria.source)
            else:
                nodes = [
                    n
                    for c in candidates
                    for n in self._dynamic_sub_candidates(c, criteria.name, criteria.source)
                ]
            matched = [n for n in nodes if self._elements_match(n, criteria.elements, dynamic=True)]
        for sub in criteria.sub_attributes:
            surviving = []
            for node in matched:
                if self._match_attribute(sub, candidates=[node]):
                    surviving.append(node)
            matched = surviving
            if not matched:
                break
        return matched

    def _dynamic_candidates(self, name: str, source: str) -> List[NodeKey]:
        """All ``detailed``-style nodes whose entity block names
        (name, source): four navigation levels from the tag index."""
        spec = self._dynamic_spec()
        out = []
        for node in self._nodes_with_tag(spec.entity_tag):
            names = [self._text(k) for k in self._children(node, spec.name_tag)]
            sources = [self._text(k) for k in self._children(node, spec.source_tag)]
            if name in names and source in sources:
                parent = self._parent(node)
                if parent is not None:
                    out.append(parent)
        return out

    def _dynamic_sub_candidates(self, root: NodeKey, name: str, source: str) -> List[NodeKey]:
        """Descendant ``attr`` items (any depth) labelled (name, source):
        one level of self-joins per nesting level walked."""
        spec = self._dynamic_spec()
        out = []
        frontier = self._children(root, spec.item_tag)
        while frontier:
            next_frontier = []
            for item in frontier:
                labels = [self._text(k) for k in self._children(item, spec.label_tag)]
                defs = [self._text(k) for k in self._children(item, spec.defs_tag)]
                if name in labels and source in defs:
                    out.append(item)
                next_frontier.extend(self._children(item, spec.item_tag))
            frontier = next_frontier
        return out

    def _elements_match(
        self, node: NodeKey, criteria: List[ElementCriterion], dynamic: bool
    ) -> bool:
        spec = self._dynamic_spec() if dynamic else None
        for criterion in criteria:
            if dynamic:
                assert spec is not None
                hit = False
                for item in self._children(node, spec.item_tag):
                    labels = [self._text(k) for k in self._children(item, spec.label_tag)]
                    if criterion.name not in labels:
                        continue
                    defs = [self._text(k) for k in self._children(item, spec.defs_tag)]
                    if criterion.source and criterion.source not in defs:
                        continue
                    for value_node in self._children(item, spec.value_tag):
                        if self._value_matches(value_node, criterion):
                            hit = True
                            break
                    if hit:
                        break
                if not hit:
                    return False
            else:
                hit = False
                targets = self._children(node, criterion.name)
                if not targets:
                    # Leaf attribute querying its own value by its name.
                    object_tag_rows = self.edges.lookup(
                        ["object_id", "node_id"], list(node)
                    )
                    if object_tag_rows and object_tag_rows[0][3] == criterion.name:
                        targets = [node]
                for target in targets:
                    if self._value_matches(target, criterion):
                        hit = True
                        break
                if not hit:
                    return False
        return True

    def _value_matches(self, node: NodeKey, criterion: ElementCriterion) -> bool:
        if criterion.op is Op.IN_SET:
            values = list(criterion.value)
            if any(_is_number(v) for v in values):
                actual_num = self._num(node)
                return actual_num is not None and actual_num in {
                    float(v) for v in values
                }
            return criterion.op.matches(self._text(node), {str(v) for v in values})
        if _is_number(criterion.value):
            actual = self._num(node)
            return criterion.op.matches(actual, float(criterion.value))
        return criterion.op.matches(self._text(node), str(criterion.value))

    def _descendants_with_tag(self, root: NodeKey, tag: str) -> List[NodeKey]:
        out = []
        frontier = self._children(root)
        while frontier:
            next_frontier = []
            for node in frontier:
                row = self.edges.lookup(["object_id", "node_id"], list(node))[0]
                if row[3] == tag:
                    out.append(node)
                next_frontier.extend(self._children(node))
            frontier = next_frontier
        return out

    def _parent(self, key: NodeKey) -> Optional[NodeKey]:
        row = self.edges.lookup(["object_id", "node_id"], list(key))
        if not row or row[0][2] == 0:
            return None
        return (key[0], row[0][2])

    def _dynamic_spec(self) -> DynamicSpec:
        for node in self.schema.attributes():
            if node.dynamic is not None:
                return node.dynamic
        raise QueryError("schema has no dynamic attribute section")

    # ------------------------------------------------------------------
    # Reconstruction (external tagger: rebuild the tree node by node)
    # ------------------------------------------------------------------
    def fetch(self, object_ids: Sequence[int]) -> Dict[int, str]:
        out: Dict[int, str] = {}
        for object_id in object_ids:
            rows = self.edges.lookup(["object_id"], [object_id])
            if not rows:
                raise CatalogError(f"no object {object_id}")
            children: Dict[int, List[tuple]] = {}
            for row in rows:
                children.setdefault(row[2], []).append(row)
            for kids in children.values():
                kids.sort(key=lambda r: r[4])

            def build(row: tuple) -> Element:
                node = Element(row[3])
                kid_rows = children.get(row[1], [])
                if kid_rows:
                    for kid in kid_rows:
                        node.append(build(kid))
                else:
                    value = self._text((object_id, row[1]))
                    if value:
                        node.append(value)
                return node

            root_row = children[0][0]
            out[object_id] = build(root_row).to_xml()
        return out

    def storage_report(self) -> List[Tuple[str, int, int]]:
        return self.db.storage_report()
