"""Schema-inlining baseline (paper §6: Shanmugasundaram et al. [14]).

Under **shared inlining**, elements are folded into their parent's
relational table as columns for as long as the schema permits only a
single occurrence; a new table is split off at every set-valued element
(``maxOccurs > 1``) and at every recursion point.  For the LEAD schema
this yields:

* one wide root table with the single-occurrence leaves inlined as
  path-named columns (``data_idinfo_status_progress``, ...);
* one table per repeatable attribute (``theme``, ``place``, ...) and
  per repeatable leaf (``themekey``, ``origin``, ...), with
  parent foreign keys and sibling ordinals;
* the dynamic ``detailed`` section split into a host table (entity
  columns inlined) plus a **self-referencing item table** — the
  recursion cannot be inlined away, so dynamic attribute criteria
  become chains of self-joins, and the dynamic content "would be split
  into numerous tables due to the cardinality issue" exactly as §6
  argues.

Typed shadow columns (numeric leaves get a ``REAL`` column next to the
text) keep value comparisons fair against the hybrid scheme.

Reconstruction joins the tables back and rebuilds the tree in schema
order — inlining stores no total document order ([20]'s criticism; the
per-document ordering costs of fixing that are measured separately in
bench E7).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.definitions import DefinitionRegistry
from ..core.query import AttributeCriteria, ElementCriterion, ObjectQuery
from ..core.schema import AnnotatedSchema, DynamicSpec, SchemaNode, ValueType
from ..errors import CatalogError, QueryError, ShredError
from ..relational import Database, Table, integer, real, text
from ..xmlkit import Element, parse
from .base import CatalogScheme


def _sanitize(tag: str) -> str:
    return tag.replace("-", "_").lower()


class _TableSpec:
    """One generated table: where a schema subtree's rows live."""

    __slots__ = (
        "name", "node", "parent", "columns", "numeric_columns",
        "child_specs", "dynamic", "table",
    )

    def __init__(self, name: str, node: SchemaNode, parent: Optional["_TableSpec"]) -> None:
        self.name = name
        self.node = node
        self.parent = parent
        # schema node -> column name (single-occurrence leaves inlined here)
        self.columns: Dict[int, str] = {}
        self.numeric_columns: Dict[int, str] = {}
        # table-root children split out of this spec's subtree
        self.child_specs: List[_TableSpec] = []
        self.dynamic: Optional[DynamicSpec] = node.dynamic
        self.table: Optional[Table] = None


class InliningCatalog(CatalogScheme):
    """Shared-inlining storage for schema-based metadata documents."""

    name = "inlining"

    def __init__(
        self,
        schema: AnnotatedSchema,
        registry: Optional[DefinitionRegistry] = None,
    ) -> None:
        self.schema = schema
        self.registry = registry if registry is not None else DefinitionRegistry(schema)
        self.db = Database("inlining")
        self._spec_of_node: Dict[int, _TableSpec] = {}
        self._column_of_node: Dict[int, Tuple[_TableSpec, str, Optional[str]]] = {}
        self._item_tables: Dict[str, Table] = {}
        self.root_spec = self._derive(schema.root, None, prefix="")
        self._create_tables()
        self._next_doc = 1
        self._next_row = 1

    # ------------------------------------------------------------------
    # Schema → table derivation
    # ------------------------------------------------------------------
    def _derive(self, node: SchemaNode, parent: Optional[_TableSpec], prefix: str) -> _TableSpec:
        """Create the spec for table-root ``node`` and inline its subtree."""
        name = "t_" + _sanitize(node.tag) if parent is None else (
            parent.name.replace("t_", "t_", 1) + "__" + _sanitize(node.tag)
        )
        spec = _TableSpec(name, node, parent)
        self._spec_of_node[id(node)] = spec
        if parent is not None:
            parent.child_specs.append(spec)
        if node.dynamic is not None:
            # Entity columns inlined; items go to the self-referencing
            # item table created in _create_tables.
            return spec
        if node.is_leaf:
            # Set-valued leaf: one value column.
            column = _sanitize(node.tag)
            spec.columns[id(node)] = column
            if node.value_type in (ValueType.INTEGER, ValueType.FLOAT):
                spec.numeric_columns[id(node)] = column + "_num"
            self._column_of_node[id(node)] = (
                spec, column, spec.numeric_columns.get(id(node))
            )
            return spec
        self._inline(node, spec, prefix)
        return spec

    def _inline(self, node: SchemaNode, spec: _TableSpec, prefix: str) -> None:
        for child in node.children:
            child_prefix = f"{prefix}{_sanitize(child.tag)}"
            if child.repeatable:
                self._derive(child, spec, prefix="")
            elif child.is_leaf:
                column = child_prefix
                spec.columns[id(child)] = column
                if child.value_type in (ValueType.INTEGER, ValueType.FLOAT):
                    spec.numeric_columns[id(child)] = column + "_num"
                self._column_of_node[id(child)] = (
                    spec, column, spec.numeric_columns.get(id(child))
                )
            else:
                if child.dynamic is not None:
                    self._derive(child, spec, prefix="")
                else:
                    self._inline(child, spec, prefix=child_prefix + "_")

    def _create_tables(self) -> None:
        for spec in self._all_specs(self.root_spec):
            columns = [
                integer("row_id", nullable=False),
                integer("doc_id", nullable=False),
                integer("parent_row_id"),
                integer("ordinal", nullable=False),
            ]
            if spec.dynamic is not None:
                columns.append(text("entity_name"))
                columns.append(text("entity_source"))
            for node_key, column in spec.columns.items():
                columns.append(text(column))
                numeric = spec.numeric_columns.get(node_key)
                if numeric:
                    columns.append(real(numeric))
            spec.table = self.db.create_table(spec.name, columns, primary_key=["row_id"])
            spec.table.create_index(spec.name + "_by_doc", ["doc_id"])
            spec.table.create_index(spec.name + "_by_parent", ["parent_row_id"])
            if spec.dynamic is not None:
                spec.table.create_index(
                    spec.name + "_by_entity", ["entity_name", "entity_source"]
                )
                item = self.db.create_table(
                    spec.name + "_item",
                    [
                        integer("row_id", nullable=False),
                        integer("doc_id", nullable=False),
                        integer("host_row_id", nullable=False),
                        integer("parent_item_id"),  # NULL = directly under host
                        text("label", nullable=False),
                        text("defs", nullable=False),
                        text("value"),
                        real("value_num"),
                        integer("ordinal", nullable=False),
                    ],
                    primary_key=["row_id"],
                )
                item.create_index(spec.name + "_item_by_host", ["host_row_id"])
                item.create_index(spec.name + "_item_by_parent", ["parent_item_id"])
                item.create_index(spec.name + "_item_by_label", ["label", "defs"])
                item.create_index(spec.name + "_item_by_doc", ["doc_id"])
                self._item_tables[spec.name] = item

    def _all_specs(self, spec: _TableSpec) -> List[_TableSpec]:
        out = [spec]
        for child in spec.child_specs:
            out.extend(self._all_specs(child))
        return out

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, document: str, name: str = "") -> int:
        root = parse(document).root
        if root.tag != self.schema.root.tag:
            raise ShredError(
                f"document root {root.tag!r} does not match schema root "
                f"{self.schema.root.tag!r}"
            )
        doc_id = self._next_doc
        self._next_doc += 1
        self._store_row(root, self.schema.root, self.root_spec, doc_id, None, 1)
        return doc_id

    def _new_row_id(self) -> int:
        row_id = self._next_row
        self._next_row += 1
        return row_id

    def _store_row(
        self,
        element: Element,
        node: SchemaNode,
        spec: _TableSpec,
        doc_id: int,
        parent_row_id: Optional[int],
        ordinal: int,
    ) -> int:
        """Insert the row for table-root ``element`` and recurse."""
        assert spec.table is not None
        row_id = self._new_row_id()
        values: Dict[str, Any] = {
            "row_id": row_id,
            "doc_id": doc_id,
            "parent_row_id": parent_row_id,
            "ordinal": ordinal,
        }
        if spec.dynamic is not None:
            self._store_dynamic(element, spec, doc_id, row_id, values)
            spec.table.insert_dict(**values)
            return row_id
        if node.is_leaf:
            column = spec.columns[id(node)]
            values[column] = element.text().strip()
            numeric = spec.numeric_columns.get(id(node))
            if numeric:
                values[numeric] = _maybe_float(element.text())
            spec.table.insert_dict(**values)
            return row_id
        pending: List[Tuple[Element, SchemaNode, _TableSpec, int]] = []
        self._collect(element, node, spec, values, pending, doc_id)
        spec.table.insert_dict(**values)
        counters: Dict[str, int] = {}
        for child_el, child_node, child_spec, _depth in pending:
            n = counters.get(child_spec.name, 0) + 1
            counters[child_spec.name] = n
            self._store_row(child_el, child_node, child_spec, doc_id, row_id, n)
        return row_id

    def _collect(
        self,
        element: Element,
        node: SchemaNode,
        spec: _TableSpec,
        values: Dict[str, Any],
        pending: List,
        doc_id: int,
    ) -> None:
        """Fill inlined columns from ``element``'s subtree; queue rows for
        split-off child tables."""
        for child in element.children:
            if isinstance(child, str):
                continue
            child_node = node.find_child(child.tag)
            if child_node is None:
                raise ShredError(
                    f"element <{child.tag}> inside <{element.tag}> is not in "
                    "the schema"
                )
            child_spec = self._spec_of_node.get(id(child_node))
            if child_spec is not None and child_spec is not spec:
                pending.append((child, child_node, child_spec, 0))
                continue
            if child_node.is_leaf:
                column = spec.columns[id(child_node)]
                if values.get(column) is not None:
                    raise ShredError(
                        f"element <{child.tag}> occurs twice but is inlined "
                        "as a single column"
                    )
                values[column] = child.text().strip()
                numeric = spec.numeric_columns.get(id(child_node))
                if numeric:
                    values[numeric] = _maybe_float(child.text())
            else:
                self._collect(child, child_node, spec, values, pending, doc_id)

    def _store_dynamic(
        self,
        element: Element,
        spec: _TableSpec,
        doc_id: int,
        host_row_id: int,
        values: Dict[str, Any],
    ) -> None:
        dynamic = spec.dynamic
        assert dynamic is not None
        entity = element.find(dynamic.entity_tag)
        if entity is not None:
            name_el = entity.find(dynamic.name_tag)
            source_el = entity.find(dynamic.source_tag)
            values["entity_name"] = name_el.text().strip() if name_el is not None else None
            values["entity_source"] = source_el.text().strip() if source_el is not None else None
        item_table = self._item_tables[spec.name]

        def store_items(parent_el: Element, parent_item_id: Optional[int]) -> None:
            for ordinal, item in enumerate(parent_el.find_all(dynamic.item_tag), start=1):
                label_el = item.find(dynamic.label_tag)
                defs_el = item.find(dynamic.defs_tag)
                value_el = item.find(dynamic.value_tag)
                label = label_el.text().strip() if label_el is not None else ""
                defs = defs_el.text().strip() if defs_el is not None else ""
                value = value_el.text().strip() if value_el is not None else None
                row_id = self._new_row_id()
                item_table.insert_dict(
                    row_id=row_id,
                    doc_id=doc_id,
                    host_row_id=host_row_id,
                    parent_item_id=parent_item_id,
                    label=label,
                    defs=defs,
                    value=value,
                    value_num=_maybe_float(value) if value is not None else None,
                    ordinal=ordinal,
                )
                store_items(item, row_id)

        store_items(element, None)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, query: ObjectQuery) -> List[int]:
        if query.is_empty():
            raise QueryError("query has no attribute criteria")
        result: Optional[set] = None
        for criteria in query.attributes:
            objects = self._match_top(criteria)
            result = objects if result is None else (result & objects)
            if not result:
                return []
        return sorted(result or set())

    def _match_top(self, criteria: AttributeCriteria) -> set:
        attr_def = self.registry.lookup_attribute(criteria.name, criteria.source)
        if attr_def is not None and not attr_def.structural:
            return self._match_dynamic(criteria)
        return self._match_structural(criteria)

    # -- structural -----------------------------------------------------
    def _match_structural(self, criteria: AttributeCriteria) -> set:
        node = self._find_schema_node(criteria.name)
        if node is None:
            raise QueryError(f"no schema element {criteria.name!r}")
        rows = self._structural_instance_rows(node, criteria)
        return {values["doc_id"] for values in rows}

    def _structural_instance_rows(
        self, node: SchemaNode, criteria: AttributeCriteria
    ) -> List[Dict[str, Any]]:
        """Rows (as dicts) of instances of ``node`` satisfying the
        criteria (element predicates + nested structural criteria)."""
        spec = self._spec_of_node.get(id(node))
        if spec is not None:
            assert spec.table is not None
            candidates = [dict(zip(spec.table.column_names, row)) for row in spec.table.scan()]
            host_spec = spec
        else:
            # Inlined: instances are rows of the enclosing table, present
            # only when at least one of the node's columns is non-NULL.
            host_spec = self._enclosing_spec(node)
            assert host_spec.table is not None
            present_columns = self._descendant_columns(node, host_spec)
            candidates = []
            for row in host_spec.table.scan():
                values = dict(zip(host_spec.table.column_names, row))
                if any(values.get(c) is not None for c in present_columns):
                    candidates.append(values)
        out = []
        for row in candidates:
            if self._structural_row_matches(row, node, host_spec, criteria):
                out.append(row)
        return out

    def _enclosing_spec(self, node: SchemaNode) -> _TableSpec:
        """The table spec whose rows carry ``node``'s inlined columns."""
        current: Optional[SchemaNode] = node
        while current is not None:
            spec = self._spec_of_node.get(id(current))
            if spec is not None:
                return spec
            current = current.parent
        raise QueryError(f"no table spec covers {node.tag!r}")

    def _descendant_columns(self, node: SchemaNode, spec: _TableSpec) -> List[str]:
        """Inlined columns of ``spec`` belonging to ``node``'s subtree."""
        out = []
        for child in node.iter():
            column = spec.columns.get(id(child))
            if column is not None:
                out.append(column)
        return out

    def _structural_row_matches(
        self,
        row: Dict[str, Any],
        node: SchemaNode,
        host_spec: _TableSpec,
        criteria: AttributeCriteria,
    ) -> bool:
        for criterion in criteria.elements:
            # A leaf attribute carries its own value and is queried by
            # its own name.
            if criterion.name == node.tag and node.is_leaf:
                target = node
            else:
                target = self._find_schema_child(node, criterion.name)
            if target is None:
                raise QueryError(
                    f"no element {criterion.name!r} under {node.tag!r}"
                )
            if not self._element_matches(row, host_spec, target, criterion):
                return False
        for sub in criteria.sub_attributes:
            child_node = self._find_schema_child(node, sub.name)
            if child_node is None:
                raise QueryError(f"no element {sub.name!r} under {node.tag!r}")
            sub_rows = self._structural_instance_rows(child_node, sub)
            # Containment: the sub row's parent chain must reach this row.
            if not any(
                self._row_contains(row, host_spec, sub_row) for sub_row in sub_rows
            ):
                return False
        return True

    def _element_matches(
        self,
        row: Dict[str, Any],
        host_spec: _TableSpec,
        target: SchemaNode,
        criterion: ElementCriterion,
    ) -> bool:
        hit = self._column_of_node.get(id(target))
        if hit is not None:
            spec, column, numeric_column = hit
            if spec is host_spec:
                return _criterion_matches(
                    criterion,
                    row.get(column),
                    row.get(numeric_column) if numeric_column else None,
                )
            # Set-valued leaf in its own table: semi-join on parent row.
            assert spec.table is not None
            child_rows = spec.table.lookup(["parent_row_id"], [row["row_id"]])
            names = spec.table.column_names
            for child in child_rows:
                values = dict(zip(names, child))
                if _criterion_matches(
                    criterion,
                    values.get(column),
                    values.get(numeric_column) if numeric_column else None,
                ):
                    return True
            return False
        raise QueryError(f"element {criterion.name!r} is not an inlined column")

    def _row_contains(
        self, row: Dict[str, Any], host_spec: _TableSpec, sub_row: Dict[str, Any]
    ) -> bool:
        """True if ``sub_row`` (in a descendant table) hangs below ``row``
        via parent_row_id links (joins up the spec chain)."""
        current = sub_row
        while current.get("parent_row_id") is not None:
            if current["parent_row_id"] == row["row_id"]:
                return True
            parent_id = current["parent_row_id"]
            parent_row = self._row_by_id(parent_id)
            if parent_row is None:
                return False
            current = parent_row
        return False

    def _row_by_id(self, row_id: int) -> Optional[Dict[str, Any]]:
        for spec in self._all_specs(self.root_spec):
            assert spec.table is not None
            rows = spec.table.lookup(["row_id"], [row_id])
            if rows:
                return dict(zip(spec.table.column_names, rows[0]))
        return None

    # -- dynamic ----------------------------------------------------------
    def _match_dynamic(self, criteria: AttributeCriteria) -> set:
        matches = set()
        for spec in self._all_specs(self.root_spec):
            if spec.dynamic is None:
                continue
            assert spec.table is not None
            host_rows = spec.table.lookup(
                ["entity_name", "entity_source"], [criteria.name, criteria.source]
            )
            item_table = self._item_tables[spec.name]
            names = item_table.column_names
            for host in host_rows:
                host_values = dict(zip(spec.table.column_names, host))
                if self._dynamic_host_matches(host_values, item_table, names, criteria):
                    matches.add(host_values["doc_id"])
        return matches

    def _dynamic_host_matches(
        self, host: Dict[str, Any], item_table: Table, names, criteria: AttributeCriteria
    ) -> bool:
        direct = [
            dict(zip(names, row))
            for row in item_table.lookup(["host_row_id"], [host["row_id"]])
            if row[3] is None  # parent_item_id
        ]
        return self._dynamic_items_match(direct, item_table, names, criteria)

    def _dynamic_items_match(
        self, direct: List[Dict[str, Any]], item_table: Table, names,
        criteria: AttributeCriteria,
    ) -> bool:
        for criterion in criteria.elements:
            hit = False
            for item in direct:
                if item["label"] != criterion.name:
                    continue
                if criterion.source and item["defs"] != criterion.source:
                    continue
                if _criterion_matches(criterion, item["value"], item["value_num"]):
                    hit = True
                    break
            if not hit:
                return False
        for sub in criteria.sub_attributes:
            # Any-depth search below the direct items: one self-join per
            # level walked.
            if not self._dynamic_sub_matches(direct, item_table, names, sub):
                return False
        return True

    def _dynamic_sub_matches(
        self, candidates: List[Dict[str, Any]], item_table: Table, names,
        criteria: AttributeCriteria,
    ) -> bool:
        """Any-depth search: does an item labelled (name, source) below —
        or among — ``candidates`` satisfy the criteria subtree?"""
        frontier = list(candidates)
        while frontier:
            next_frontier: List[Dict[str, Any]] = []
            for item in frontier:
                children = [
                    dict(zip(names, row))
                    for row in item_table.lookup(["parent_item_id"], [item["row_id"]])
                ]
                if (
                    item["label"] == criteria.name
                    and (not criteria.source or item["defs"] == criteria.source)
                ):
                    if self._dynamic_items_match(children, item_table, names, criteria):
                        return True
                next_frontier.extend(children)
            frontier = next_frontier
        return False

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def fetch(self, object_ids: Sequence[int]) -> Dict[int, str]:
        out: Dict[int, str] = {}
        for doc_id in object_ids:
            assert self.root_spec.table is not None
            rows = self.root_spec.table.lookup(["doc_id"], [doc_id])
            if not rows:
                raise CatalogError(f"no object {doc_id}")
            row = dict(zip(self.root_spec.table.column_names, rows[0]))
            element = self._rebuild(self.schema.root, self.root_spec, row)
            out[doc_id] = element.to_xml()
        return out

    def _rebuild(self, node: SchemaNode, spec: _TableSpec, row: Dict[str, Any]) -> Element:
        if spec.dynamic is not None:
            return self._rebuild_dynamic(node, spec, row)
        element = Element(node.tag)
        if node.is_leaf:
            value = row.get(spec.columns[id(node)])
            if value:
                element.append(value)
            return element
        self._rebuild_children(node, spec, row, element)
        return element

    def _rebuild_children(
        self, node: SchemaNode, spec: _TableSpec, row: Dict[str, Any], parent: Element
    ) -> None:
        for child_node in node.children:
            child_spec = self._spec_of_node.get(id(child_node))
            if child_spec is not None and child_spec is not spec:
                assert child_spec.table is not None
                child_rows = sorted(
                    (
                        dict(zip(child_spec.table.column_names, r))
                        for r in child_spec.table.lookup(["parent_row_id"], [row["row_id"]])
                    ),
                    key=lambda r: r["ordinal"],
                )
                for child_row in child_rows:
                    parent.append(self._rebuild(child_node, child_spec, child_row))
            elif child_node.is_leaf:
                value = row.get(spec.columns[id(child_node)])
                if value is not None:
                    leaf = Element(child_node.tag)
                    if value:
                        leaf.append(value)
                    parent.append(leaf)
            else:
                wrapper = Element(child_node.tag)
                self._rebuild_children(child_node, spec, row, wrapper)
                if wrapper.children:
                    parent.append(wrapper)

    def _rebuild_dynamic(self, node: SchemaNode, spec: _TableSpec, row: Dict[str, Any]) -> Element:
        dynamic = spec.dynamic
        assert dynamic is not None
        element = Element(node.tag)
        if row.get("entity_name") is not None:
            element.append(
                Element(
                    dynamic.entity_tag,
                    children=[
                        Element(dynamic.name_tag, children=[row["entity_name"]]),
                        Element(dynamic.source_tag, children=[row.get("entity_source") or ""]),
                    ],
                )
            )
        item_table = self._item_tables[spec.name]
        names = item_table.column_names
        by_parent: Dict[Optional[int], List[Dict[str, Any]]] = {}
        for r in item_table.lookup(["host_row_id"], [row["row_id"]]):
            values = dict(zip(names, r))
            by_parent.setdefault(values["parent_item_id"], []).append(values)
        for kids in by_parent.values():
            kids.sort(key=lambda v: v["ordinal"])

        def build_item(values: Dict[str, Any]) -> Element:
            item = Element(dynamic.item_tag)
            item.append(Element(dynamic.label_tag, children=[values["label"]]))
            item.append(Element(dynamic.defs_tag, children=[values["defs"]]))
            children = by_parent.get(values["row_id"], [])
            if children:
                for child in children:
                    item.append(build_item(child))
            elif values["value"] is not None:
                item.append(Element(dynamic.value_tag, children=[values["value"]]))
            return item

        for values in by_parent.get(None, []):
            element.append(build_item(values))
        return element

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _find_schema_node(self, tag: str) -> Optional[SchemaNode]:
        for node in self.schema.iter_nodes():
            if node.tag == tag:
                return node
        return None

    def _find_schema_child(self, node: SchemaNode, tag: str) -> Optional[SchemaNode]:
        for child in node.iter():
            if child is not node and child.tag == tag:
                return child
        return None

    def storage_report(self) -> List[Tuple[str, int, int]]:
        return self.db.storage_report()


def _maybe_float(value: Optional[str]) -> Optional[float]:
    if value is None:
        return None
    try:
        return float(value.strip())
    except ValueError:
        return None


def _criterion_matches(criterion: ElementCriterion, text_value, num_value) -> bool:
    """Evaluate one criterion against a (text, numeric-shadow) pair,
    covering IN_SET with mixed value kinds."""
    from ..core.query import Op

    if criterion.op is Op.IN_SET:
        values = list(criterion.value)
        numeric = any(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
        )
        if numeric:
            return num_value is not None and num_value in {float(v) for v in values}
        return criterion.op.matches(text_value, {str(v) for v in values})
    numeric_query = isinstance(criterion.value, (int, float)) and not isinstance(
        criterion.value, bool
    )
    if numeric_query:
        return criterion.op.matches(num_value, float(criterion.value))
    return criterion.op.matches(text_value, str(criterion.value))
