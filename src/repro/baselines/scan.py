"""Direct evaluation of attribute queries over shredded documents.

:func:`evaluate_shredded_query` answers "does this one document match?"
by nested-loop evaluation over a :class:`~repro.core.shredder.ShredResult`
— an algorithm entirely independent of the Fig-4 count-matching plan,
which makes it the correctness oracle for the planner in tests, and the
query path of the CLOB-only baseline (which must parse and interpret
every stored document at query time).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..core.query import QAttr, ShreddedQuery
from ..core.shredder import ShredResult

Instance = Tuple[int, int]  # (attr_def_id, seq)


def evaluate_shredded_query(query: ShreddedQuery, shred: ShredResult) -> bool:
    """True iff the document whose shred is given satisfies ``query``."""
    # Index the document's rows.
    instances_by_def: Dict[int, List[int]] = {}
    for arow in shred.attributes:
        instances_by_def.setdefault(arow.attr_id, []).append(arow.seq_id)
    elements_by_instance: Dict[Instance, List] = {}
    for erow in shred.elements:
        elements_by_instance.setdefault((erow.attr_id, erow.seq_id), []).append(erow)
    # descendant instance -> ancestor instances (distance >= 1)
    ancestors_of: Dict[Instance, Set[Instance]] = {}
    for irow in shred.inverted:
        if irow.distance >= 1:
            ancestors_of.setdefault(
                (irow.desc_attr_id, irow.desc_seq), set()
            ).add((irow.anc_attr_id, irow.anc_seq))

    memo: Dict[int, Set[Instance]] = {}

    def qattr_satisfied_instances(qattr: QAttr) -> Set[Instance]:
        if qattr.qattr_id in memo:
            return memo[qattr.qattr_id]
        candidates = instances_by_def.get(qattr.attr_def_id, [])
        satisfied: Set[Instance] = set()
        criteria = query.elements_of(qattr.qattr_id)
        for seq in candidates:
            instance = (qattr.attr_def_id, seq)
            rows = elements_by_instance.get(instance, [])
            ok = True
            for criterion in criteria:
                if criterion.value_set is not None:
                    expected = criterion.value_set
                else:
                    expected = criterion.value_num if criterion.numeric else criterion.value_text
                hit = False
                for erow in rows:
                    if erow.elem_id != criterion.elem_def_id:
                        continue
                    actual = erow.value_num if criterion.numeric else erow.value_text
                    if criterion.op.matches(actual, expected):
                        hit = True
                        break
                if not hit:
                    ok = False
                    break
            if not ok:
                continue
            # Sub-attribute criteria: each child criterion needs a
            # satisfied descendant instance below this instance.
            for child_id in qattr.child_qattr_ids:
                child = query.qattr(child_id)
                child_ok = qattr_satisfied_instances(child)
                if not any(
                    instance in ancestors_of.get(c, set()) for c in child_ok
                ):
                    ok = False
                    break
            if ok:
                satisfied.add(instance)
        memo[qattr.qattr_id] = satisfied
        return satisfied

    for top_id in query.top_qattr_ids:
        if not qattr_satisfied_instances(query.qattr(top_id)):
            return False
    return True
