"""``repro.bench`` — benchmark harness utilities (S18)."""

from .harness import ALL_SCHEMES, build_schemes, dump_metrics, empty_schemes
from .tables import ResultTable, speedup
from .timing import measure, throughput

__all__ = [
    "ALL_SCHEMES",
    "ResultTable",
    "build_schemes",
    "dump_metrics",
    "empty_schemes",
    "measure",
    "speedup",
    "throughput",
]
