"""Shared benchmark scaffolding: build all four schemes on one corpus.

Every scheme shares the hybrid catalog's definition registry so dynamic
(name, source) resolution is identical across schemes — the comparison
then measures storage architecture, not definition bookkeeping.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Optional, Sequence, Union

from ..baselines import ClobCatalog, EdgeCatalog, HybridScheme, InliningCatalog
from ..baselines.base import CatalogScheme
from ..core.catalog import HybridCatalog
from ..grid.generator import CorpusConfig, LeadCorpusGenerator
from ..grid.leadschema import lead_schema
from ..obs import MetricsRegistry, default_registry, render_json

ALL_SCHEMES = ("hybrid", "inlining", "edge", "clob")


def dump_metrics(
    path: Union[str, pathlib.Path],
    registry: Optional[MetricsRegistry] = None,
) -> pathlib.Path:
    """Write a JSON snapshot of ``registry`` (default: the process
    registry) to ``path`` — benchmarks call this next to their timing
    results so each run records *what the pipeline did* (row counts,
    statement counts, stage sizes) alongside how long it took."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if registry is None:
        registry = default_registry()
    path.write_text(render_json(registry))
    return path


def build_schemes(
    config: CorpusConfig,
    document_count: int,
    schemes: Sequence[str] = ALL_SCHEMES,
) -> Dict[str, CatalogScheme]:
    """Fresh scheme instances loaded with the same generated corpus."""
    generator = LeadCorpusGenerator(config)
    schema = lead_schema()
    catalog = HybridCatalog(schema)
    generator.register_definitions(catalog)
    built: Dict[str, CatalogScheme] = {}
    for name in schemes:
        if name == "hybrid":
            built[name] = HybridScheme(catalog)
        elif name == "inlining":
            built[name] = InliningCatalog(schema, registry=catalog.registry)
        elif name == "edge":
            built[name] = EdgeCatalog(schema, registry=catalog.registry)
        elif name == "clob":
            built[name] = ClobCatalog(schema, registry=catalog.registry)
        else:
            raise ValueError(f"unknown scheme {name!r}")
    documents = list(generator.documents(document_count))
    for scheme in built.values():
        scheme.ingest_many(documents)
    return built


def empty_schemes(
    config: CorpusConfig,
    schemes: Sequence[str] = ALL_SCHEMES,
) -> Dict[str, CatalogScheme]:
    """Scheme instances with definitions registered but no documents
    (ingest benchmarks load them inside the timed region)."""
    generator = LeadCorpusGenerator(config)
    schema = lead_schema()
    catalog = HybridCatalog(schema)
    generator.register_definitions(catalog)
    built: Dict[str, CatalogScheme] = {}
    for name in schemes:
        if name == "hybrid":
            built[name] = HybridScheme(catalog)
        elif name == "inlining":
            built[name] = InliningCatalog(schema, registry=catalog.registry)
        elif name == "edge":
            built[name] = EdgeCatalog(schema, registry=catalog.registry)
        elif name == "clob":
            built[name] = ClobCatalog(schema, registry=catalog.registry)
        else:
            raise ValueError(f"unknown scheme {name!r}")
    return built
