"""Measurement helpers for the comparison tables.

pytest-benchmark times one scheme per bench function; these helpers
time *all* schemes inside a bench so the printed table compares them on
identical inputs, following the guides' rule of measuring rather than
reasoning about relative cost.
"""

from __future__ import annotations

import gc
import time
from typing import Callable, Tuple


def measure(fn: Callable[[], object], repeat: int = 3, number: int = 1) -> Tuple[float, object]:
    """Best-of-``repeat`` wall time of calling ``fn`` ``number`` times.

    Returns ``(seconds_per_call, last_result)``.  GC is disabled during
    timing (collection pauses otherwise dominate sub-millisecond runs).
    """
    best = float("inf")
    result: object = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeat):
            start = time.perf_counter()
            for _ in range(number):
                result = fn()
            elapsed = (time.perf_counter() - start) / number
            if elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, result


def throughput(count: int, seconds: float) -> float:
    """Items per second (0 when the timer underflows)."""
    return count / seconds if seconds > 0 else 0.0
