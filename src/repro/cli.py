"""Command-line interface to a persisted hybrid catalog.

The CLI operates on a sqlite-backed catalog file, so state persists
across invocations (the personal-catalog usage the paper describes).

Commands::

    python -m repro init    --db cat.db [--xsd schema.xsd]
                            [--shards N] [--by-user]
    python -m repro define  --db cat.db NAME SOURCE [--parent NAME]
                            [--element NAME:TYPE ...] [--user USER]
    python -m repro ingest  --db cat.db FILE [FILE ...] [--owner OWNER]
    python -m repro add     --db cat.db ID FRAGMENT_FILE
    python -m repro query   --db cat.db --attr NAME[/SOURCE]
                            [--elem "NAME[/SOURCE] OP VALUE" ...]
                            [--sub NAME[/SOURCE]] [--fetch] [--trace]
                            [--threads N]
    python -m repro explain --db cat.db --attr NAME[/SOURCE]
                            [--elem ...] [--sub ...] [--analyze]
    python -m repro events  --db cat.db [--tail N] [--event NAME] [--json]
    python -m repro top     --db cat.db [--frames N] [--interval SECONDS]
                            [--threads N --attr ... [--elem ...]]
    python -m repro bench   --db cat.db --attr NAME[/SOURCE] [--elem ...]
                            [--threads N] [--repeat R]
    python -m repro fetch   --db cat.db ID [ID ...]
    python -m repro schema  --db cat.db   (or --xsd schema.xsd)
    python -m repro info    --db cat.db
    python -m repro fsck    --db cat.db [--deep]
    python -m repro shard-status --db cat.db
    python -m repro stats   --db cat.db [--format table|json|prom] [--reset]
                            [--threads N]
    python -m repro lint    [--json | --sarif] [--rule ID] [--src DIR]
                            [--fault-tests DIR] [--changed]
                            [--cache-dir DIR] [--no-cache]

Write commands run each logical operation in one explicit transaction
and retry transient sqlite failures (``database is locked``) with
exponential backoff; ``--retry-attempts`` / ``--retry-backoff`` tune
that policy per invocation (the catalog file is shared state, so
another process may hold the write lock).

Observability: every command records metrics (ingest/query timings,
shredder row counts, per-stage plan rows, sqlite statement counts) into
a registry that is persisted as a ``<db>.metrics.json`` sidecar, so
counters accumulate across invocations — ``repro stats`` renders the
accumulated registry, and ``--metrics-json PATH`` on any command dumps
the registry (including that command's contribution) to ``PATH``.
Catalog commands additionally journal structured events (query audits,
slow queries, rollbacks, fault injections, cache invalidations) to a
``<db>.events.jsonl`` sidecar — ``repro events`` tails it, and
``--slow-ms`` on any command sets the slow-query threshold above which
a query lands there with its full per-stage profile embedded.
``repro top`` renders windowed telemetry (QPS, error rate, latency and
lock/pool-wait p95s) sampled live from the registry.

Query criteria syntax: ``--attr`` starts a top-level attribute
criterion; subsequent ``--elem`` comparisons attach to the most recent
``--attr``/``--sub``; ``--sub`` opens a sub-attribute criterion under
the current top attribute.  Operators: ``= != < <= > >= contains``.

By default the catalog uses the LEAD schema of the paper's Figure 2;
pass ``--xsd`` at ``init`` to use any annotated schema (the file's text
is stored next to the catalog as ``<db>.xsd`` and reloaded on later
commands).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from .backends import SqliteHybridStore
from .core import (
    AttributeCriteria,
    HybridCatalog,
    ObjectQuery,
    Op,
    PlanTrace,
    ValueType,
    load_xsd,
)
from .errors import ReproError
from .faults import DEFAULT_RETRY, RetryPolicy
from .grid import MyLeadService, lead_schema
from .obs import (
    EventLog,
    MetricsRegistry,
    SeriesCollector,
    load_snapshot,
    render_json,
    render_prometheus,
    render_table,
    tail_events,
)
from .server import CatalogServer, ServerConfig
from .sharding import (
    ShardedCatalog,
    Topology,
    check_sharded_catalog,
    read_topology,
    router_for,
    topology_sidecar,
    write_topology,
)

_OPS = {
    "=": Op.EQ, "==": Op.EQ, "!=": Op.NE, "<": Op.LT, "<=": Op.LE,
    ">": Op.GT, ">=": Op.GE, "contains": Op.CONTAINS,
}


class PipeSafeWriter:
    """Stdout writer for streaming commands (``events``, ``top``,
    ``search``, ``fetch``, ``query --fetch``) that goes permanently
    quiet once the consumer closes the pipe: ``repro search | head``
    must end the stream, not traceback.  The first ``EPIPE`` flips
    :attr:`closed` (commands use it to stop producing) and points the
    dangling stdout fd at devnull so the interpreter's exit flush
    cannot raise again."""

    def __init__(self) -> None:
        self.closed = False

    def line(self, text: str = "") -> bool:
        """Print ``text`` plus newline; False once the pipe is gone."""
        return self._emit(text + "\n")

    def write(self, text: str) -> bool:
        """Print ``text`` exactly as given; False once the pipe is gone."""
        return self._emit(text)

    def _emit(self, text: str) -> bool:
        if self.closed:
            return False
        try:
            sys.stdout.write(text)
            return True
        except BrokenPipeError:
            self.quiet()
            return False

    def quiet(self) -> None:
        """Hand stdout to devnull after a broken pipe."""
        self.closed = True
        import os

        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:  # pragma: no cover - nothing left to protect
            pass

_TYPES = {
    "string": ValueType.STRING, "int": ValueType.INTEGER,
    "integer": ValueType.INTEGER, "float": ValueType.FLOAT,
    "date": ValueType.DATE,
}


def _schema_for(db_path: str, xsd: Optional[str]):
    """The schema for a catalog: explicit --xsd, the sidecar saved at
    init, or the built-in LEAD schema."""
    if xsd:
        return load_xsd(pathlib.Path(xsd).read_text(), name=pathlib.Path(xsd).stem)
    sidecar = pathlib.Path(db_path + ".xsd")
    if sidecar.exists():
        return load_xsd(sidecar.read_text(), name="catalog-schema")
    return lead_schema()


def _open(db_path: str, registry: MetricsRegistry,
          xsd: Optional[str] = None,
          events: Optional[EventLog] = None,
          slow_threshold: Optional[float] = None):
    """Open the catalog at ``db_path`` — a :class:`ShardedCatalog`
    when the ``<db>.shards.json`` topology sidecar says the path is a
    federation, a plain :class:`HybridCatalog` otherwise.  The event
    log and slow-query threshold apply to the single-catalog layout
    only (the federated query path has no per-query audit surface
    yet)."""
    topology = read_topology(db_path)
    if topology is not None:
        return ShardedCatalog(
            _schema_for(db_path, xsd),
            shards=topology.shards,
            path=db_path,
            router=router_for(topology.router, topology.shards),
            metrics=registry,
        )
    return HybridCatalog(
        _schema_for(db_path, xsd),
        store=SqliteHybridStore(db_path),
        metrics=registry,
        events=events,
        slow_query_threshold=slow_threshold,
    )


def _metrics_sidecar(db_path: str) -> pathlib.Path:
    return pathlib.Path(db_path + ".metrics.json")


def _events_sidecar(db_path: str) -> pathlib.Path:
    return pathlib.Path(db_path + ".events.jsonl")


def _cli_retry_policy(args) -> RetryPolicy:
    """The store retry policy from ``--retry-attempts``/``--retry-backoff``,
    keeping the defaults for whichever knob was not given."""
    return RetryPolicy(
        max_attempts=(
            args.retry_attempts
            if args.retry_attempts is not None
            else DEFAULT_RETRY.max_attempts
        ),
        base_delay=(
            args.retry_backoff
            if args.retry_backoff is not None
            else DEFAULT_RETRY.base_delay
        ),
    )


def _split_name(token: str):
    if "/" in token:
        name, source = token.split("/", 1)
        return name, source
    return token, ""


def _parse_elem(token: str):
    """``NAME[/SOURCE] OP VALUE`` → (name, source, op, value)."""
    parts = token.split(None, 2)
    if len(parts) != 3:
        raise SystemExit(f"bad --elem {token!r}; expected 'name op value'")
    name_token, op_token, raw = parts
    if op_token not in _OPS:
        raise SystemExit(f"bad operator {op_token!r}; one of {sorted(_OPS)}")
    name, source = _split_name(name_token)
    value: object = raw
    try:
        value = int(raw)
    except ValueError:
        try:
            value = float(raw)
        except ValueError:
            pass
    return name, source, _OPS[op_token], value


def _build_query(attrs: List[str], elems: List[str], subs: List[str],
                 order: List[str]) -> ObjectQuery:
    """Rebuild the criteria tree from the flag sequence (``order`` holds
    the flags in command-line order so --elem binds to the nearest
    preceding --attr/--sub)."""
    query = ObjectQuery()
    current_top: Optional[AttributeCriteria] = None
    current: Optional[AttributeCriteria] = None
    attr_iter, elem_iter, sub_iter = iter(attrs), iter(elems), iter(subs)
    for kind in order:
        if kind == "attr":
            name, source = _split_name(next(attr_iter))
            current_top = AttributeCriteria(name, source)
            current = current_top
            query.add_attribute(current_top)
        elif kind == "sub":
            if current_top is None:
                raise SystemExit("--sub before any --attr")
            name, source = _split_name(next(sub_iter))
            sub = AttributeCriteria(name, source or current_top.source)
            current_top.add_attribute(sub)
            current = sub
        else:  # elem
            if current is None:
                raise SystemExit("--elem before any --attr")
            name, source, op, value = _parse_elem(next(elem_iter))
            current.add_element(name, source or None, value, op)
    if query.is_empty():
        raise SystemExit("query needs at least one --attr")
    return query


def _run_threaded_queries(catalog, query, user, threads, repeat, use_cache):
    """Run ``query`` ``repeat`` times on each of ``threads`` reader
    threads (started together on a barrier); returns
    ``(per-query latencies, any_mismatch, reference_ids, wall_seconds)``.
    ``use_cache=False`` passes a fresh trace per call, which bypasses
    the result cache so every call executes the plan."""
    import threading
    import time as _time

    reference = catalog.query(query, user=user)  # serial reference + warmup
    latencies: List[List[float]] = [[] for _ in range(threads)]
    mismatches = [False] * threads
    barrier = threading.Barrier(threads)

    def worker(slot: int) -> None:
        mine = latencies[slot]
        barrier.wait()
        for _ in range(repeat):
            trace = None if use_cache else PlanTrace()
            start = _time.perf_counter()
            ids = catalog.query(query, user=user, trace=trace)
            mine.append(_time.perf_counter() - start)
            if ids != reference:
                mismatches[slot] = True

    pool = [
        threading.Thread(target=worker, args=(slot,), daemon=True)
        for slot in range(threads)
    ]
    wall = _time.perf_counter()
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    wall = _time.perf_counter() - wall
    flat = sorted(lat for per in latencies for lat in per)
    return flat, any(mismatches), reference, wall


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


class _OrderedFlag(argparse.Action):
    """Records flag order so criteria rebuild correctly."""

    def __call__(self, parser, namespace, values, option_string=None):
        getattr(namespace, self.dest).append(values)
        namespace.flag_order.append(self.dest[:-1] if self.dest.endswith("s") else self.dest)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Hybrid XML-relational metadata catalog"
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="dump the metrics registry as JSON to PATH after the command",
    )
    common.add_argument(
        "--retry-attempts", type=int, default=None, metavar="N",
        help="max attempts for a write transaction hitting a transient "
             f"sqlite error (default: {DEFAULT_RETRY.max_attempts})",
    )
    common.add_argument(
        "--retry-backoff", type=float, default=None, metavar="SECONDS",
        help="initial backoff before a retry, doubled per attempt "
             f"(default: {DEFAULT_RETRY.base_delay})",
    )
    common.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="slow-query threshold in milliseconds; queries above it "
             "land in the <db>.events.jsonl sidecar with their full "
             "per-stage profile embedded",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name, **kwargs):
        return sub.add_parser(name, parents=[common], **kwargs)

    p = add_parser("init", help="create a new catalog file")
    p.add_argument("--db", required=True)
    p.add_argument("--xsd", help="annotated schema (defaults to the LEAD schema)")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="partition the catalog across N sqlite databases "
                        "(<db>.shard0 .. <db>.shard<N-1>) federated by "
                        "scatter-gather queries (default: 1 = unsharded)")
    p.add_argument("--by-user", action="store_true",
                   help="route objects to shards by owner instead of "
                        "hashed object id (one user's objects colocate)")

    p = add_parser("define", help="register a dynamic attribute definition")
    p.add_argument("--db", required=True)
    p.add_argument("name")
    p.add_argument("source")
    p.add_argument("--parent", help="parent attribute NAME (same source)")
    p.add_argument("--host", default=None, help="dynamic schema node tag")
    p.add_argument("--element", action="append", default=[],
                   metavar="NAME:TYPE", help="element definition(s)")
    p.add_argument("--user", default=None)

    p = add_parser("ingest", help="ingest metadata documents")
    p.add_argument("--db", required=True)
    p.add_argument("files", nargs="+")
    p.add_argument("--owner", default="")
    p.add_argument("--user", default=None)

    p = add_parser("add", help="add an attribute fragment to an object")
    p.add_argument("--db", required=True)
    p.add_argument("object_id", type=int)
    p.add_argument("fragment", help="file holding one attribute element")

    p = add_parser("query", help="find objects by attribute criteria")
    p.add_argument("--db", required=True)
    p.add_argument("--attr", dest="attrs", action=_OrderedFlag, default=[])
    p.add_argument("--elem", dest="elems", action=_OrderedFlag, default=[])
    p.add_argument("--sub", dest="subs", action=_OrderedFlag, default=[])
    p.add_argument("--fetch", action="store_true", help="print matching XML")
    p.add_argument("--trace", action="store_true", help="print the plan trace")
    p.add_argument("--threads", type=int, default=1, metavar="N",
                   help="also run the query concurrently from N reader "
                        "threads and verify every thread saw the same result")
    p.add_argument("--user", default=None)
    p.set_defaults(flag_order=[])

    p = add_parser(
        "explain",
        help="show the optimized logical plan for a query "
             "(selectivity-ordered stages, estimated vs actual rows)",
    )
    p.add_argument("--db", required=True)
    p.add_argument("--attr", dest="attrs", action=_OrderedFlag, default=[])
    p.add_argument("--elem", dest="elems", action=_OrderedFlag, default=[])
    p.add_argument("--sub", dest="subs", action=_OrderedFlag, default=[])
    p.add_argument("--analyze", action="store_true",
                   help="also profile the execution: per-stage wall "
                        "time, rows in/out, estimated-vs-actual deltas, "
                        "lock/pool wait breakdown")
    p.add_argument("--user", default=None)
    p.set_defaults(flag_order=[])

    p = add_parser("events", help="tail the catalog's structured event log")
    p.add_argument("--db", required=True)
    p.add_argument("--tail", type=int, default=10, metavar="N",
                   help="show the last N records (default: 10)")
    p.add_argument("--event", default=None, metavar="NAME",
                   help="only records of this event type")
    p.add_argument("--json", action="store_true", dest="json_output",
                   help="print raw repro.events/v1 envelopes")

    p = add_parser(
        "top",
        help="live windowed telemetry: per-interval QPS, error rate, "
             "and query/lock/pool p95s sampled from the registry",
    )
    p.add_argument("--db", required=True)
    p.add_argument("--frames", type=int, default=5, metavar="N",
                   help="telemetry frames to render (default: 5)")
    p.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                   help="seconds between frames (default: 1.0)")
    p.add_argument("--attr", dest="attrs", action=_OrderedFlag, default=[])
    p.add_argument("--elem", dest="elems", action=_OrderedFlag, default=[])
    p.add_argument("--sub", dest="subs", action=_OrderedFlag, default=[])
    p.add_argument("--threads", type=int, default=0, metavar="N",
                   help="run N loader threads repeating the --attr/--elem "
                        "query while sampling (default: 0 = observe only)")
    p.add_argument("--user", default=None)
    p.set_defaults(flag_order=[])

    p = add_parser(
        "bench",
        help="measure read throughput for one query "
             "(N reader threads, p50/p95 latency, aggregate QPS)",
    )
    p.add_argument("--db", required=True)
    p.add_argument("--attr", dest="attrs", action=_OrderedFlag, default=[])
    p.add_argument("--elem", dest="elems", action=_OrderedFlag, default=[])
    p.add_argument("--sub", dest="subs", action=_OrderedFlag, default=[])
    p.add_argument("--threads", type=int, default=1, metavar="N",
                   help="concurrent reader threads (default: 1)")
    p.add_argument("--repeat", type=int, default=50, metavar="R",
                   help="queries per thread (default: 50)")
    p.add_argument("--no-result-cache", action="store_true",
                   help="measure plan execution instead of cache hits")
    p.add_argument("--user", default=None)
    p.set_defaults(flag_order=[])

    p = add_parser("fetch", help="reconstruct objects as XML")
    p.add_argument("--db", required=True)
    p.add_argument("ids", type=int, nargs="+")

    p = add_parser(
        "search",
        help="query and stream matching objects' XML to stdout "
             "(paginated; pipe-safe, so `repro search | head` just works)",
    )
    p.add_argument("--db", required=True)
    p.add_argument("--attr", dest="attrs", action=_OrderedFlag, default=[])
    p.add_argument("--elem", dest="elems", action=_OrderedFlag, default=[])
    p.add_argument("--sub", dest="subs", action=_OrderedFlag, default=[])
    p.add_argument("--offset", type=int, default=0, metavar="N",
                   help="skip the first N matches (default: 0)")
    p.add_argument("--limit", type=int, default=None, metavar="N",
                   help="stream at most N matches (default: all)")
    p.add_argument("--user", default=None)
    p.set_defaults(flag_order=[])

    p = add_parser(
        "serve",
        help="serve the catalog over HTTP: a threaded multi-user "
             "myLEAD front-end with session auth, per-user rate "
             "limits, and streamed paginated search",
    )
    p.add_argument("--db", required=True)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8917,
                   help="listen port; 0 picks an ephemeral port "
                        "(default: 8917)")
    p.add_argument("--rate", type=float, default=None, metavar="R",
                   help="per-user rate limit in requests/second "
                        "(default: unlimited)")
    p.add_argument("--burst", type=float, default=None, metavar="B",
                   help="rate-limit burst size (default: R)")
    p.add_argument("--session-ttl", type=float, default=None,
                   metavar="SECONDS",
                   help="idle session expiry (default: never)")
    p.add_argument("--slow-request-ms", type=float, default=None,
                   metavar="MS",
                   help="requests slower than MS land in the event-log "
                        "sidecar as slow_request events")
    p.add_argument("--page-limit", type=int, default=None, metavar="N",
                   help="default search page size when the client "
                        "sends no limit (default: whole result set)")

    p = add_parser("schema", help="print the annotated schema")
    p.add_argument("--db")
    p.add_argument("--xsd")

    p = add_parser("info", help="catalog statistics")
    p.add_argument("--db", required=True)

    p = add_parser("fsck", help="check catalog integrity")
    p.add_argument("--db", required=True)
    p.add_argument("--deep", action="store_true",
                   help="also parse every stored CLOB")

    p = add_parser("shard-status",
                   help="per-shard layout of a sharded catalog "
                        "(router, objects, bytes per shard)")
    p.add_argument("--db", required=True)

    p = add_parser("stats", help="show accumulated catalog metrics")
    p.add_argument("--db", required=True)
    p.add_argument("--format", choices=("table", "json", "prom"),
                   default="table", help="output format (default: table)")
    p.add_argument("--reset", action="store_true",
                   help="clear the accumulated metrics after printing")
    p.add_argument("--threads", type=int, default=1, metavar="N",
                   help="probe the live catalog first: collect N "
                        "concurrent statistics snapshots and require "
                        "them to be identical (default: 1 = skip)")
    p.add_argument("--storage", action="store_true",
                   help="also print per-table storage accounting, with "
                        "the per-column byte breakdown on columnar "
                        "(memory) backends")

    p = add_parser(
        "lint",
        help="run the repo's static-analysis rules "
             "(transaction safety, fault-site coverage, metric naming, "
             "plan purity, stage-surface mirroring, backend parity, "
             "lock discipline, guarded fields, resource lifecycle, "
             "SQL construction safety)",
    )
    p.add_argument("--json", action="store_true", dest="json_output",
                   help="emit the machine-readable report (repro.lint/v1)")
    p.add_argument("--sarif", action="store_true",
                   help="emit a SARIF 2.1.0 report (CI code-scanning "
                        "upload); wins over --json")
    p.add_argument("--rule", action="append", default=None, metavar="ID",
                   help="run only this rule (repeatable; e.g. TXN01)")
    p.add_argument("--src", default=None, metavar="DIR",
                   help="source tree to lint (default: the installed "
                        "repro package)")
    p.add_argument("--fault-tests", default=None, metavar="DIR",
                   help="fault-sweep test directory for FLT01 coverage "
                        "(default: ./tests/faults when present)")
    p.add_argument("--changed", action="store_true",
                   help="report findings only for files in "
                        "git diff --name-only HEAD; whole-program facts "
                        "still come from the full tree")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="findings cache directory (default: "
                        ".repro-lint-cache); a warm run with unchanged "
                        "sources replays cached findings")
    p.add_argument("--no-cache", action="store_true",
                   help="neither read nor write the findings cache")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # ``repro events | head`` closing the pipe early is not an
        # error; hand the dangling stdout to devnull so the interpreter
        # does not complain again at shutdown.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(args) -> int:
    """Set up the invocation's metrics registry (seeded from the
    catalog's sidecar so counters accumulate across processes), run the
    command, then persist/dump the registry."""
    registry = MetricsRegistry()
    db = getattr(args, "db", None)
    sidecar = _metrics_sidecar(db) if db else None
    if sidecar is not None and sidecar.exists():
        load_snapshot(registry, sidecar.read_text())
    code = _run_command(args, registry)
    if (
        sidecar is not None
        and args.command != "stats"
        and (pathlib.Path(db).exists() or topology_sidecar(db).exists())
    ):
        sidecar.write_text(render_json(registry))
    metrics_json = getattr(args, "metrics_json", None)
    if metrics_json:
        pathlib.Path(metrics_json).write_text(render_json(registry))
    return code


def _changed_paths(roots) -> "Optional[set]":
    """Display paths under ``roots`` touched per ``git diff --name-only
    HEAD`` (staged + unstaged); ``None`` when git is unavailable."""
    import subprocess

    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    scope = set()
    resolved = [root.resolve() for root in roots]
    for line in diff.splitlines():
        if not line.strip():
            continue
        path = (pathlib.Path(top) / line).resolve()
        for root in resolved:
            try:
                rel = path.relative_to(root)
            except ValueError:
                continue
            scope.add(f"{root.name}/{rel.as_posix()}")
            break
    return scope


def _run_lint_command(args) -> int:
    """``repro lint``: exit 0 when clean, 1 on active findings, 2 on a
    usage error (unknown rule id, missing source tree) or a file that
    does not parse."""
    from .analysis import (
        DEFAULT_CACHE_DIR,
        LintResultCache,
        active,
        content_digest,
        default_rules,
        render_json_report,
        render_sarif_report,
        render_text_report,
        rules_signature,
        run_lint,
        source_texts,
    )

    rules = default_rules()
    if args.rule:
        by_id = {rule.id: rule for rule in rules}
        unknown = [rid for rid in args.rule if rid not in by_id]
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(by_id))})",
                file=sys.stderr,
            )
            return 2
        rules = [by_id[rid] for rid in args.rule]
    src_root = (
        pathlib.Path(args.src)
        if args.src
        else pathlib.Path(__file__).resolve().parent
    )
    if not src_root.is_dir():
        print(f"error: source tree {src_root} does not exist", file=sys.stderr)
        return 2
    if args.fault_tests:
        fault_tests: Optional[pathlib.Path] = pathlib.Path(args.fault_tests)
    else:
        default_ft = pathlib.Path.cwd() / "tests" / "faults"
        fault_tests = default_ft if default_ft.is_dir() else None

    scope = None
    if args.changed:
        roots = [src_root] + ([fault_tests] if fault_tests else [])
        scope = _changed_paths(roots)
        if scope is None:
            print("error: --changed requires a git checkout", file=sys.stderr)
            return 2

    # Content-addressed findings cache: a warm run with unchanged
    # sources replays the stored findings without building a single
    # AST.  ``--changed`` runs report a caller-dependent subset, so
    # they bypass the cache rather than pollute it.
    cache = key = None
    findings = None
    if not args.no_cache and scope is None:
        texts = source_texts(src_root)
        if fault_tests is not None and fault_tests.is_dir():
            texts += source_texts(fault_tests)
        cache = LintResultCache(
            pathlib.Path(args.cache_dir) if args.cache_dir
            else pathlib.Path(DEFAULT_CACHE_DIR)
        )
        key = cache.key_for(content_digest(texts), rules_signature(rules))
        findings = cache.load(key)
    if findings is None:
        findings = run_lint(src_root, fault_tests, rules=rules, scope=scope)
        if cache is not None:
            cache.store(key, findings)

    if args.sarif:
        print(render_sarif_report(findings, rules=rules))
    elif args.json_output:
        print(render_json_report(findings))
    else:
        print(render_text_report(findings))
    live = active(findings)
    if any(f.rule_id == "PARSE" for f in live):
        return 2
    return 1 if live else 0


def _run_events_command(args) -> int:
    """``repro events``: tail the catalog's JSON-lines event sidecar."""
    import json
    import time as _time

    sidecar = _events_sidecar(args.db)
    if not sidecar.exists():
        print("(no events recorded)")
        return 0
    writer = PipeSafeWriter()
    for record in tail_events(sidecar, count=args.tail, event=args.event):
        if writer.closed:
            break
        if args.json_output:
            writer.line(json.dumps(record, sort_keys=True))
            continue
        fields = dict(record.get("fields", {}))
        profile = fields.pop("profile", None)
        parts = [
            f"{key}={fields[key]:.4f}" if isinstance(fields[key], float)
            else f"{key}={fields[key]}"
            for key in sorted(fields)
        ]
        if profile is not None:
            parts.append(f"profile={len(profile.get('stages', []))} stages")
        stamp = _time.strftime(
            "%H:%M:%S", _time.localtime(record.get("ts", 0.0))
        )
        writer.line(f"#{record.get('seq'):>4} {stamp} "
                    f"{record.get('event'):<17} {'  '.join(parts)}")
    return 0


def _run_top_command(args, catalog: HybridCatalog) -> int:
    """``repro top``: sample the windowed series every ``--interval``
    seconds for ``--frames`` frames, optionally generating load."""
    import math
    import threading
    import time as _time

    if args.frames < 1 or args.interval <= 0:
        print("error: --frames must be >= 1 and --interval > 0",
              file=sys.stderr)
        return 1
    collector = SeriesCollector(catalog.metrics)
    collector.sample()  # baseline: rates/p95s need a delta to exist

    stop = threading.Event()
    workers: List = []
    if args.threads > 0:
        query = _build_query(args.attrs, args.elems, args.subs,
                             args.flag_order)

        def load() -> None:
            while not stop.is_set():
                # A fresh trace bypasses the result cache, so every
                # call exercises the plan (and the lock/pool paths).
                catalog.query(query, user=args.user, trace=PlanTrace())

        workers = [
            threading.Thread(target=load, daemon=True)
            for _ in range(args.threads)
        ]
        for worker in workers:
            worker.start()

    def cell(value: Optional[float], scale: float = 1.0) -> str:
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return "-"
        return f"{value * scale:.2f}"

    writer = PipeSafeWriter()
    writer.line(f"{'frame':>5}  {'qps':>8}  {'err/s':>7}  {'q_p95_ms':>9}  "
                f"{'lock_p95_ms':>11}  {'pool_p95_ms':>11}  {'queue':>5}")
    try:
        for frame in range(1, args.frames + 1):
            if writer.closed:
                break  # the consumer hung up; stop sampling early
            _time.sleep(args.interval)
            sampled = collector.sample()
            writer.line(f"{frame:>5}  {cell(sampled.get('qps')):>8}  "
                        f"{cell(sampled.get('error_rate')):>7}  "
                        f"{cell(sampled.get('query_p95'), 1e3):>9}  "
                        f"{cell(sampled.get('lock_wait_p95'), 1e3):>11}  "
                        f"{cell(sampled.get('pool_wait_p95'), 1e3):>11}  "
                        f"{cell(sampled.get('pool_queue_depth')):>5}")
    finally:
        stop.set()
        for worker in workers:
            worker.join(timeout=5.0)
    return 0


def _run_command(args, registry: MetricsRegistry) -> int:
    if args.command == "init":
        if pathlib.Path(args.db).exists() or topology_sidecar(args.db).exists():
            print(f"error: {args.db} already exists", file=sys.stderr)
            return 1
        if args.shards < 1:
            print("error: --shards must be >= 1", file=sys.stderr)
            return 1
        schema = _schema_for(args.db, args.xsd)
        if args.shards > 1 or args.by_user:
            router_kind = "user" if args.by_user else "hash"
            catalog = ShardedCatalog(
                schema,
                shards=args.shards,
                path=args.db,
                router=router_for(router_kind, args.shards),
                metrics=registry,
            )
            catalog.close()
            write_topology(args.db, Topology(args.shards, router_kind))
        else:
            HybridCatalog(schema, store=SqliteHybridStore(args.db), metrics=registry)
        if args.xsd:
            pathlib.Path(args.db + ".xsd").write_text(
                pathlib.Path(args.xsd).read_text()
            )
        layout = (f"{args.shards} shard(s)" if args.shards > 1 or args.by_user
                  else "unsharded")
        print(f"created catalog {args.db} with schema {schema.name!r} "
              f"({schema.max_order()} ordered nodes, {layout})")
        return 0

    if args.command == "schema":
        schema = _schema_for(args.db or "", args.xsd)
        print(schema.describe())
        return 0

    if args.command == "lint":
        return _run_lint_command(args)

    if args.command == "events":
        return _run_events_command(args)

    if args.command == "stats":
        if args.threads > 1:
            # Live concurrency probe: the reader pool must hand every
            # thread a consistent snapshot of the same catalog state.
            import concurrent.futures

            catalog = _open(args.db, registry)
            # A sharded catalog federates the snapshot itself; a plain
            # one exposes it on the store.
            collect = (
                catalog.collect_statistics
                if isinstance(catalog, ShardedCatalog)
                else catalog.store.collect_statistics
            )
            with concurrent.futures.ThreadPoolExecutor(args.threads) as pool:
                snaps = list(pool.map(lambda _i: collect(), range(args.threads)))
            first = snaps[0]
            for snap in snaps[1:]:
                if (snap.objects, snap.elem_rows, snap.elem_distinct,
                        snap.attr_rows) != (first.objects, first.elem_rows,
                                            first.elem_distinct,
                                            first.attr_rows):
                    print("error: concurrent statistics snapshots "
                          "disagreed", file=sys.stderr)
                    return 1
            print(f"{args.threads} concurrent statistics snapshots: "
                  f"identical ({first.objects} objects)")
        if args.storage:
            catalog = _open(args.db, registry)
            print("storage:")
            for name, rows, size in catalog.storage_report():
                print(f"  {name:<16} {rows:>8} rows  {size:>10} bytes")
            # Columnar backends (the memory engine) can account bytes
            # per column; sqlite and sharded catalogs report whole
            # tables only.
            engine = getattr(getattr(catalog, "store", None), "db", None)
            breakdown = getattr(engine, "storage_breakdown", None)
            if breakdown is not None:
                print("columns:")
                for name, cols in sorted(breakdown().items()):
                    for col, size in cols.items():
                        print(f"  {name + '.' + col:<28} {size:>10} bytes")
        if args.format == "json":
            print(render_json(registry))
        elif args.format == "prom":
            print(render_prometheus(registry), end="")
        else:
            rendered = render_table(registry)
            print(rendered if rendered else "(no metrics recorded)")
        if args.reset:
            sidecar = _metrics_sidecar(args.db)
            if sidecar.exists():
                sidecar.unlink()
        return 0

    # Every catalog command journals structured events to the sidecar;
    # --slow-ms (milliseconds) arms per-query profiling so slow queries
    # embed their full profile.
    events = EventLog(_events_sidecar(args.db))
    slow_threshold = (
        args.slow_ms / 1000.0 if args.slow_ms is not None else None
    )
    catalog = _open(args.db, registry, events=events,
                    slow_threshold=slow_threshold)
    if args.retry_attempts is not None or args.retry_backoff is not None:
        try:
            if isinstance(catalog, ShardedCatalog):
                catalog.set_retry_policy(_cli_retry_policy(args))
            else:
                catalog.store.set_retry_policy(_cli_retry_policy(args))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.command == "define":
        host = args.host
        if host is None:
            dynamic = [n.tag for n in catalog.schema.attributes() if n.dynamic]
            if not dynamic:
                print("error: schema has no dynamic attribute section", file=sys.stderr)
                return 1
            host = dynamic[0]
        parent = (
            catalog.registry.lookup_attribute(args.parent, args.source, user=args.user)
            if args.parent
            else None
        )
        if args.parent and parent is None:
            print(f"error: no parent definition {args.parent!r}", file=sys.stderr)
            return 1
        attr_def = catalog.define_attribute(
            args.name, args.source, host=host, parent=parent, user=args.user
        )
        for spec in args.element:
            name, _, type_name = spec.partition(":")
            value_type = _TYPES.get(type_name.lower() or "string")
            if value_type is None:
                print(f"error: unknown type {type_name!r}", file=sys.stderr)
                return 1
            catalog.define_element(attr_def, name, args.source, value_type, user=args.user)
        print(f"defined attribute {args.name}/{args.source} "
              f"(id {attr_def.attr_id}, {len(args.element)} elements)")
        return 0

    if args.command == "ingest":
        for path in args.files:
            text = pathlib.Path(path).read_text()
            receipt = catalog.ingest(text, name=pathlib.Path(path).name,
                                     owner=args.owner, user=args.user)
            status = f"object {receipt.object_id}: {receipt.clob_count} CLOBs, " \
                     f"{receipt.element_count} element rows"
            if receipt.warnings:
                status += f", {len(receipt.warnings)} warnings"
            print(status)
            for warning in receipt.warnings:
                print(f"  warning: {warning}")
        return 0

    if args.command == "add":
        fragment = pathlib.Path(args.fragment).read_text()
        receipt = catalog.add_attribute(args.object_id, fragment)
        print(f"object {args.object_id}: +{receipt.clob_count} CLOB, "
              f"+{receipt.element_count} element rows")
        return 0

    if args.command == "query":
        query = _build_query(args.attrs, args.elems, args.subs, args.flag_order)
        trace = PlanTrace()
        ids = catalog.query(query, user=args.user, trace=trace)
        if args.trace:
            print(trace.describe())
            print()
        if args.threads > 1:
            _lat, mismatch, _ref, _wall = _run_threaded_queries(
                catalog, query, args.user, args.threads, repeat=1, use_cache=True
            )
            if mismatch:
                print(
                    f"error: concurrent readers disagreed across "
                    f"{args.threads} threads",
                    file=sys.stderr,
                )
                return 1
            print(f"{args.threads} concurrent readers: identical results")
        print(f"{len(ids)} matching object(s): {ids}")
        if args.fetch and ids:
            responses = catalog.fetch(ids)
            writer = PipeSafeWriter()
            for object_id in ids:
                if not writer.line(
                    f"--- object {object_id} "
                    f"({catalog.object_name(object_id)})"
                ) or not writer.line(responses[object_id]):
                    break
        return 0

    if args.command == "explain":
        query = _build_query(args.attrs, args.elems, args.subs, args.flag_order)
        explanation = catalog.explain(query, user=args.user,
                                      analyze=args.analyze)
        print(explanation.describe())
        return 0

    if args.command == "top":
        return _run_top_command(args, catalog)

    if args.command == "bench":
        if args.threads < 1 or args.repeat < 1:
            print("error: --threads and --repeat must be >= 1", file=sys.stderr)
            return 1
        query = _build_query(args.attrs, args.elems, args.subs, args.flag_order)
        flat, mismatch, reference, wall = _run_threaded_queries(
            catalog, query, args.user, args.threads, args.repeat,
            use_cache=not args.no_result_cache,
        )
        total = args.threads * args.repeat
        qps = total / wall if wall > 0 else float("inf")
        print(
            f"{total} queries across {args.threads} thread(s), "
            f"{len(reference)} matching object(s) each"
        )
        print(
            f"p50 {1000 * _percentile(flat, 0.50):.3f} ms   "
            f"p95 {1000 * _percentile(flat, 0.95):.3f} ms   "
            f"aggregate {qps:.0f} QPS"
        )
        if mismatch:
            print("error: concurrent readers disagreed", file=sys.stderr)
            return 1
        return 0

    if args.command == "fetch":
        responses = catalog.fetch(args.ids)
        missing = [i for i in args.ids if i not in responses]
        writer = PipeSafeWriter()
        for object_id in args.ids:
            if object_id in responses:
                if not writer.line(responses[object_id]):
                    break
        if missing:
            print(f"error: no objects {missing}", file=sys.stderr)
            return 1
        return 0

    if args.command == "search":
        if args.offset < 0 or (args.limit is not None and args.limit < 0):
            print("error: --offset and --limit must be >= 0",
                  file=sys.stderr)
            return 1
        query = _build_query(args.attrs, args.elems, args.subs,
                             args.flag_order)
        ids = catalog.query(query, user=args.user)
        end = None if args.limit is None else args.offset + args.limit
        page = ids[args.offset:end]
        # The summary goes to stderr so stdout stays pure XML
        # (pipeable into xmllint or head).
        print(f"{len(ids)} matching object(s); streaming {len(page)} "
              f"from offset {args.offset}", file=sys.stderr)
        writer = PipeSafeWriter()
        for start in range(0, len(page), 64):
            chunk = page[start:start + 64]
            responses = catalog.fetch(chunk)
            for object_id in chunk:
                if not writer.write(responses[object_id]):
                    return 0
        return 0

    if args.command == "serve":
        if isinstance(catalog, ShardedCatalog):
            print("error: serve requires an unsharded catalog "
                  "(shard-per-process serving is a roadmap item)",
                  file=sys.stderr)
            return 1
        service = MyLeadService(catalog.schema, catalog)
        config = ServerConfig(
            host=args.host,
            port=args.port,
            rate_limit=args.rate,
            burst=args.burst,
            session_ttl=args.session_ttl,
            slow_request_threshold=(
                args.slow_request_ms / 1000.0
                if args.slow_request_ms is not None else None
            ),
            default_page_limit=args.page_limit,
        )
        server = CatalogServer(service, config)
        # flush=True: the CI smoke test parses the port from this line
        # through a pipe, where stdout is block-buffered.
        print(f"serving catalog {args.db} on {server.url}", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
        print("server stopped")
        return 0

    if args.command == "fsck":
        from .core import check_catalog

        if isinstance(catalog, ShardedCatalog):
            violations = check_sharded_catalog(catalog, deep=args.deep)
            summary = (f"ok: {len(catalog)} objects across "
                       f"{catalog.shard_count} shard(s), no violations")
        else:
            violations = check_catalog(catalog, deep=args.deep)
            summary = f"ok: {len(catalog)} objects, no violations"
        if not violations:
            print(summary)
            return 0
        for violation in violations:
            print(f"violation: {violation}")
        return 1

    if args.command == "shard-status":
        if not isinstance(catalog, ShardedCatalog):
            print(f"{args.db} is not sharded (no topology sidecar)")
            return 0
        print(f"router: {catalog.router.describe()}")
        print(f"{'shard':>5}  {'objects':>8}  {'bytes':>12}  path")
        total_objects = total_bytes = 0
        for index, path, objects, size in catalog.shard_status():
            total_objects += objects
            total_bytes += size
            print(f"{index:>5}  {objects:>8}  {size:>12}  {path or '-'}")
        print(f"{'all':>5}  {total_objects:>8}  {total_bytes:>12}")
        return 0

    if args.command == "info":
        print(f"objects: {len(catalog)}")
        print(f"definitions: {len(catalog.registry)} attributes")
        print("storage:")
        for name, rows, size in catalog.storage_report():
            print(f"  {name:<16} {rows:>8} rows  {size:>10} bytes")
        return 0

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
