"""``repro.core`` — the hybrid XML-relational metadata catalog (S4–S10).

Modules map to the paper's sections:

* :mod:`.schema`, :mod:`.partition` — annotated schema + partition rules (§2)
* :mod:`.ordering` — schema-level global ordering, [19] ablations (§2, §5)
* :mod:`.definitions` — attribute/element definition registry (§2–§3)
* :mod:`.shredder` — hybrid shredding, dynamic attributes (§3)
* :mod:`.query`, :mod:`.logical`, :mod:`.planner` — attribute queries,
  the backend-neutral logical plan IR, and its memory interpreter (§4)
* :mod:`.stats` — selectivity statistics feeding the plan optimizer
* :mod:`.response` — set-based response construction (§5)
* :mod:`.storage`, :mod:`.catalog` — table layout and the public facade
"""

from .builder import AttributeChoice, QueryBuilder
from .bulk import BulkLoader
from .catalog import Explanation, HybridCatalog, IngestReceipt
from .definitions import ADMIN_SCOPE, AttributeDef, DefinitionRegistry, ElementDef
from .logical import (
    AncestorCountMatch,
    DirectCountMatch,
    ElementSeek,
    LogicalPlan,
    ObjectIntersect,
    PlanCache,
    build_plan,
    plan_shape,
)
from .stats import CatalogStatistics, StatsSnapshot
from .ordering import (
    DeweyOrdering,
    GlobalDocumentOrdering,
    LocalOrdering,
    SchemaLevelOrdering,
    ancestor_pairs,
    assign_global_order,
)
from .integrity import check_catalog
from .ontology import Ontology, expand_query
from .partition import validate_partition
from .query import (
    MYCONTAINS,
    MYEQUAL,
    MYGREATER,
    MYGREATEREQUAL,
    MYLESS,
    MYLESSEQUAL,
    MYNOTEQUAL,
    AttributeCriteria,
    ElementCriterion,
    MyAttr,
    MyFile,
    ObjectQuery,
    Op,
    ShreddedQuery,
    shred_query,
)
from .schema import (
    AnnotatedSchema,
    DynamicSpec,
    NodeKind,
    SchemaNode,
    ValueType,
    attribute,
    melement,
    structural,
    sub_attribute,
)
from .shredder import ShredResult, Shredder, infer_value_type
from .translate import query_to_xpath, xpath_matches_document
from .storage import HybridStore, MemoryHybridStore, PlanStage, PlanTrace
from .xsd import load_xsd, schema_to_xsd

__all__ = [
    "ADMIN_SCOPE",
    "AncestorCountMatch",
    "AnnotatedSchema",
    "AttributeChoice",
    "AttributeCriteria",
    "AttributeDef",
    "BulkLoader",
    "CatalogStatistics",
    "DirectCountMatch",
    "ElementSeek",
    "Explanation",
    "LogicalPlan",
    "ObjectIntersect",
    "PlanCache",
    "QueryBuilder",
    "StatsSnapshot",
    "DefinitionRegistry",
    "DeweyOrdering",
    "DynamicSpec",
    "ElementCriterion",
    "ElementDef",
    "GlobalDocumentOrdering",
    "HybridCatalog",
    "HybridStore",
    "IngestReceipt",
    "LocalOrdering",
    "MYCONTAINS",
    "MYEQUAL",
    "MYGREATER",
    "MYGREATEREQUAL",
    "MYLESS",
    "MYLESSEQUAL",
    "MYNOTEQUAL",
    "MemoryHybridStore",
    "MyAttr",
    "MyFile",
    "NodeKind",
    "ObjectQuery",
    "Ontology",
    "Op",
    "PlanStage",
    "PlanTrace",
    "SchemaLevelOrdering",
    "SchemaNode",
    "ShredResult",
    "ShreddedQuery",
    "Shredder",
    "ValueType",
    "ancestor_pairs",
    "assign_global_order",
    "attribute",
    "build_plan",
    "plan_shape",
    "check_catalog",
    "expand_query",
    "infer_value_type",
    "load_xsd",
    "melement",
    "query_to_xpath",
    "schema_to_xsd",
    "xpath_matches_document",
    "shred_query",
    "structural",
    "sub_attribute",
    "validate_partition",
]
