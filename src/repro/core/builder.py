"""Guided query construction (paper §4).

"From a user's perspective ... there is a GUI query tool available that
prompts the user with the available attributes and elements and allows
them to build a query graphically."  This module is the programmatic
equivalent of that tool: it introspects the definition registry to
*offer* what can be queried (respecting user visibility and
queryability), and validates each step as the query is built — so a UI
layered on top never constructs a criterion the catalog would reject.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import QueryError
from .definitions import ADMIN_SCOPE, AttributeDef, DefinitionRegistry
from .query import AttributeCriteria, ObjectQuery, Op
from .schema import ValueType


class AttributeChoice:
    """One offerable attribute: what a picker would display."""

    __slots__ = ("name", "source", "structural", "parent_name", "elements")

    def __init__(self, name: str, source: str, structural: bool,
                 parent_name: Optional[str], elements: List[Tuple[str, str, str]]) -> None:
        self.name = name
        self.source = source
        self.structural = structural
        self.parent_name = parent_name
        #: (element name, element source, value-type name)
        self.elements = elements

    @property
    def label(self) -> str:
        return f"{self.name}/{self.source}" if self.source else self.name

    def __repr__(self) -> str:  # pragma: no cover
        return f"AttributeChoice({self.label!r}, elements={len(self.elements)})"


class QueryBuilder:
    """Stateful, validating builder over one registry + user scope.

    Usage mirrors a UI session::

        builder = QueryBuilder(catalog.registry, user="ann")
        builder.attribute_choices()              # populate the picker
        builder.start("grid", "ARPS")            # open a criterion
        builder.element("dx", 1000, Op.EQ)       # add comparisons
        builder.sub("grid-stretching")           # descend
        builder.element("dzmin", 100)
        builder.up()                             # back to the parent
        query = builder.build()
    """

    def __init__(self, registry: DefinitionRegistry, user: Optional[str] = None) -> None:
        self.registry = registry
        self.user = user
        self._query = ObjectQuery()
        self._stack: List[Tuple[AttributeDef, AttributeCriteria]] = []

    # ------------------------------------------------------------------
    # Introspection ("prompts the user with the available attributes")
    # ------------------------------------------------------------------
    def attribute_choices(self, parent: Optional[AttributeDef] = None) -> List[AttributeChoice]:
        """Queryable attributes the user may pick: top-level ones, or —
        with ``parent`` — its sub-attributes."""
        visible = self.registry.visible_to(self.user)
        out = []
        for attr_def in visible:
            if not attr_def.queryable:
                continue
            if parent is None and attr_def.parent_id is not None:
                continue
            if parent is not None and attr_def.parent_id != parent.attr_id:
                continue
            parent_name = None
            if attr_def.parent_id is not None:
                parent_name = self.registry.attribute(attr_def.parent_id).name
            out.append(
                AttributeChoice(
                    attr_def.name,
                    attr_def.source,
                    attr_def.structural,
                    parent_name,
                    self.element_choices(attr_def),
                )
            )
        out.sort(key=lambda c: (c.source, c.name))
        return out

    def element_choices(self, attr_def: AttributeDef) -> List[Tuple[str, str, str]]:
        """``(name, source, type)`` of the attribute's elements."""
        return sorted(
            (e.name, e.source, e.value_type.value)
            for e in self.registry.elements_of(attr_def)
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def start(self, name: str, source: str = "") -> "QueryBuilder":
        """Open a new top-level attribute criterion."""
        if self._stack:
            raise QueryError(
                "finish the current criterion (up() to the top) before "
                "starting another"
            )
        attr_def = self._resolve(name, source, parent=None)
        criteria = AttributeCriteria(name, source)
        self._query.add_attribute(criteria)
        self._stack.append((attr_def, criteria))
        return self

    def sub(self, name: str, source: Optional[str] = None) -> "QueryBuilder":
        """Descend into a sub-attribute criterion of the current one."""
        if not self._stack:
            raise QueryError("no open criterion; call start() first")
        parent_def, parent_criteria = self._stack[-1]
        source = parent_def.source if source is None else source
        attr_def = self._resolve(name, source, parent=parent_def)
        criteria = AttributeCriteria(name, source)
        parent_criteria.add_attribute(criteria)
        self._stack.append((attr_def, criteria))
        return self

    def element(self, name: str, value, op: Op = Op.EQ,
                source: Optional[str] = None) -> "QueryBuilder":
        """Add a comparison on an element of the current attribute."""
        if not self._stack:
            raise QueryError("no open criterion; call start() first")
        attr_def, criteria = self._stack[-1]
        elem_source = attr_def.source if source is None else source
        elem_def = self.registry.lookup_element(attr_def, name, elem_source)
        if elem_def is None:
            offered = [e[0] for e in self.element_choices(attr_def)]
            raise QueryError(
                f"attribute {attr_def.name!r} has no element {name!r}; "
                f"available: {offered}"
            )
        if (
            elem_def.value_type in (ValueType.INTEGER, ValueType.FLOAT)
            and op is not Op.IN_SET
        ):
            try:
                float(value)
            except (TypeError, ValueError):
                raise QueryError(
                    f"element {name!r} is {elem_def.value_type.value}; "
                    f"{value!r} is not a valid comparison value"
                ) from None
        criteria.add_element(name, elem_source, value, op)
        return self

    def up(self) -> "QueryBuilder":
        """Close the current criterion, returning to its parent."""
        if not self._stack:
            raise QueryError("nothing to close")
        self._stack.pop()
        return self

    def build(self) -> ObjectQuery:
        """The finished query (closes any still-open criteria)."""
        if self._query.is_empty():
            raise QueryError("no criteria were added")
        self._stack.clear()
        return self._query

    # ------------------------------------------------------------------
    def _resolve(self, name: str, source: str, parent: Optional[AttributeDef]) -> AttributeDef:
        attr_def = self.registry.lookup_attribute(name, source, user=self.user, parent=parent)
        if attr_def is None:
            where = f" under {parent.name!r}" if parent else ""
            offered = [c.label for c in self.attribute_choices(parent)]
            raise QueryError(
                f"no queryable attribute ({name!r}, {source!r}){where}; "
                f"available: {offered[:10]}"
            )
        if not attr_def.queryable:
            raise QueryError(f"attribute {name!r} is not queryable")
        scopes = {ADMIN_SCOPE}
        if self.user:
            scopes.add(self.user)
        if attr_def.scope not in scopes:
            raise QueryError(f"attribute {name!r} is private to another user")
        return attr_def
