"""Bulk loading with parallel shredding.

Ingesting a campaign's worth of metadata is shred-dominated (parse +
walk + validate), and shredding is embarrassingly parallel across
documents.  The bulk loader shreds document batches in a process pool —
following the scientific-Python guidance of parallelizing at the
coarsest grain — and then applies the results to the store serially and
in order, so object ids are assigned exactly as sequential ingest would
assign them.

Determinism: ``load()`` produces byte-identical catalog state to a
sequential ``ingest_many`` of the same documents (property-tested).
Workers are seeded with a pickled copy of the shredder; auto-defining
registries (``on_unknown="define"``) are rejected because definitions
created inside a worker would not propagate back.
"""

from __future__ import annotations

import concurrent.futures
import os
import weakref
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Sequence

from ..errors import CatalogError
from ..xmlkit import parse
from .catalog import HybridCatalog, IngestReceipt
from .shredder import ShredResult, Shredder

_WORKER_SHREDDER: Optional[Shredder] = None


def _init_worker(shredder: Shredder) -> None:
    global _WORKER_SHREDDER
    _WORKER_SHREDDER = shredder


def _shred_one(args) -> tuple:
    index, text, user = args
    assert _WORKER_SHREDDER is not None
    # Return the compact tuple form: row instances pickle slowly enough
    # to make result IPC the bottleneck otherwise.
    return _WORKER_SHREDDER.shred(parse(text), user=user).to_payload()


class BulkLoader:
    """Parallel shredding front-end for a :class:`HybridCatalog`.

    The worker pool is created lazily on the first parallel batch and
    **kept warm** across batches (pool startup would otherwise dominate
    campaign-style workloads of many medium batches); call
    :meth:`close` — or use the loader as a context manager — when done.

    Workers snapshot the shredder (and its definition registry) when the
    pool starts: register all definitions *before* the first batch, or
    :meth:`close` and let the next batch restart the pool.
    """

    def __init__(self, catalog: HybridCatalog, processes: Optional[int] = None) -> None:
        if catalog.shredder.on_unknown == "define":
            raise CatalogError(
                "bulk loading requires a pre-registered vocabulary; "
                "on_unknown='define' would create definitions inside "
                "worker processes where the catalog cannot see them"
            )
        self.catalog = catalog
        self.processes = processes if processes is not None else (os.cpu_count() or 1)
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    def __enter__(self) -> "BulkLoader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down.  Safe to call any number of times
        (including on a loader whose pool was never started, and again
        after a previous ``close()``)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.processes,
                initializer=_init_worker,
                initargs=(self.catalog.shredder,),
            )
            self._pool = pool
            # A loader dropped without close() must not leak worker
            # processes; a second shutdown (finalizer after an explicit
            # close) is a no-op.
            weakref.finalize(self, pool.shutdown, wait=False)
        return self._pool

    def shred_batch(
        self, documents: Sequence[str], user: Optional[str] = None
    ) -> List[ShredResult]:
        """Shred ``documents`` (in parallel when processes > 1), results
        in input order.  A document that fails to shred raises here (the
        worker's exception propagates); the pool survives ordinary
        worker exceptions and is discarded only when the pool process
        itself died, so the next batch starts from a healthy pool either
        way."""
        tasks = [(i, text, user) for i, text in enumerate(documents)]
        if self.processes <= 1 or len(documents) < 2:
            shredder = self.catalog.shredder
            return [shredder.shred(parse(text), user=user) for _i, text, _u in tasks]
        pool = self._ensure_pool()
        chunksize = max(1, len(tasks) // (self.processes * 4))
        try:
            payloads = list(pool.map(_shred_one, tasks, chunksize=chunksize))
        except BrokenProcessPool:
            # The worker process died (not a mere exception): this pool
            # can never serve another batch — replace it.
            self.close()
            raise
        return [ShredResult.from_payload(p) for p in payloads]

    def load(
        self,
        documents: Sequence[str],
        owner: str = "",
        user: Optional[str] = None,
        name_prefix: str = "object",
    ) -> List[IngestReceipt]:
        """Shred in parallel, store serially in order; returns receipts
        with the same object ids sequential ingest would assign."""
        shreds = self.shred_batch(documents, user=user)
        receipts: List[IngestReceipt] = []
        for i, shred in enumerate(shreds, start=1):
            object_id = next(self.catalog._object_ids)
            name = f"{name_prefix}-{i}"
            self.catalog.store.store_object(object_id, name, owner, shred)
            self.catalog._names[object_id] = name
            # Keep the statistics (and with them the result-cache
            # invalidation token) current: bulk-loaded rows must retire
            # cached query results exactly like ingest() does.
            self.catalog.stats.record_shred(shred)
            receipts.append(IngestReceipt(object_id, name, shred))
        self.catalog._set_objects_gauge()
        return receipts
