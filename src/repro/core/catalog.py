"""The public catalog facade tying the hybrid pipeline together (Fig 1).

    schema-based XML  →  shred (CLOBs + rows)  →  query on attributes
                                               →  object ids  →  tagged XML

Typical use::

    from repro import HybridCatalog, AttributeCriteria, ObjectQuery, Op
    from repro.grid import lead_schema

    catalog = HybridCatalog(lead_schema())
    receipt = catalog.ingest(xml_text, name="forecast-001", owner="ann")
    query = ObjectQuery().add_attribute(
        AttributeCriteria("theme").add_element("themekey", "", "rain", Op.CONTAINS)
    )
    for xml in catalog.search(query):
        ...

The facade owns the definition registry, the shredder, and a
:class:`~repro.core.storage.HybridStore` backend (in-memory by default;
pass a :class:`repro.backends.sqlite.SqliteHybridStore` for the sqlite
layout).
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import CatalogError
from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.profile import (
    QueryProfile,
    activate,
    collecting,
    current_profile,
    deactivate,
)
from ..obs.tracing import Tracer, default_tracer
from ..xmlkit import Document, parse
from .definitions import AttributeDef, DefinitionRegistry, ElementDef
from .logical import LogicalPlan, PlanCache, build_plan, plan_shape
from .query import ObjectQuery, ShreddedQuery, shred_query
from .result_cache import QueryResultCache, result_key
from .schema import AnnotatedSchema, ValueType
from .shredder import Shredder, ShredResult
from .stats import CatalogStatistics
from .storage import HybridStore, MemoryHybridStore, PlanTrace


class IngestReceipt:
    """What :meth:`HybridCatalog.ingest` returns: the assigned object id
    plus shredding statistics and validation warnings."""

    __slots__ = ("object_id", "name", "warnings", "clob_count", "attribute_count", "element_count")

    def __init__(self, object_id: int, name: str, shred: ShredResult) -> None:
        self.object_id = object_id
        self.name = name
        self.warnings = list(shred.warnings)
        self.clob_count = len(shred.clobs)
        self.attribute_count = len(shred.attributes)
        self.element_count = len(shred.elements)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"IngestReceipt(object_id={self.object_id}, clobs={self.clob_count}, "
            f"attrs={self.attribute_count}, elems={self.element_count}, "
            f"warnings={len(self.warnings)})"
        )


class Explanation:
    """What :meth:`HybridCatalog.explain` returns: the optimized logical
    plan (with per-stage estimates and actual row counts), the matching
    ids, the executed :class:`PlanTrace`, and whether the plan came from
    the cache.  ``explain(..., analyze=True)`` additionally attaches the
    collected :class:`~repro.obs.profile.QueryProfile`."""

    __slots__ = ("plan", "object_ids", "trace", "cache_hit", "profile")

    def __init__(
        self,
        plan: LogicalPlan,
        object_ids: List[int],
        trace: PlanTrace,
        cache_hit: bool,
        profile: Optional[QueryProfile] = None,
    ) -> None:
        self.plan = plan
        self.object_ids = object_ids
        self.trace = trace
        self.cache_hit = cache_hit
        self.profile = profile

    def describe(self) -> str:
        source = "cached" if self.cache_hit else "newly built"
        text = (
            f"{self.plan.describe()}\n"
            f"plan source: {source}; {len(self.object_ids)} matching object(s)"
        )
        if self.profile is not None:
            text += "\n" + self.profile.describe()
        return text


class HybridCatalog:
    """A personal metadata catalog using the hybrid XML-relational scheme."""

    def __init__(
        self,
        schema: AnnotatedSchema,
        store: Optional[HybridStore] = None,
        on_unknown: str = "store",
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        events: Optional[EventLog] = None,
        slow_query_threshold: Optional[float] = None,
    ) -> None:
        self.schema = schema
        # Observability: an explicit registry scopes this catalog's
        # numbers (per-catalog override); otherwise everything lands in
        # the process-global default.  The tracer feeds the same
        # registry so span-duration histograms stay co-located.
        self.metrics = metrics if metrics is not None else default_registry()
        if tracer is not None:
            self.tracer = tracer
        else:
            self.tracer = default_tracer() if metrics is None else Tracer(metrics)
        self.store: HybridStore = store if store is not None else MemoryHybridStore()
        self.store.bind_metrics(self.metrics)
        reopened = self.store.is_initialized()
        if reopened:
            # Reopening a persisted catalog: verify the schema matches
            # and rehydrate definitions + object bookkeeping.
            self.store.attach_schema(schema)
        else:
            self.store.install_schema(schema)
        self.registry = DefinitionRegistry(schema)
        self.shredder = Shredder(
            schema, self.registry, on_unknown=on_unknown, metrics=self.metrics
        )
        # Query planning: selectivity statistics (rebuilt lazily from
        # the store, maintained incrementally on ingest) and the
        # shape-keyed plan cache (entries retire when the statistics
        # generation moves).
        self.stats = CatalogStatistics(self.store)
        self.plan_cache = PlanCache()
        # Query-*result* memoization: fully-bound repeated queries skip
        # execution entirely until any write moves the stats token.
        self.result_cache = QueryResultCache(
            on_invalidate=self._count_result_cache_invalidation
        )
        # Structured event log (query audit, slow queries, rollbacks):
        # optional per-catalog sidecar; ``slow_query_threshold`` is in
        # seconds — queries above it land in the log with their full
        # profile embedded, which forces profile collection per query.
        self.events = events
        self.slow_query_threshold = slow_query_threshold
        if events is not None:
            events.bind_metrics(self.metrics)
            self.store.bind_events(events)
        #: The profile of the most recent profiled query (``repro
        #: explain --analyze`` and ``query(profile=True)`` both land
        #: here too).
        self.last_profile: Optional[QueryProfile] = None
        self._names: Dict[int, str] = {}
        if reopened:
            attr_rows, elem_rows = self.store.load_definition_rows()
            self.registry.rehydrate(attr_rows, elem_rows)
            max_id = 0
            for object_id, name, _owner in self.store.load_objects():
                self._names[object_id] = name
                max_id = max(max_id, object_id)
            self._object_ids = itertools.count(max_id + 1)
        else:
            self._object_ids = itertools.count(1)
        self.store.sync_definitions(self.registry)

    # ------------------------------------------------------------------
    # Shared metric handles (one creation call site per name — OBS01)
    # ------------------------------------------------------------------
    def _set_objects_gauge(self, count: Optional[int] = None) -> None:
        # ``count`` lets a federating facade (repro.sharding) publish
        # the catalog-wide total through the same single creation site.
        self.metrics.gauge(
            "catalog_objects", "objects currently cataloged"
        ).set(len(self._names) if count is None else count)

    def _count_query(self) -> None:
        self.metrics.counter("catalog_queries_total", "queries executed").inc()

    def _count_result_cache_hit(self) -> None:
        self.metrics.counter(
            "query_cache_hits_total",
            "query results served from the result cache",
        ).inc()

    def _count_result_cache_miss(self) -> None:
        self.metrics.counter(
            "query_cache_misses_total",
            "query results computed fresh (result-cache miss)",
        ).inc()

    def _count_result_cache_evictions(self, count: int) -> None:
        self.metrics.counter(
            "query_cache_evictions_total",
            "query results evicted from the result cache (LRU)",
        ).inc(count)

    def _set_result_cache_gauge(self) -> None:
        self.metrics.gauge(
            "query_cache_size", "query results currently cached"
        ).set(len(self.result_cache))

    def _count_result_cache_invalidation(self, cause: str) -> None:
        """Result-cache wipe observer: mirrors the cause into the
        labelled counter and the event log."""
        self.metrics.counter(
            "query_cache_invalidations_total",
            "result-cache wipes by what moved the token",
            labels=("cause",),
        ).labels(cause=cause).inc()
        if self.events is not None:
            self.events.emit("cache_invalidated", cause=cause)

    # ------------------------------------------------------------------
    # Definitions
    # ------------------------------------------------------------------
    def define_attribute(
        self,
        name: str,
        source: str,
        host: str = "detailed",
        parent: Optional[AttributeDef] = None,
        user: Optional[str] = None,
        queryable: bool = True,
    ) -> AttributeDef:
        """Register a dynamic metadata attribute (admin scope when
        ``user`` is None; otherwise private to ``user``)."""
        attr_def = self.registry.define_attribute(
            name, source, host=host, parent=parent, user=user, queryable=queryable
        )
        self.store.sync_definitions(self.registry)
        self.stats.invalidate()
        return attr_def

    def define_element(
        self,
        attribute: AttributeDef,
        name: str,
        source: str,
        value_type: ValueType = ValueType.STRING,
        user: Optional[str] = None,
    ) -> ElementDef:
        elem_def = self.registry.define_element(attribute, name, source, value_type, user=user)
        self.store.sync_definitions(self.registry)
        self.stats.invalidate()
        return elem_def

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(
        self,
        document: Union[str, Document],
        name: Optional[str] = "",
        owner: str = "",
        user: Optional[str] = None,
        object_id: Optional[int] = None,
    ) -> IngestReceipt:
        """Shred and store one metadata document.

        ``document`` may be XML text or a pre-parsed
        :class:`~repro.xmlkit.Document`.  ``user`` scopes dynamic
        definition lookups (and auto-definitions in ``"define"`` mode).
        ``name=None`` auto-names the object ``object-<id>`` from its
        allocated id.  ``object_id`` forces a caller-allocated id
        instead of drawing from this catalog's counter — the sharded
        facade allocates ids globally so hash routing stays
        deterministic.  All writes (definition sync + object rows) are
        one store transaction: a failure anywhere leaves the catalog
        exactly as it was.
        """
        with self.tracer.span("catalog.ingest", object_name=name) as current:
            if isinstance(document, str):
                document = parse(document)
            shred = self.shredder.shred(document, user=user)
            if object_id is None:
                object_id = next(self._object_ids)
            if name is None:
                name = f"object-{object_id}"
                current.set(object_name=name)

            def write() -> None:
                if shred.defined:
                    self.store.sync_definitions(self.registry)
                self.store.store_object(object_id, name, owner, shred)

            self.store.run_transaction("catalog.ingest", write)
            self._names[object_id] = name
            if shred.defined:
                # New definitions were synced: retire cached plans.
                self.stats.invalidate()
            else:
                self.stats.record_shred(shred)
            current.set(object_id=object_id, clobs=len(shred.clobs),
                        warnings=len(shred.warnings))
        self.metrics.counter(
            "catalog_ingests_total", "documents ingested"
        ).inc()
        self._set_objects_gauge()
        return IngestReceipt(object_id, name, shred)

    def ingest_many(
        self,
        documents: Sequence[Union[str, Document]],
        owner: str = "",
        user: Optional[str] = None,
    ) -> List[IngestReceipt]:
        # name=None derives object-<id> from the allocated object id, so
        # names stay unique across calls (a positional counter would
        # restart at 1 every invocation and hand out duplicates).
        return [
            self.ingest(doc, name=None, owner=owner, user=user)
            for doc in documents
        ]

    def delete(self, object_id: int) -> None:
        with self.tracer.span("catalog.delete", object_id=object_id):
            self.store.delete_object(object_id)
            self._names.pop(object_id, None)
            self.stats.invalidate()
        self.metrics.counter("catalog_deletes_total", "objects deleted").inc()
        self._set_objects_gauge()

    # ------------------------------------------------------------------
    # Incremental attribute maintenance (paper §5: "as metadata
    # attributes were inserted later, CLOBs were stored for each
    # metadata attribute along with ... a sequence ID")
    # ------------------------------------------------------------------
    def add_attribute(
        self,
        object_id: int,
        fragment: Union[str, Document],
        user: Optional[str] = None,
    ) -> IngestReceipt:
        """Attach one more metadata-attribute instance to an existing
        object.  ``fragment`` is a single attribute element (e.g. a new
        ``<theme>...</theme>`` or ``<detailed>...</detailed>``); it takes
        the next same-sibling sequence, so no stored key is rewritten —
        the update-cost benefit of schema-level ordering (§2).
        """
        if not self.store.has_object(object_id):
            raise CatalogError(f"no object {object_id}")
        if isinstance(fragment, str):
            fragment = parse(fragment)
        snode = self.schema.attribute_by_tag(fragment.root.tag)
        if snode is None:
            raise CatalogError(
                f"<{fragment.root.tag}> is not a metadata attribute of the schema"
            )
        assert snode.order is not None
        clob_seq = self.store.max_clob_seq(object_id, snode.order) + 1
        shred = self.shredder.shred_attribute_fragment(
            fragment,
            clob_seq=clob_seq,
            seq_base=self.store.instance_counts(object_id),
            user=user,
        )

        def write() -> None:
            if shred.defined:
                self.store.sync_definitions(self.registry)
            self.store.append_rows(object_id, shred)

        self.store.run_transaction("catalog.add_attribute", write)
        if shred.defined:
            self.stats.invalidate()
        else:
            self.stats.record_shred(shred, new_object=False)
        return IngestReceipt(object_id, self.object_name(object_id), shred)

    def remove_attribute(
        self,
        object_id: int,
        name: str,
        source: str = "",
        seq: int = 1,
        user: Optional[str] = None,
    ) -> None:
        """Remove the ``seq``-th instance of a top-level metadata
        attribute (and all its sub-attribute instances) from an object."""
        attr_def = self.registry.lookup_attribute(name, source, user=user)
        if attr_def is None:
            raise CatalogError(f"no attribute definition ({name!r}, {source!r})")
        self.store.remove_attribute_instance(object_id, attr_def.attr_id, seq)
        self.stats.invalidate()

    def object_name(self, object_id: int) -> str:
        try:
            return self._names[object_id]
        except KeyError:
            raise CatalogError(f"no object {object_id}") from None

    def __len__(self) -> int:
        return self.store.object_count()

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(
        self,
        query: ObjectQuery,
        user: Optional[str] = None,
        trace: Optional[PlanTrace] = None,
        profile: bool = False,
    ) -> List[int]:
        """Match objects; returns sorted object ids (paper §4).

        The query is shredded, checked against the write-invalidated
        result cache (plan shape + literals, keyed to the stats token —
        a repeated fully-bound query between writes skips execution
        entirely), then compiled into an optimized
        :class:`~repro.core.logical.LogicalPlan` (or fetched from the
        shape-keyed plan cache) and executed by the bound store.  An
        explicit ``trace`` bypasses the result cache: the caller asked
        to watch the plan actually run.

        ``profile=True`` collects a per-stage
        :class:`~repro.obs.profile.QueryProfile`, left in
        :attr:`last_profile`.  A slow-query threshold (with an event
        log bound) collects one for every query so slow ones can embed
        it; an ambient profile installed by
        :func:`repro.obs.profile.collecting` is used as-is."""
        # A cache hit would otherwise never touch the store: check
        # explicitly so use-after-close raises instead of serving a
        # cached answer from a closed catalog.
        self.store._check_open()
        prof = current_profile()
        if prof is None and (
            profile
            or (self.events is not None
                and self.slow_query_threshold is not None)
        ):
            # Raw activate/deactivate instead of the ``collecting``
            # contextmanager: this is per-query, and the generator
            # frame costs more than the whole profile snapshot.
            prof = QueryProfile()
            token = activate(prof)
            try:
                return self._run_query(query, user, trace, prof)
            finally:
                deactivate(prof, token)
        return self._run_query(query, user, trace, prof)

    def _run_query(
        self,
        query: ObjectQuery,
        user: Optional[str],
        trace: Optional[PlanTrace],
        prof: Optional[QueryProfile],
    ) -> List[int]:
        audit = self.events is not None
        t0 = time.perf_counter() if audit else 0.0
        with self.tracer.span("catalog.query") as current:
            shredded = self.shred_query(query, user=user)
            current.set(
                attribute_criteria=len(shredded.qattrs),
                element_criteria=len(shredded.qelems),
            )
            use_cache = trace is None
            if use_cache:
                # The token is captured *before* execution; a write
                # landing mid-query moves it, and the cache then
                # refuses the stale store() below.
                token = self.stats.cache_token()
                key = result_key(shredded)
                cached = self.result_cache.lookup(key, token)
                if cached is not None:
                    self._count_result_cache_hit()
                    current.set(matches=len(cached), result_cache="hit")
                    self._count_query()
                    if prof is not None:
                        prof.result_cache_hit = True
                        self.last_profile = prof
                    if audit:
                        self._audit_query(shredded, cached, t0, "hit", prof)
                    return cached
                self._count_result_cache_miss()
            plan, plan_hit = self.plan_for(shredded)
            if prof is not None:
                prof.plan_cache_hit = plan_hit
            ids = self.store.match_objects(plan, trace)
            if use_cache:
                evicted = self.result_cache.store(key, token, ids)
                if evicted:
                    self._count_result_cache_evictions(evicted)
                self._set_result_cache_gauge()
            current.set(matches=len(ids))
        self._count_query()
        if prof is not None:
            self.last_profile = prof
        if audit:
            cache = "miss" if use_cache else "bypass"
            self._audit_query(shredded, ids, t0, cache, prof)
        return ids

    def _audit_query(
        self,
        shredded: ShreddedQuery,
        ids: List[int],
        t0: float,
        cache: str,
        prof: Optional[QueryProfile],
    ) -> None:
        """Emit the per-query audit event — and, above the configured
        threshold, a ``slow_query`` record with the profile embedded."""
        assert self.events is not None
        seconds = time.perf_counter() - t0
        self.events.emit(
            "query",
            attrs=len(shredded.qattrs),
            elems=len(shredded.qelems),
            matches=len(ids),
            seconds=seconds,
            cache=cache,
        )
        threshold = self.slow_query_threshold
        if threshold is not None and seconds >= threshold and prof is not None:
            prof.finish()
            self.events.emit(
                "slow_query",
                attrs=len(shredded.qattrs),
                elems=len(shredded.qelems),
                matches=len(ids),
                seconds=seconds,
                threshold=threshold,
                profile=prof.as_dict(),
            )

    def shred_query(self, query: ObjectQuery, user: Optional[str] = None) -> ShreddedQuery:
        """Expose query shredding separately (used by benchmarks and the
        Fig-4 walkthrough example)."""
        return shred_query(query, self.registry, user=user)

    def plan_for(self, shredded: ShreddedQuery) -> Tuple[LogicalPlan, bool]:
        """The optimized logical plan for a shredded query, via the
        shape-keyed cache.  Returns ``(plan, cache_hit)``; the plan is
        always a fresh execution binding (stage objects shared, actuals
        map private), so callers can run it without clobbering the
        cached copy."""
        shape = plan_shape(shredded)
        generation = self.stats.generation
        cached = self.plan_cache.lookup(shape, generation)
        if cached is not None:
            self.metrics.counter(
                "plan_cache_hits_total", "logical plans served from the cache"
            ).inc()
            return cached.rebind(shredded), True
        self.metrics.counter(
            "plan_cache_misses_total", "logical plans built by the optimizer"
        ).inc()
        plan = build_plan(shredded, self.stats)
        self.plan_cache.store(plan)
        self.metrics.gauge(
            "plan_cache_size", "logical plans currently cached"
        ).set(len(self.plan_cache))
        return plan.rebind(shredded), False

    def explain(
        self,
        query: ObjectQuery,
        user: Optional[str] = None,
        analyze: bool = False,
    ) -> Explanation:
        """Optimize and execute ``query``, returning the plan tree with
        the optimizer's row estimates next to the actual per-stage row
        counts (the ``repro explain`` CLI surface).  ``analyze=True``
        additionally collects per-stage wall timings and the wait
        breakdown into :attr:`Explanation.profile` (the
        ``repro explain --analyze`` surface)."""
        prof: Optional[QueryProfile] = None
        with self.tracer.span("catalog.explain"):
            shredded = self.shred_query(query, user=user)
            plan, cache_hit = self.plan_for(shredded)
            trace = PlanTrace()
            if analyze:
                prof = QueryProfile()
                prof.plan_cache_hit = cache_hit
                with collecting(prof):
                    ids = self.store.match_objects(plan, trace)
                self.last_profile = prof
            else:
                ids = self.store.match_objects(plan, trace)
        self._count_query()
        return Explanation(plan, ids, trace, cache_hit, profile=prof)

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    def fetch(self, object_ids: Sequence[int]) -> Dict[int, str]:
        """Rebuild tagged XML responses for ``object_ids`` (paper §5)."""
        with self.tracer.span("catalog.fetch", requested=len(object_ids)):
            return self.store.build_responses(object_ids)

    def search(
        self,
        query: ObjectQuery,
        user: Optional[str] = None,
        trace: Optional[PlanTrace] = None,
    ) -> List[str]:
        """Query and fetch in one call; responses in object-id order."""
        with self.tracer.span("catalog.search"):
            ids = self.query(query, user=user, trace=trace)
            responses = self.fetch(ids)
            return [responses[i] for i in ids]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def storage_report(self) -> List[Tuple[str, int, int]]:
        return self.store.storage_report()
