"""Reader-writer locking for the concurrent read path.

The paper's catalog is a *service*: myLEAD answers attribute queries
for many users behind a grid service, so the stores must stay correct
when reader threads interleave with a writer.  Both backends share one
concurrency contract, built on :class:`RWLock`:

* **writes** (every ``run_transaction`` / ``transaction`` body, begin
  through commit) hold the write lock — transactions stay strictly
  serialized, preserving the S32 single-writer atomicity protocol;
* **reads** hold the read lock — any number of readers run in
  parallel, and never observe a half-applied mutation.

The sqlite backend only routes reads through the lock when they share
the writer's connection (``:memory:`` catalogs); on-disk WAL catalogs
give each reading thread its own pooled connection and rely on WAL
snapshot isolation instead, so reads proceed *during* a write
transaction (see :mod:`repro.backends.pool`).

The lock is write-preferring (a waiting writer blocks new readers, so
a steady read load cannot starve ingest) and reentrant for both modes:
a thread inside its own write transaction may take either lock again
without deadlocking, which is what lets a transaction body call the
store's read surface (``has_object`` inside ``delete_object``).
Lock *upgrading* (read → write) is not supported and deadlocks by
design — acquire the write lock first when a mutation may follow.

An optional ``observer`` callable receives ``(mode, seconds)`` —
``mode`` is ``"read"`` or ``"write"`` — for every acquisition that
actually blocked.  Uncontended acquisitions never touch a clock, so
instrumentation is free on the fast path; the store wires the observer
into the ``rwlock_{reader,writer}_wait_seconds`` histograms and the
active query profile.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

__all__ = ["RWLock"]


class RWLock:
    """A write-preferring, reentrant reader-writer lock."""

    def __init__(
        self,
        observer: Optional[Callable[[str, float], None]] = None,
    ) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: Optional[int] = None  # owning thread id
        self._writer_depth = 0
        self._waiting_writers = 0
        self._local = threading.local()  # per-thread read depth
        self.observer = observer

    # ------------------------------------------------------------------
    def _read_depth(self) -> int:
        return getattr(self._local, "depth", 0)

    def write_held_by_me(self) -> bool:
        """True when the calling thread holds the write lock."""
        return self._writer == threading.get_ident()

    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Shared acquisition; reentrant, and a no-op inside the
        calling thread's own write section."""
        if self.write_held_by_me():
            yield
            return
        if self._read_depth() > 0:
            # Nested read on the same thread: already counted.  Do not
            # touch the condition — a writer queued in between would
            # deadlock a fresh acquisition against our own outer read.
            self._local.depth += 1
            try:
                yield
            finally:
                self._local.depth -= 1
            return
        waited: Optional[float] = None
        with self._cond:
            if self._writer is not None or self._waiting_writers > 0:
                # Contended: time the wait (the clock is only touched
                # on this slow path).
                t0 = time.perf_counter()
                while self._writer is not None or self._waiting_writers > 0:
                    self._cond.wait()
                waited = time.perf_counter() - t0
            self._readers += 1
        if waited is not None and self.observer is not None:
            # Outside the condition lock: the observer may take other
            # locks (histogram, profile) and must not extend ours.
            self.observer("read", waited)
        self._local.depth = 1
        try:
            yield
        finally:
            self._local.depth = 0
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Exclusive acquisition; reentrant on the owning thread."""
        me = threading.get_ident()
        if self._writer == me:
            self._writer_depth += 1
            try:
                yield
            finally:
                self._writer_depth -= 1
            return
        if self._read_depth() > 0:
            raise RuntimeError(
                "read->write lock upgrade would deadlock; acquire the "
                "write lock before reading"
            )
        waited: Optional[float] = None
        with self._cond:
            self._waiting_writers += 1
            try:
                if self._writer is not None or self._readers > 0:
                    t0 = time.perf_counter()
                    while self._writer is not None or self._readers > 0:
                        self._cond.wait()
                    waited = time.perf_counter() - t0
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_depth = 1
        if waited is not None and self.observer is not None:
            self.observer("write", waited)
        try:
            yield
        finally:
            with self._cond:
                self._writer = None
                self._writer_depth = 0
                self._cond.notify_all()
