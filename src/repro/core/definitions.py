"""Attribute and element definitions (paper §2–§3).

The catalog tracks a *definition* for every metadata attribute and
metadata element:

* attribute definitions carry a unique internal id, the schema order of
  the node they shred under, and — for sub-attributes — the parent
  attribute definition id;
* element definitions carry a unique id, the owning attribute
  definition, and a data type.

Structural definitions are derived from the annotated schema (the tag
is the name; no source).  Dynamic definitions are identified by
``(name, source)`` — e.g. ``("grid", "ARPS")`` — so different models
(ARPS, WRF) can define same-named parameters independently.  Dynamic
definitions can be registered at **admin** scope (visible to everyone)
or **user** scope (private to one user), per §3.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import DefinitionError
from .schema import (
    AnnotatedSchema,
    NodeKind,
    SchemaNode,
    ValueType,
)

ADMIN_SCOPE = ""
"""Scope value for administrator-level (public) definitions."""


class AttributeDef:
    """Definition of a metadata attribute or sub-attribute."""

    __slots__ = (
        "attr_id",
        "name",
        "source",
        "parent_id",
        "schema_order",
        "scope",
        "queryable",
        "structural",
    )

    def __init__(
        self,
        attr_id: int,
        name: str,
        source: str,
        parent_id: Optional[int],
        schema_order: int,
        scope: str,
        queryable: bool,
        structural: bool,
    ) -> None:
        self.attr_id = attr_id
        self.name = name
        self.source = source
        self.parent_id = parent_id
        self.schema_order = schema_order
        self.scope = scope
        self.queryable = queryable
        self.structural = structural

    @property
    def is_top_level(self) -> bool:
        return self.parent_id is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        src = f", {self.source!r}" if self.source else ""
        return f"AttributeDef(#{self.attr_id} {self.name!r}{src})"


class ElementDef:
    """Definition of a metadata element, owned by one attribute def."""

    __slots__ = ("elem_id", "attr_id", "name", "source", "value_type", "scope")

    def __init__(
        self,
        elem_id: int,
        attr_id: int,
        name: str,
        source: str,
        value_type: ValueType,
        scope: str,
    ) -> None:
        self.elem_id = elem_id
        self.attr_id = attr_id
        self.name = name
        self.source = source
        self.value_type = value_type
        self.scope = scope

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ElementDef(#{self.elem_id} {self.name!r} of attr {self.attr_id})"


class DefinitionRegistry:
    """All attribute/element definitions known to one catalog.

    Lookup precedence follows §3: a user's private definitions shadow
    nothing — names are unique per ``(name, source, scope)``, and a
    lookup for a user sees admin definitions plus that user's own.
    """

    def __init__(self, schema: AnnotatedSchema) -> None:
        self.schema = schema
        self._attr_defs: Dict[int, AttributeDef] = {}
        self._elem_defs: Dict[int, ElementDef] = {}
        # (name, source, scope) -> AttributeDef
        self._attr_key: Dict[Tuple[str, str, str], AttributeDef] = {}
        # (attr_id, name, source) -> ElementDef
        self._elem_key: Dict[Tuple[int, str, str], ElementDef] = {}
        # schema tag -> structural AttributeDef
        self._structural_by_tag: Dict[str, AttributeDef] = {}
        self._next_attr_id = 1
        self._next_elem_id = 1
        self._register_structural()

    # ------------------------------------------------------------------
    # Structural definitions from the annotated schema
    # ------------------------------------------------------------------
    def _register_structural(self) -> None:
        for node in self.schema.attributes():
            assert node.order is not None
            attr_def = self._new_attribute(
                name=node.tag,
                source="",
                parent_id=None,
                schema_order=node.order,
                scope=ADMIN_SCOPE,
                queryable=node.queryable,
                structural=True,
            )
            self._structural_by_tag[node.tag] = attr_def
            if node.dynamic is None:
                self._register_structural_subtree(node, attr_def)
            if node.is_element:
                # A leaf attribute carries its own value: give it an
                # element definition under the same name.
                self._new_element(
                    attr_def.attr_id, node.tag, "", node.value_type, ADMIN_SCOPE
                )

    def _register_structural_subtree(self, snode: SchemaNode, owner: AttributeDef) -> None:
        for child in snode.children:
            if child.kind is NodeKind.SUB_ATTRIBUTE:
                sub_def = self._new_attribute(
                    name=child.tag,
                    source="",
                    parent_id=owner.attr_id,
                    schema_order=owner.schema_order,
                    scope=ADMIN_SCOPE,
                    queryable=True,
                    structural=True,
                )
                self._register_structural_subtree(child, sub_def)
            elif child.kind is NodeKind.ELEMENT:
                self._new_element(
                    owner.attr_id, child.tag, "", child.value_type, ADMIN_SCOPE
                )

    # ------------------------------------------------------------------
    # Dynamic definitions
    # ------------------------------------------------------------------
    def define_attribute(
        self,
        name: str,
        source: str,
        host: str,
        parent: Optional[AttributeDef] = None,
        user: Optional[str] = None,
        queryable: bool = True,
    ) -> AttributeDef:
        """Register a dynamic attribute (or sub-attribute when ``parent``
        is given) hosted under the dynamic schema node tagged ``host``
        (e.g. ``"detailed"`` in the LEAD schema).

        ``user=None`` registers at administrator scope.
        """
        if not name:
            raise DefinitionError("dynamic attribute needs a non-empty name")
        if not source:
            raise DefinitionError(
                f"dynamic attribute {name!r} needs a source (paper §3: name "
                "and source together identify dynamic definitions)"
            )
        host_node = self.schema.attribute_by_tag(host)
        if host_node is None or host_node.dynamic is None:
            raise DefinitionError(
                f"{host!r} is not a dynamic attribute node of the schema"
            )
        if parent is not None and parent.attr_id not in self._attr_defs:
            raise DefinitionError(f"unknown parent definition {parent!r}")
        assert host_node.order is not None
        return self._new_attribute(
            name=name,
            source=source,
            parent_id=parent.attr_id if parent is not None else None,
            schema_order=host_node.order,
            scope=user or ADMIN_SCOPE,
            queryable=queryable,
            structural=False,
        )

    def define_element(
        self,
        attribute: AttributeDef,
        name: str,
        source: str,
        value_type: ValueType = ValueType.STRING,
        user: Optional[str] = None,
    ) -> ElementDef:
        """Register a dynamic element under ``attribute``."""
        if attribute.attr_id not in self._attr_defs:
            raise DefinitionError(f"unknown attribute definition {attribute!r}")
        return self._new_element(
            attribute.attr_id, name, source, value_type, user or ADMIN_SCOPE
        )

    # ------------------------------------------------------------------
    # Internal constructors
    # ------------------------------------------------------------------
    def _new_attribute(
        self,
        name: str,
        source: str,
        parent_id: Optional[int],
        schema_order: int,
        scope: str,
        queryable: bool,
        structural: bool,
    ) -> AttributeDef:
        key = (name, source, scope)
        if key in self._attr_key:
            existing = self._attr_key[key]
            if existing.parent_id == parent_id:
                raise DefinitionError(
                    f"attribute ({name!r}, {source!r}) already defined in "
                    f"scope {scope!r}"
                )
            # Same (name, source) under a different parent is allowed for
            # sub-attributes (e.g. 'attrlabl'-style names reused across
            # parents) — key them by parent as well.
            key = (name, source, f"{scope}#{parent_id}")
            if key in self._attr_key:
                raise DefinitionError(
                    f"attribute ({name!r}, {source!r}) already defined under "
                    f"parent {parent_id} in scope {scope!r}"
                )
        attr_def = AttributeDef(
            self._next_attr_id, name, source, parent_id, schema_order,
            scope, queryable, structural,
        )
        self._next_attr_id += 1
        self._attr_defs[attr_def.attr_id] = attr_def
        self._attr_key[key] = attr_def
        return attr_def

    def _new_element(
        self,
        attr_id: int,
        name: str,
        source: str,
        value_type: ValueType,
        scope: str,
    ) -> ElementDef:
        key = (attr_id, name, source)
        if key in self._elem_key:
            raise DefinitionError(
                f"element ({name!r}, {source!r}) already defined for "
                f"attribute {attr_id}"
            )
        elem_def = ElementDef(self._next_elem_id, attr_id, name, source, value_type, scope)
        self._next_elem_id += 1
        self._elem_defs[elem_def.elem_id] = elem_def
        self._elem_key[key] = elem_def
        return elem_def

    # ------------------------------------------------------------------
    # Rehydration (reopening a persisted catalog)
    # ------------------------------------------------------------------
    def rehydrate(self, attr_rows, elem_rows) -> None:
        """Replay persisted definition rows into a freshly built registry.

        ``attr_rows`` are ``(attr_id, name, source, parent_id,
        schema_order, scope, queryable, structural)`` and ``elem_rows``
        ``(elem_id, attr_id, name, source, value_type, scope)`` — the
        layouts of the ``attr_defs``/``elem_defs`` tables.  Structural
        rows must match what the schema already produced (they are
        deterministic); dynamic rows are replayed in id order so every
        definition keeps its stored id.

        Raises
        ------
        DefinitionError
            If the stored rows are inconsistent with the schema (e.g.
            the catalog file was created with a different schema).
        """
        for row in sorted(attr_rows):
            attr_id, name, source, parent_id, schema_order, scope, queryable, structural = row
            if structural:
                existing = self._attr_defs.get(attr_id)
                if (
                    existing is None
                    or existing.name != name
                    or existing.source != source
                    or existing.parent_id != parent_id
                    or not existing.structural
                ):
                    raise DefinitionError(
                        f"stored structural definition {attr_id} ({name!r}) "
                        "does not match the schema; was this catalog created "
                        "with a different schema?"
                    )
                continue
            replayed = self._new_attribute(
                name=name,
                source=source,
                parent_id=parent_id,
                schema_order=schema_order,
                scope=scope,
                queryable=bool(queryable),
                structural=False,
            )
            if replayed.attr_id != attr_id:
                raise DefinitionError(
                    f"definition replay drifted: stored id {attr_id}, "
                    f"replayed {replayed.attr_id}"
                )
        for row in sorted(elem_rows):
            elem_id, attr_id, name, source, value_type, scope = row
            existing_elem = self._elem_defs.get(elem_id)
            if existing_elem is not None:
                if (existing_elem.attr_id, existing_elem.name) != (attr_id, name):
                    raise DefinitionError(
                        f"stored element definition {elem_id} ({name!r}) does "
                        "not match the schema"
                    )
                continue
            replayed_elem = self._new_element(
                attr_id, name, source, ValueType(value_type), scope
            )
            if replayed_elem.elem_id != elem_id:
                raise DefinitionError(
                    f"element replay drifted: stored id {elem_id}, replayed "
                    f"{replayed_elem.elem_id}"
                )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def attribute(self, attr_id: int) -> AttributeDef:
        try:
            return self._attr_defs[attr_id]
        except KeyError:
            raise DefinitionError(f"no attribute definition {attr_id}") from None

    def element(self, elem_id: int) -> ElementDef:
        try:
            return self._elem_defs[elem_id]
        except KeyError:
            raise DefinitionError(f"no element definition {elem_id}") from None

    def structural_attribute(self, tag: str) -> Optional[AttributeDef]:
        """The structural definition shredded for schema tag ``tag``."""
        return self._structural_by_tag.get(tag)

    def lookup_attribute(
        self,
        name: str,
        source: str,
        user: Optional[str] = None,
        parent: Optional[AttributeDef] = None,
    ) -> Optional[AttributeDef]:
        """Resolve ``(name, source)`` for ``user``: the user's private
        definition wins over the admin one (paper §3)."""
        scopes = [user, ADMIN_SCOPE] if user else [ADMIN_SCOPE]
        parent_id = parent.attr_id if parent is not None else None
        for scope in scopes:
            if scope is None:
                continue
            hit = self._attr_key.get((name, source, f"{scope}#{parent_id}"))
            if hit is not None:
                return hit
            hit = self._attr_key.get((name, source, scope))
            if hit is not None and (parent is None or hit.parent_id in (None, parent_id)):
                return hit
        return None

    def lookup_element(
        self, attribute: AttributeDef, name: str, source: str
    ) -> Optional[ElementDef]:
        hit = self._elem_key.get((attribute.attr_id, name, source))
        if hit is not None:
            return hit
        # Structural elements are registered without a source; a lookup
        # with a source (from a dynamic-style document section) must not
        # silently fall back, so only the exact key matches.
        return None

    def elements_of(self, attribute: AttributeDef) -> List[ElementDef]:
        return [e for e in self._elem_defs.values() if e.attr_id == attribute.attr_id]

    def children_of(self, attribute: AttributeDef) -> List[AttributeDef]:
        return [a for a in self._attr_defs.values() if a.parent_id == attribute.attr_id]

    def all_attributes(self) -> Iterator[AttributeDef]:
        return iter(self._attr_defs.values())

    def all_elements(self) -> Iterator[ElementDef]:
        return iter(self._elem_defs.values())

    def visible_to(self, user: Optional[str]) -> List[AttributeDef]:
        """Attribute definitions ``user`` may query: admin plus own."""
        scopes = {ADMIN_SCOPE}
        if user:
            scopes.add(user)
        return [a for a in self._attr_defs.values() if a.scope in scopes]

    def __len__(self) -> int:
        return len(self._attr_defs)
