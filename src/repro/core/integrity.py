"""Catalog integrity checking (``fsck`` for the hybrid store).

The hybrid scheme is deliberately redundant — every metadata attribute
exists both as a CLOB and as shredded rows — which means there are
invariants to *check*: the two representations must stay consistent, or
queries and responses silently diverge.  The checker verifies, on
either backend:

* **referential closure** — every row references an existing object;
  attribute/element rows reference existing definitions; element rows
  reference existing attribute instances;
* **dual-storage consistency** — every top-level attribute instance has
  its CLOB (and vice versa), keyed by the schema-level global ordering;
* **inverted-list soundness** — a distance-0 self row per instance,
  endpoints that exist, and transitive closure (a→b at *m* and b→c at
  *n* implies a→c at *m + n*);
* **CLOB well-formedness** — stored CLOBs parse as XML fragments whose
  root tag matches their schema node (optional, ``deep=True``).

``check_catalog`` returns a list of human-readable violations (empty =
healthy); it never mutates the store.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import SchemaError
from ..identifiers import quote_identifier
from ..xmlkit import XMLSyntaxError, parse_fragment
from .catalog import HybridCatalog

Violation = str


def check_catalog(catalog: HybridCatalog, deep: bool = False) -> List[Violation]:
    """Run every integrity check; returns violations (empty = healthy)."""
    store = catalog.store
    tables = {
        name: _rows(store, name)
        for name in (
            "objects", "clobs", "attributes", "elements",
            "attr_ancestors", "schema_order", "attr_defs", "elem_defs",
        )
    }
    violations: List[Violation] = []
    violations += _check_objects(tables)
    violations += _check_definitions(tables)
    violations += _check_dual_storage(tables)
    violations += _check_elements(tables)
    violations += _check_inverted(tables)
    if deep:
        violations += _check_clob_xml(tables, catalog)
    return violations


def _rows(store, name: str) -> List[tuple]:
    """Raw rows of a catalog table from either backend."""
    if hasattr(store, "db"):  # MemoryHybridStore
        return store.db.table(name).rows()
    return store.connection.execute(
        f"SELECT * FROM {quote_identifier(name)}"
    ).fetchall()


def _check_objects(tables) -> List[Violation]:
    out: List[Violation] = []
    object_ids = {row[0] for row in tables["objects"]}
    for table in ("clobs", "attributes", "elements", "attr_ancestors"):
        for row in tables[table]:
            if row[0] not in object_ids:
                out.append(
                    f"{table}: row references missing object {row[0]}"
                )
    return out


def _check_definitions(tables) -> List[Violation]:
    out: List[Violation] = []
    attr_ids = {row[0] for row in tables["attr_defs"]}
    elem_ids = {row[0] for row in tables["elem_defs"]}
    parent_of = {row[0]: row[3] for row in tables["attr_defs"]}
    for attr_id, parent_id in parent_of.items():
        if parent_id is not None and parent_id not in attr_ids:
            out.append(
                f"attr_defs: definition {attr_id} references missing parent "
                f"{parent_id}"
            )
    for row in tables["elem_defs"]:
        if row[1] not in attr_ids:
            out.append(
                f"elem_defs: element definition {row[0]} references missing "
                f"attribute definition {row[1]}"
            )
    for row in tables["attributes"]:
        if row[1] not in attr_ids:
            out.append(
                f"attributes: instance ({row[0]}, {row[1]}, {row[2]}) "
                f"references missing definition {row[1]}"
            )
    for row in tables["elements"]:
        if row[3] not in elem_ids:
            out.append(
                f"elements: value row references missing element definition "
                f"{row[3]}"
            )
    return out


def _check_dual_storage(tables) -> List[Violation]:
    out: List[Violation] = []
    orders = {row[0] for row in tables["schema_order"]}
    clob_keys = {(row[0], row[1], row[2]) for row in tables["clobs"]}
    top_instances = set()
    for row in tables["attributes"]:
        object_id, attr_id, seq_id, clob_order, clob_seq = row
        if clob_seq >= 1:
            key = (object_id, clob_order, clob_seq)
            top_instances.add(key)
            if key not in clob_keys:
                out.append(
                    f"attributes: top instance ({object_id}, {attr_id}, "
                    f"{seq_id}) has no CLOB at order {clob_order} seq {clob_seq}"
                )
    for key in clob_keys:
        object_id, schema_order, clob_seq = key
        if schema_order not in orders:
            out.append(
                f"clobs: ({object_id}, {schema_order}, {clob_seq}) uses an "
                f"order missing from the global-ordering table"
            )
    # CLOBs without any attribute row are legal (store-only content from
    # lenient validation), so no reverse check on top_instances.
    return out


def _check_elements(tables) -> List[Violation]:
    out: List[Violation] = []
    instances = {(row[0], row[1], row[2]) for row in tables["attributes"]}
    for row in tables["elements"]:
        key = (row[0], row[1], row[2])
        if key not in instances:
            out.append(
                f"elements: value row references missing attribute instance "
                f"{key}"
            )
    return out


def _check_inverted(tables) -> List[Violation]:
    out: List[Violation] = []
    instances = {(row[0], row[1], row[2]) for row in tables["attributes"]}
    # Self rows.
    selfs = {
        (row[0], row[1], row[2])
        for row in tables["attr_ancestors"]
        if row[5] == 0 and (row[1], row[2]) == (row[3], row[4])
    }
    for instance in instances:
        if instance not in selfs:
            out.append(
                f"attr_ancestors: instance {instance} lacks its distance-0 "
                "self row"
            )
    # Endpoints + transitivity.
    edges: Dict[Tuple[int, int, int], Set[Tuple[int, int, int]]] = {}
    all_rows = set()
    for row in tables["attr_ancestors"]:
        object_id, d_attr, d_seq, a_attr, a_seq, distance = row
        desc = (object_id, d_attr, d_seq)
        anc = (object_id, a_attr, a_seq)
        if desc not in instances:
            out.append(f"attr_ancestors: missing descendant instance {desc}")
            continue
        if anc not in instances:
            out.append(f"attr_ancestors: missing ancestor instance {anc}")
            continue
        all_rows.add((desc, anc, distance))
    for desc, anc, m in all_rows:
        if m == 0:
            continue
        for desc2, anc2, n in all_rows:
            if n == 0 or desc2 != anc:
                continue
            if (desc, anc2, m + n) not in all_rows:
                out.append(
                    f"attr_ancestors: missing transitive row {desc} -> "
                    f"{anc2} at distance {m + n}"
                )
    return out


def _check_clob_xml(tables, catalog: HybridCatalog) -> List[Violation]:
    out: List[Violation] = []
    for row in tables["clobs"]:
        object_id, schema_order, clob_seq, content = row
        try:
            fragment = parse_fragment(content)
        except XMLSyntaxError as exc:
            out.append(
                f"clobs: ({object_id}, {schema_order}, {clob_seq}) is not "
                f"well-formed XML: {exc}"
            )
            continue
        try:
            node = catalog.schema.node_by_order(schema_order)
        except SchemaError:
            # The dangling schema_order itself is reported by
            # _check_dual_storage; here it is a tolerated soft error,
            # but a *counted* one so a flood of them is visible.
            catalog.metrics.counter(
                "fsck_soft_errors_total",
                "recoverable errors tolerated while checking integrity",
                labels=("kind",),
            ).labels(kind="unknown-schema-order").inc()
            continue
        if fragment.tag != node.tag:
            out.append(
                f"clobs: ({object_id}, {schema_order}, {clob_seq}) root tag "
                f"<{fragment.tag}> does not match schema node <{node.tag}>"
            )
    return out
