"""Backend-neutral logical query plan IR (the Fig-4 plan as data).

Historically the count-matching plan existed twice — as set operations
in :mod:`repro.core.planner` and as hand-assembled SQL in
:mod:`repro.backends.sqlite` — so every plan improvement had to be
written and verified twice, and neither copy ordered criteria by
selectivity.  This module extracts the plan into a small DAG of typed
stages that *both* backends execute:

``ElementSeek``
    One index seek per element criterion (Fig-4 stage 1, one row per
    criterion).  Seeks are ordered most-selective-first by the
    optimizer; a seek that matches nothing short-circuits the whole
    conjunctive plan on either backend.
``DirectCountMatch``
    Per attribute criterion: instances (or objects, in the §4
    simplified rewrite) that contain the required number of distinct
    direct element matches (stage 2).
``AncestorCountMatch``
    One criteria-tree edge resolved bottom-up through the inverted
    sub-attribute → ancestor list (stage 3); absent entirely when the
    simplified rewrite applies.
``ObjectIntersect``
    Objects where every top-level criterion holds (stage 4), tops
    ordered rarest-first so the intersection can exit early.

:func:`build_plan` consumes a :class:`~repro.core.query.ShreddedQuery`
plus optional :class:`~repro.core.stats.CatalogStatistics` and produces
a :class:`LogicalPlan`; the memory interpreter
(:func:`repro.core.planner.match_objects_memory`) and the IR→SQL
compiler (:meth:`repro.backends.sqlite.SqliteHybridStore.match_objects`)
run the same plan object, and property tests hold them to identical
results.  The §4 simplified plan is an IR-level rewrite
(``plan.simple``) rather than a boolean consulted independently by each
backend.

:class:`PlanCache` memoizes built plans by query *shape* — the criteria
tree with definition ids and operators but without comparison values —
so repeated query templates skip the optimizer.  Entries carry the
statistics generation they were built under; any invalidation
(definition change, delete) retires them wholesale.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .query import Op, ShreddedQuery


class ElementSeek:
    """Fig-4 stage 1 for one element criterion: an index seek on the
    ``elements`` table.  Values live on the plan's bound query (looked
    up by ``qelem_id``), so a cached plan re-binds to fresh literals."""

    __slots__ = ("qelem_id", "qattr_id", "elem_def_id", "op", "numeric", "est_rows")
    kind = "ElementSeek"

    def __init__(
        self,
        qelem_id: int,
        qattr_id: int,
        elem_def_id: int,
        op: Op,
        numeric: bool,
        est_rows: Optional[float] = None,
    ) -> None:
        self.qelem_id = qelem_id
        self.qattr_id = qattr_id
        self.elem_def_id = elem_def_id
        self.op = op
        self.numeric = numeric
        self.est_rows = est_rows

    def key(self) -> Tuple:
        return ("seek", self.qelem_id)


class DirectCountMatch:
    """Fig-4 stage 2 for one attribute criterion.  ``required == 0`` is
    an existence-only test (every instance of the definition qualifies);
    ``per_object`` marks the §4 simplified rewrite, where grouping is by
    object instead of by attribute instance."""

    __slots__ = ("qattr_id", "attr_def_id", "required", "per_object", "est_rows")
    kind = "DirectCountMatch"

    def __init__(
        self,
        qattr_id: int,
        attr_def_id: int,
        required: int,
        per_object: bool,
        est_rows: Optional[float] = None,
    ) -> None:
        self.qattr_id = qattr_id
        self.attr_def_id = attr_def_id
        self.required = required
        self.per_object = per_object
        self.est_rows = est_rows

    def key(self) -> Tuple:
        return ("count", self.qattr_id)


class AncestorCountMatch:
    """Fig-4 stage 3 for one criteria-tree edge: parent instances must
    contain a satisfied child instance (any number of levels deeper,
    via the inverted list — never recursing through the data)."""

    __slots__ = ("parent_qattr_id", "child_qattr_id", "parent_def_id", "child_def_id")
    kind = "AncestorCountMatch"

    def __init__(
        self,
        parent_qattr_id: int,
        child_qattr_id: int,
        parent_def_id: int,
        child_def_id: int,
    ) -> None:
        self.parent_qattr_id = parent_qattr_id
        self.child_qattr_id = child_qattr_id
        self.parent_def_id = parent_def_id
        self.child_def_id = child_def_id

    def key(self) -> Tuple:
        return ("containment", self.parent_qattr_id, self.child_qattr_id)


class ObjectIntersect:
    """Fig-4 stage 4: objects where every top criterion is satisfied,
    tops ordered rarest-first."""

    __slots__ = ("top_qattr_ids", "est_rows")
    kind = "ObjectIntersect"

    def __init__(self, top_qattr_ids: Tuple[int, ...], est_rows: Optional[float] = None) -> None:
        self.top_qattr_ids = top_qattr_ids
        self.est_rows = est_rows

    def key(self) -> Tuple:
        return ("intersect",)


class LogicalPlan:
    """One optimized Fig-4 plan, bound to a shredded query.

    ``actuals`` is filled by whichever backend executes the plan —
    stage key → produced row count — and is what ``EXPLAIN`` renders
    next to the optimizer's estimates.  ``stats_generation`` records
    the statistics generation the plan was built under (``None`` when
    built without statistics); the plan cache uses it for staleness.
    """

    __slots__ = (
        "query", "seeks", "counts", "containments", "intersect",
        "simple", "stats_generation", "shape", "actuals",
    )

    def __init__(
        self,
        query: ShreddedQuery,
        seeks: List[ElementSeek],
        counts: List[DirectCountMatch],
        containments: List[AncestorCountMatch],
        intersect: ObjectIntersect,
        simple: bool,
        stats_generation: Optional[int],
        shape: Tuple,
    ) -> None:
        self.query = query
        self.seeks = seeks
        self.counts = counts
        self.containments = containments
        self.intersect = intersect
        self.simple = simple
        self.stats_generation = stats_generation
        self.shape = shape
        self.actuals: Dict[Tuple, int] = {}

    def rebind(self, query: ShreddedQuery) -> "LogicalPlan":
        """A same-shape execution copy bound to ``query``'s literals.
        Stage objects are shared (they hold no comparison values); the
        ``actuals`` map is fresh so concurrent uses never clobber."""
        return LogicalPlan(
            query, self.seeks, self.counts, self.containments,
            self.intersect, self.simple, self.stats_generation, self.shape,
        )

    def stage_count(self) -> int:
        return len(self.seeks) + len(self.counts) + len(self.containments) + 1

    # ------------------------------------------------------------------
    # EXPLAIN rendering
    # ------------------------------------------------------------------
    def _cell(self, est: Optional[float], key: Tuple) -> str:
        est_text = "est=?" if est is None else f"est~{est:.1f}"
        actual = self.actuals.get(key)
        actual_text = "actual=-" if actual is None else f"actual={actual}"
        return f"[{est_text} {actual_text}]"

    def describe(self) -> str:
        """The optimized stage tree: execution-ordered seeks nested
        under their attribute criteria, with estimated and actual row
        counts per stage."""
        mode = "simplified (§4 rewrite)" if self.simple else "general"
        header = f"logical plan: {mode}, {self.stage_count()} stages"
        if self.stats_generation is not None:
            header += f", stats generation {self.stats_generation}"
        lines = [header]
        seek_order = {seek.qelem_id: i + 1 for i, seek in enumerate(self.seeks)}
        lines.append(
            f"ObjectIntersect tops={list(self.intersect.top_qattr_ids)} "
            f"{self._cell(self.intersect.est_rows, self.intersect.key())}"
        )
        counts_by_qattr = {c.qattr_id: c for c in self.counts}
        for count in self.counts:
            grouping = "object" if count.per_object else "instance"
            need = (
                "exists" if count.required == 0 else f"need {count.required} distinct"
            )
            lines.append(
                f"  DirectCountMatch qattr {count.qattr_id} "
                f"(def {count.attr_def_id}, {need}, per {grouping}) "
                f"{self._cell(count.est_rows, count.key())}"
            )
            for seek in self.seeks:
                if seek.qattr_id != count.qattr_id:
                    continue
                lines.append(
                    f"    ElementSeek #{seek_order[seek.qelem_id]} "
                    f"qelem {seek.qelem_id} (elem_def {seek.elem_def_id} "
                    f"{seek.op.value}) {self._cell(seek.est_rows, seek.key())}"
                )
        for edge in self.containments:
            parent_count = counts_by_qattr.get(edge.parent_qattr_id)
            est = parent_count.est_rows if parent_count is not None else None
            lines.append(
                f"  AncestorCountMatch qattr {edge.parent_qattr_id} "
                f"(def {edge.parent_def_id}) contains qattr "
                f"{edge.child_qattr_id} (def {edge.child_def_id}) "
                f"{self._cell(est, edge.key())}"
            )
        return "\n".join(lines)


def plan_shape(query: ShreddedQuery) -> Tuple:
    """The structural cache key of a shredded query: the criteria tree
    with definition ids and operators, *without* comparison values (two
    instances of the same query template share one plan).  ``IN_SET``
    keeps its value-set width because the optimizer's estimate uses it."""
    qattrs = tuple(
        (q.qattr_id, q.attr_def_id, q.parent_qattr_id, q.depth, q.direct_elem_count)
        for q in query.qattrs
    )
    qelems = tuple(
        (
            e.qelem_id, e.qattr_id, e.elem_def_id, e.op.value, e.numeric,
            len(e.value_set) if e.value_set is not None else -1,
        )
        for e in query.qelems
    )
    return (qattrs, qelems, tuple(query.top_qattr_ids), query.simple)


def build_plan(query: ShreddedQuery, stats=None) -> LogicalPlan:
    """Compile a shredded query into an optimized logical plan.

    With ``stats`` (a :class:`~repro.core.stats.CatalogStatistics`),
    element seeks and the top-level intersection are ordered
    most-selective-first and every stage carries a row estimate;
    without, stages keep shredding order and estimates are ``None``
    (the unoptimized plan — what a bare ``store.match_objects(shredded)``
    executes).
    """
    elem_est: Dict[int, Optional[float]] = {}
    attr_est: Dict[int, Optional[float]] = {}
    if stats is not None:
        for qelem in query.qelems:
            elem_est[qelem.qelem_id] = stats.estimate_qelem(qelem)
        known = {k: v for k, v in elem_est.items()}
        for qattr in query.qattrs:
            attr_est[qattr.qattr_id] = stats.estimate_qattr(qattr, query, known)
    else:
        for qelem in query.qelems:
            elem_est[qelem.qelem_id] = None
        for qattr in query.qattrs:
            attr_est[qattr.qattr_id] = None

    seeks = [
        ElementSeek(
            e.qelem_id, e.qattr_id, e.elem_def_id, e.op, e.numeric,
            elem_est[e.qelem_id],
        )
        for e in query.qelems
    ]
    if stats is not None:
        seeks.sort(key=lambda s: (s.est_rows, s.qelem_id))

    counts = [
        DirectCountMatch(
            q.qattr_id, q.attr_def_id, q.direct_elem_count, query.simple,
            attr_est[q.qattr_id],
        )
        for q in query.qattrs
    ]
    if stats is not None:
        counts.sort(key=lambda c: (c.est_rows, c.qattr_id))

    containments: List[AncestorCountMatch] = []
    if not query.simple:
        # Bottom-up over the criteria tree, exactly the Fig-4 stage-3
        # order: deepest parents first, each parent's edges in criteria
        # order.
        for depth in range(query.max_depth(), -1, -1):
            for qattr in query.qattrs:
                if qattr.depth != depth or not qattr.child_qattr_ids:
                    continue
                for child_id in qattr.child_qattr_ids:
                    child = query.qattr(child_id)
                    containments.append(
                        AncestorCountMatch(
                            qattr.qattr_id, child_id,
                            qattr.attr_def_id, child.attr_def_id,
                        )
                    )

    tops = list(query.top_qattr_ids)
    intersect_est: Optional[float] = None
    if stats is not None:
        tops.sort(key=lambda t: (attr_est[t], t))
        top_ests = [attr_est[t] for t in tops]
        intersect_est = min(top_ests) if top_ests else 0.0

    return LogicalPlan(
        query=query,
        seeks=seeks,
        counts=counts,
        containments=containments,
        intersect=ObjectIntersect(tuple(tops), intersect_est),
        simple=query.simple,
        stats_generation=stats.generation if stats is not None else None,
        shape=plan_shape(query),
    )


class PlanCache:
    """Shape-keyed LRU cache of built plans.

    A hit requires the entry's statistics generation to match the
    current one — :meth:`CatalogStatistics.invalidate` therefore
    retires every cached plan at once (the stale entry is dropped on
    lookup).  The owning catalog counts hits/misses into its metrics
    registry.  All operations are thread-safe; a returned plan is
    shared between threads, which is sound because execution goes
    through :meth:`LogicalPlan.rebind` (stage objects are immutable
    after build, ``actuals`` is per-rebind).
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, LogicalPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, shape: Tuple, generation: Optional[int]) -> Optional[LogicalPlan]:
        with self._lock:
            entry = self._entries.get(shape)
            if entry is not None and entry.stats_generation == generation:
                self._entries.move_to_end(shape)
                self.hits += 1
                return entry
            if entry is not None:
                # Built under an older statistics generation: stale.
                del self._entries[shape]
            self.misses += 1
            return None

    def store(self, plan: LogicalPlan) -> None:
        with self._lock:
            self._entries[plan.shape] = plan
            self._entries.move_to_end(plan.shape)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
