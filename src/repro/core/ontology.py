"""Ontology-enhanced search (paper §3).

"By validating dynamic metadata attributes on insert, the catalog
provides a consistent, but dynamic set of definitions for query
purposes **that could also be connected to an ontology for enhanced
search capabilities**."  This module supplies that connection:

* :class:`Ontology` — a lightweight term graph with synonyms and
  broader/narrower relations (the shape of keyword thesauri like the
  CF standard-name table the LEAD themes draw from);
* :func:`expand_query` — rewrites equality criteria whose value is a
  known term into :data:`Op.IN_SET` criteria accepting the term, its
  synonyms, and (optionally) all narrower terms — so a scientist
  querying ``themekey = "precipitation"`` finds objects tagged with any
  specific precipitation variable.

Expansion happens *before* query shredding, so it works identically on
every backend and baseline.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from ..errors import QueryError
from .query import AttributeCriteria, ElementCriterion, ObjectQuery, Op


class Ontology:
    """Terms with synonyms and a broader/narrower hierarchy.

    The hierarchy must stay acyclic; :meth:`add_term` rejects edges that
    would create a cycle.
    """

    def __init__(self, name: str = "ontology") -> None:
        self.name = name
        self._canonical: Dict[str, str] = {}  # term or synonym -> canonical
        self._synonyms: Dict[str, Set[str]] = {}
        self._narrower: Dict[str, Set[str]] = {}
        self._broader: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_term(
        self,
        term: str,
        synonyms: Iterable[str] = (),
        broader: Optional[str] = None,
    ) -> None:
        """Register ``term`` with optional synonyms and a broader term
        (which is auto-registered if new)."""
        if not term:
            raise ValueError("empty term")
        canonical = self._canonical.get(term, term)
        if canonical != term:
            raise ValueError(f"{term!r} is already a synonym of {canonical!r}")
        self._canonical.setdefault(term, term)
        self._synonyms.setdefault(term, set())
        for synonym in synonyms:
            existing = self._canonical.get(synonym)
            if existing is not None and existing != term:
                raise ValueError(
                    f"synonym {synonym!r} already belongs to {existing!r}"
                )
            self._canonical[synonym] = term
            self._synonyms[term].add(synonym)
        if broader is not None:
            if broader == term:
                raise ValueError(f"{term!r} cannot be broader than itself")
            if broader not in self._canonical:
                self.add_term(broader)
            # Cycle check: the broader term must not already be narrower
            # than this term.
            if broader in self.narrower_closure(term):
                raise ValueError(
                    f"making {broader!r} broader than {term!r} would create a cycle"
                )
            self._narrower.setdefault(broader, set()).add(term)
            self._broader.setdefault(term, set()).add(broader)

    # ------------------------------------------------------------------
    # Queries over the graph
    # ------------------------------------------------------------------
    def canonical(self, term: str) -> Optional[str]:
        """The canonical form of a term or synonym, or None if unknown."""
        return self._canonical.get(term)

    def knows(self, term: str) -> bool:
        return term in self._canonical

    def synonyms_of(self, term: str) -> Set[str]:
        canonical = self._canonical.get(term)
        if canonical is None:
            return set()
        return set(self._synonyms.get(canonical, set()))

    def narrower_closure(self, term: str) -> Set[str]:
        """All canonical terms strictly narrower than ``term``."""
        canonical = self._canonical.get(term)
        if canonical is None:
            return set()
        out: Set[str] = set()
        frontier = list(self._narrower.get(canonical, set()))
        while frontier:
            current = frontier.pop()
            if current in out:
                continue
            out.add(current)
            frontier.extend(self._narrower.get(current, set()))
        return out

    def expand(self, term: str, include_narrower: bool = True) -> Set[str]:
        """Every surface form the term may appear as in metadata: the
        canonical term, its synonyms, and (optionally) all narrower
        terms with *their* synonyms.  Unknown terms expand to themselves.
        """
        canonical = self._canonical.get(term)
        if canonical is None:
            return {term}
        out = {canonical} | self._synonyms.get(canonical, set())
        if include_narrower:
            for narrower in self.narrower_closure(canonical):
                out.add(narrower)
                out |= self._synonyms.get(narrower, set())
        return out

    def __len__(self) -> int:
        return len(self._synonyms)


def expand_query(
    query: ObjectQuery,
    ontology: Ontology,
    include_narrower: bool = True,
) -> ObjectQuery:
    """A copy of ``query`` with EQ criteria over known terms widened to
    IN_SET criteria over the ontology expansion.

    Only string equality criteria are expanded; numeric and relational
    criteria pass through unchanged.
    """

    def expand_criteria(criteria: AttributeCriteria) -> AttributeCriteria:
        out = AttributeCriteria(criteria.name, criteria.source)
        for criterion in criteria.elements:
            if (
                criterion.op is Op.EQ
                and isinstance(criterion.value, str)
                and ontology.knows(criterion.value)
            ):
                values = ontology.expand(criterion.value, include_narrower)
                if len(values) > 1:
                    out.elements.append(
                        ElementCriterion(
                            criterion.name, criterion.source,
                            frozenset(values), Op.IN_SET,
                        )
                    )
                    continue
            out.elements.append(
                ElementCriterion(
                    criterion.name, criterion.source, criterion.value, criterion.op
                )
            )
        for sub in criteria.sub_attributes:
            out.add_attribute(expand_criteria(sub))
        return out

    if query.is_empty():
        raise QueryError("query has no attribute criteria")
    expanded = ObjectQuery()
    for criteria in query.attributes:
        expanded.add_attribute(expand_criteria(criteria))
    return expanded
