"""Node ordering (paper §2, §5; ablation of [19] for bench E7).

The hybrid approach orders **schema** nodes, once, instead of ordering
every document: since every repeatable or recursive element is inside a
metadata attribute, only nodes at or above the attributes need
ordering, and those occur at most once per document.  A total order
over a document's attribute instances is then ``(schema order,
same-sibling sequence)``.

Two artifacts are computed here:

* :func:`assign_global_order` — pre-order numbers over the ordered
  nodes, each with ``last_child_order`` (the greatest order in its
  subtree; equal to its own order for attributes) so closing tags can
  be placed by set-based queries (§5).
* :func:`ancestor_pairs` — the inverted list mapping every ordered node
  to each of its ancestors, used by the response builder to find the
  wrapper tags a result document needs.

For the E7 ablation the module also implements the three per-document
total orderings of Tatarinov et al. [19] — global, local, and Dewey —
including their middle-insert update costs, so the benchmark can
contrast them with the schema-level ordering's zero-cost appends.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..xmlkit import Element
from .schema import NodeKind, SchemaNode


def assign_global_order(root: SchemaNode) -> List[SchemaNode]:
    """Number the ordered nodes of the schema in pre-order, in place.

    Ordered nodes are those at or above the metadata attributes — the
    traversal does not descend below an ATTRIBUTE node.  Returns the
    nodes in order (index ``i`` holds the node with ``order == i + 1``).
    """
    ordered: List[SchemaNode] = []

    def visit(node: SchemaNode) -> int:
        """Assign orders in ``node``'s subtree; return the last order used."""
        node.order = len(ordered) + 1
        ordered.append(node)
        last = node.order
        if node.kind is NodeKind.ATTRIBUTE:
            # Elements within the CLOB are inherently in original order;
            # they are never globally ordered.
            node.last_child_order = node.order
            return last
        for child in node.children:
            if child.kind in (NodeKind.STRUCTURAL, NodeKind.ATTRIBUTE):
                last = visit(child)
        node.last_child_order = last
        return last

    visit(root)
    return ordered


def ancestor_pairs(ordered: Sequence[SchemaNode]) -> List[Tuple[int, int]]:
    """The ancestor inverted list: ``(node_order, ancestor_order)`` rows.

    One row per (ordered node, proper ancestor).  Joining this with the
    stored CLOB orders yields the distinct wrapper tags each response
    document requires (§5).
    """
    pairs: List[Tuple[int, int]] = []
    for node in ordered:
        assert node.order is not None
        for anc in node.ancestors():
            assert anc.order is not None
            pairs.append((node.order, anc.order))
    return pairs


# ---------------------------------------------------------------------------
# Per-document orderings of [19], for the E7 ablation.
#
# Each strategy assigns every element of a document a sortable key and
# reports how many keys must be rewritten when a new child is inserted
# in the middle of a sibling list — the update cost the paper avoids by
# ordering the schema instead of the documents.
# ---------------------------------------------------------------------------

class DocumentOrdering:
    """Interface: key assignment + middle-insert cost accounting."""

    name = "abstract"

    def assign(self, root: Element) -> Dict[int, Tuple]:
        """Map ``id(element)`` to its sort key for every element."""
        raise NotImplementedError

    def insert_cost(self, root: Element, parent: Element, position: int) -> int:
        """Number of existing keys that must be rewritten to insert a new
        child of ``parent`` at ``position``."""
        raise NotImplementedError


class GlobalDocumentOrdering(DocumentOrdering):
    """Pre-order integers over the whole document.

    Inserting anywhere shifts the numbers of every element that follows
    in document order — the most expensive strategy under updates.
    """

    name = "global-document"

    def assign(self, root: Element) -> Dict[int, Tuple]:
        keys: Dict[int, Tuple] = {}
        counter = 0
        stack = [root]
        while stack:
            node = stack.pop()
            counter += 1
            keys[id(node)] = (counter,)
            stack.extend(reversed(node.child_elements()))
        return keys

    def insert_cost(self, root: Element, parent: Element, position: int) -> int:
        # Everything after the insertion point in pre-order is renumbered.
        pre: List[Element] = []
        def flat(node: Element) -> None:
            pre.append(node)
            for kid in node.child_elements():
                flat(kid)
        flat(root)
        # Locate the pre-order position of the insertion point: it is the
        # index of parent's position-th element child (or the end of
        # parent's subtree when appending past the last child).
        kids = parent.child_elements()
        if position < len(kids):
            anchor = kids[position]
            idx = next(i for i, n in enumerate(pre) if n is anchor)
        else:
            # Append: renumbering starts after parent's whole subtree.
            idx_parent = next(i for i, n in enumerate(pre) if n is parent)
            idx = idx_parent + parent.descendant_count()
        return len(pre) - idx


class LocalOrdering(DocumentOrdering):
    """Children numbered independently per parent; keys are the vectors
    of sibling positions from the root.  Inserting shifts only the
    following siblings' positions — but every descendant of a shifted
    sibling carries the changed component in its key vector."""

    name = "local"

    def assign(self, root: Element) -> Dict[int, Tuple]:
        keys: Dict[int, Tuple] = {}

        def walk(node: Element, prefix: Tuple[int, ...]) -> None:
            keys[id(node)] = prefix
            for i, kid in enumerate(node.child_elements(), start=1):
                walk(kid, prefix + (i,))

        walk(root, (1,))
        return keys

    def insert_cost(self, root: Element, parent: Element, position: int) -> int:
        kids = parent.child_elements()
        return sum(kid.descendant_count() for kid in kids[position:])


class DeweyOrdering(DocumentOrdering):
    """Dewey decimal paths (1.3.2 ...).  Same key structure as local
    ordering — the paper treats them separately because Dewey keys are
    self-describing (a key alone names all ancestors), which we model
    by keys carrying the full path vector."""

    name = "dewey"

    def assign(self, root: Element) -> Dict[int, Tuple]:
        return LocalOrdering().assign(root)

    def insert_cost(self, root: Element, parent: Element, position: int) -> int:
        # All following siblings and their entire subtrees get new Dewey
        # paths (every stored key embeds the sibling component).
        kids = parent.child_elements()
        return sum(kid.descendant_count() for kid in kids[position:])


class SchemaLevelOrdering(DocumentOrdering):
    """The paper's strategy: ``(schema order, same-sibling sequence)``.

    Keys depend only on the schema node and the instance sequence among
    same-tag siblings, so inserting a new attribute instance *appends* a
    sequence number and rewrites nothing.  Middle-inserts of attribute
    instances rewrite only the same-sibling sequence numbers of the
    following same-tag siblings (no descendant keys exist — the subtree
    is a CLOB).
    """

    name = "schema-level"

    def __init__(self, schema) -> None:
        # ``schema`` is an AnnotatedSchema; imported loosely to avoid cycles.
        self.schema = schema

    def assign(self, root: Element) -> Dict[int, Tuple]:
        keys: Dict[int, Tuple] = {}
        root_schema = self.schema.root
        if root_schema.order is not None:
            keys[id(root)] = (root_schema.order, 0)

        def walk(node: Element, snode: SchemaNode) -> None:
            # Below an ATTRIBUTE the CLOB's own order rules; stop there.
            if snode.kind is NodeKind.ATTRIBUTE:
                return
            seq_counters: Dict[str, int] = {}
            for kid in node.child_elements():
                child_schema = snode.find_child(kid.tag)
                if child_schema is None or child_schema.order is None:
                    continue
                seq = seq_counters.get(kid.tag, 0) + 1
                seq_counters[kid.tag] = seq
                keys[id(kid)] = (child_schema.order, seq)
                walk(kid, child_schema)

        walk(root, root_schema)
        return keys

    def insert_cost(self, root: Element, parent: Element, position: int) -> int:
        # Only same-tag following siblings need new sequence numbers, and
        # only when inserting before existing instances; appends are free.
        kids = parent.child_elements()
        if position >= len(kids):
            return 0
        # A middle insert of tag T renumbers following siblings with tag T.
        # The caller inserts an element with the same tag as the one at
        # ``position`` (the common case: another instance of an attribute).
        tag = kids[position].tag
        return sum(1 for kid in kids[position:] if kid.tag == tag)


ALL_DOCUMENT_ORDERINGS = (GlobalDocumentOrdering, LocalOrdering, DeweyOrdering)
