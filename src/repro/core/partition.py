"""The metadata-attribute partition rules (paper §2).

The paper lists five rules for deciding which schema elements are
metadata attributes.  Rule 1 ("attributes should define a concept") is
semantic and cannot be checked mechanically; the validator here
enforces the four structural rules plus the consistency constraints the
rest of the architecture depends on:

R2  A repeatable element must be an attribute or inside one, and no
    attribute may start strictly below it (sub-attributes excepted).
R3  An element with XML attribute nodes must be an attribute or inside
    one.
R4  Recursion must be contained within an attribute (in the annotated
    model, recursion only exists inside ``dynamic`` attribute subtrees,
    so the structural check is: dynamic specs only on attributes).
R5  Every leaf must be contained within an attribute (a leaf may *be*
    an attribute).

Consistency constraints (implied throughout §2–§5):

C1  There is exactly one ATTRIBUTE node on any root-to-leaf path
    (sub-attributes/elements live strictly below it) — this is what
    makes the schema-level global ordering well defined (§5, and the
    space argument versus [15] in §6).
C2  Kinds nest correctly: STRUCTURAL above attributes only;
    SUB_ATTRIBUTE/ELEMENT below attributes only.
C3  SUB_ATTRIBUTE nodes are interior; ELEMENT nodes are leaves.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SchemaError
from .schema import NodeKind, SchemaNode


def validate_partition(root: SchemaNode) -> None:
    """Validate the annotation of the whole schema tree.

    Raises
    ------
    SchemaError
        Naming the node and the violated rule.
    """
    if root.kind is not NodeKind.STRUCTURAL:
        raise SchemaError(
            f"root {root.tag!r} must be structural, not {root.kind.value} "
            "(the document root is never itself a metadata attribute)"
        )
    if root.repeatable:
        raise SchemaError(f"root {root.tag!r} cannot be repeatable")
    _validate(root, enclosing_attribute=None)


def _validate(node: SchemaNode, enclosing_attribute: Optional[SchemaNode]) -> None:
    inside = enclosing_attribute is not None

    # C2: kind nesting.
    if node.kind is NodeKind.STRUCTURAL and inside:
        raise SchemaError(
            f"{node.path()}: structural node inside attribute "
            f"{enclosing_attribute.tag!r}; interior nodes below an attribute "
            "must be sub-attributes (C2)"
        )
    if node.kind in (NodeKind.SUB_ATTRIBUTE, NodeKind.ELEMENT) and not inside:
        raise SchemaError(
            f"{node.path()}: {node.kind.value} outside any attribute; leaves "
            "and interior data nodes must be contained within a metadata "
            "attribute (R5/C2)"
        )

    # C1: single attribute per path.
    if node.kind is NodeKind.ATTRIBUTE and inside:
        raise SchemaError(
            f"{node.path()}: attribute nested inside attribute "
            f"{enclosing_attribute.tag!r}; only one metadata attribute may "
            "appear on any root-to-leaf path (C1) — use a sub-attribute"
        )

    # C3: arity per kind.
    if node.kind is NodeKind.ELEMENT and node.children:
        raise SchemaError(f"{node.path()}: metadata elements are leaf nodes (C3)")
    if node.kind is NodeKind.SUB_ATTRIBUTE and not node.children:
        raise SchemaError(f"{node.path()}: sub-attributes are interior nodes (C3)")

    # R5: structural leaves are not allowed — every leaf must carry data
    # inside an attribute (or be a leaf attribute itself).
    if node.kind is NodeKind.STRUCTURAL and not node.children:
        raise SchemaError(
            f"{node.path()}: structural leaf; every leaf element must be "
            "contained within a metadata attribute (R5)"
        )

    # R2: repeatable nodes must be at-or-inside an attribute.
    if node.repeatable and node.kind is NodeKind.STRUCTURAL:
        raise SchemaError(
            f"{node.path()}: repeatable element outside a metadata attribute; "
            "multi-instance elements must be contained within one (R2)"
        )

    # R3: XML attribute nodes only at-or-inside attributes.
    if node.has_xml_attributes and node.kind is NodeKind.STRUCTURAL:
        raise SchemaError(
            f"{node.path()}: element with XML attributes outside a metadata "
            "attribute (R3)"
        )

    # R4 / dynamic placement: dynamic specs mark recursive user-defined
    # sections and may only annotate attribute nodes.
    if node.dynamic is not None and node.kind is not NodeKind.ATTRIBUTE:
        raise SchemaError(
            f"{node.path()}: dynamic annotation on a {node.kind.value} node; "
            "recursion must be contained within a metadata attribute (R4)"
        )

    # Queryability is a property of attributes (paper: "each metadata
    # attribute does not need to be queryable").
    if not node.queryable and node.kind is not NodeKind.ATTRIBUTE:
        raise SchemaError(
            f"{node.path()}: queryable=False is only meaningful on attributes"
        )

    next_enclosing = node if node.kind is NodeKind.ATTRIBUTE else enclosing_attribute
    for child in node.children:
        if child.parent is not node:
            raise SchemaError(
                f"{child.tag!r} has a stale parent pointer; schema nodes "
                "cannot be shared between parents"
            )
        _validate(child, next_enclosing)
