"""Interpreter of the logical plan IR over the memory store.

The Fig-4 object-query plan is built once as a backend-neutral
:class:`~repro.core.logical.LogicalPlan` (see :mod:`repro.core.logical`)
and this module *interprets* it over :class:`MemoryHybridStore` — the
sqlite backend compiles the very same plan object to SQL, so the two
backends can never drift apart stage-wise.

The plan is set-based throughout — every stage is a bulk operation over
whole row sets, never a per-object traversal — and uses the inverted
lists to resolve sub-attribute containment without recursion (paper §4):

1. **ElementSeek** (one per criterion, most-selective-first when
   statistics are available) — join the element data with the query
   element criteria, one index seek per criterion, producing
   ``(object, attribute instance, qelem)`` match rows.  Because all
   criteria are conjunctive, a seek that matches nothing
   short-circuits the remaining stages.
2. **DirectCountMatch** — group matches by attribute instance and
   query attribute; instances qualify when they contain the *required
   number of distinct* direct element criteria.  Criteria with no
   direct elements take every instance of their definition as
   candidates.  Under the §4 simplified rewrite (``plan.simple``),
   grouping is by object directly.
3. **AncestorCountMatch** — bottom-up over the criteria tree: join the
   satisfied child-criterion instances with the data's inverted list of
   sub-attribute → ancestor relationships, and keep ancestor instances
   that account for *all* child criteria (count matching).  Because the
   inverted list spans intervening sub-attributes, a query criterion
   nested one level below another matches data any number of levels
   deeper — and no stage ever recurses through the data.
4. **ObjectIntersect** — objects where every top-level attribute
   criterion has at least one fully satisfied instance, rarest
   criterion first so an empty intersection exits early.

The sqlite backend executes the same stages as SQL statements
(:mod:`repro.backends.sqlite`); the two are property-tested to agree.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple, Union

from ..obs.profile import QueryProfile, current_profile
from .logical import LogicalPlan, build_plan
from .query import Op, ShreddedQuery
from .storage import MemoryHybridStore, PlanTrace, record_plan

Instance = Tuple[int, int]  # (object_id, seq_id)


def _as_plan(query: Union[ShreddedQuery, LogicalPlan]) -> LogicalPlan:
    if isinstance(query, LogicalPlan):
        return query
    return build_plan(query)


def match_objects_memory(
    store: MemoryHybridStore,
    query: Union[ShreddedQuery, LogicalPlan],
    trace: Optional[PlanTrace] = None,
) -> List[int]:
    """Interpret the count-matching plan; returns sorted object ids.

    Accepts either a bare :class:`ShreddedQuery` (compiled on the spot,
    unoptimized) or a pre-built :class:`LogicalPlan` (what the catalog's
    plan cache hands down).
    """
    plan = _as_plan(query)
    if trace is None:
        trace = PlanTrace()
    # One contextvar read per query is the whole disabled-profiling
    # cost on this path (bench E13's ≤1% budget).
    prof = current_profile()
    if plan.simple:
        object_ids = _interpret_simple(store, plan, trace, prof)
    else:
        object_ids = _interpret_general(store, plan, trace, prof)
    record_plan(trace, store.metrics_registry())
    if prof is not None:
        prof.record_plan(plan, backend="memory", trace=trace)
    return object_ids


def _interpret_general(
    store: MemoryHybridStore,
    plan: LogicalPlan,
    trace: PlanTrace,
    prof: Optional[QueryProfile] = None,
) -> List[int]:
    query = plan.query
    trace.add(
        "query-criteria",
        len(query.qattrs) + len(query.qelems),
        f"{len(query.qattrs)} attribute, {len(query.qelems)} element criteria",
    )

    elements = store.db.table("elements")
    attributes = store.db.table("attributes")
    ancestors = store.db.table("attr_ancestors")

    # ------------------------------------------------------------------
    # ElementSeek stages (one index seek per criterion, in plan order).
    # ------------------------------------------------------------------
    # matches[qattr_id][instance] = set of qelem ids that matched there
    matches: Dict[int, Dict[Instance, Set[int]]] = defaultdict(lambda: defaultdict(set))
    match_rows = 0
    ev_text = elements.position("value_text")
    ev_num = elements.position("value_num")
    e_obj = elements.position("object_id")
    e_seq = elements.position("seq_id")
    short_circuited = False
    clock = time.perf_counter if prof is not None else None
    for seek in plan.seeks:
        t0 = clock() if clock is not None else 0.0
        qelem = query.qelems[seek.qelem_id - 1]
        qattr = query.qattr(seek.qattr_id)
        rows = elements.lookup(["elem_id"], [qelem.elem_def_id])
        op = qelem.op
        if qelem.numeric:
            expected = qelem.value_set if op is Op.IN_SET else qelem.value_num
            position = ev_num
        else:
            expected = qelem.value_set if op is Op.IN_SET else qelem.value_text
            position = ev_text
        seek_rows = 0
        for row in rows:
            if row[1] != qattr.attr_def_id:
                continue
            if op.matches(row[position], expected):
                matches[seek.qattr_id][(row[e_obj], row[e_seq])].add(seek.qelem_id)
                seek_rows += 1
        plan.actuals[seek.key()] = seek_rows
        if clock is not None:
            prof.stage_seconds[seek.key()] = clock() - t0
        match_rows += seek_rows
        if seek_rows == 0:
            # Conjunctive query: an unmatched criterion empties the
            # result — skip the remaining seeks entirely (the payoff of
            # most-selective-first ordering).
            short_circuited = True
            break
    trace.add(
        "elements-meeting-criteria",
        match_rows,
        "short-circuited: a criterion matched nothing" if short_circuited else "",
    )
    if short_circuited:
        return _empty_result(plan, trace, simple=False)

    # ------------------------------------------------------------------
    # DirectCountMatch stages (per attribute criterion).
    # ------------------------------------------------------------------
    satisfied: Dict[int, Set[Instance]] = {}
    direct_rows = 0
    for count in plan.counts:
        t0 = clock() if clock is not None else 0.0
        if count.required == 0:
            # Existence-only criterion: every instance of the definition
            # is a candidate.
            instance_rows = attributes.lookup(["attr_id"], [count.attr_def_id])
            candidates = {(row[0], row[2]) for row in instance_rows}
        else:
            candidates = {
                instance
                for instance, met in matches[count.qattr_id].items()
                if len(met) == count.required
            }
        satisfied[count.qattr_id] = candidates
        plan.actuals[count.key()] = len(candidates)
        if clock is not None:
            prof.stage_seconds[count.key()] = clock() - t0
        direct_rows += len(candidates)
    trace.add("attributes-direct", direct_rows)

    # ------------------------------------------------------------------
    # AncestorCountMatch stages (bottom-up containment via the
    # inverted lists, one edge at a time).
    # ------------------------------------------------------------------
    for edge in plan.containments:
        t0 = clock() if clock is not None else 0.0
        base = satisfied[edge.parent_qattr_id]
        if not base:
            plan.actuals[edge.key()] = 0
        elif not satisfied[edge.child_qattr_id]:
            satisfied[edge.parent_qattr_id] = set()
            plan.actuals[edge.key()] = 0
        else:
            child_ok = satisfied[edge.child_qattr_id]
            pair_rows = ancestors.lookup(
                ["desc_attr_id", "anc_attr_id"],
                [edge.child_def_id, edge.parent_def_id],
            )
            anc_ok = {
                (row[0], row[4])
                for row in pair_rows
                if row[5] >= 1 and (row[0], row[2]) in child_ok
            }
            surviving = base & anc_ok
            satisfied[edge.parent_qattr_id] = surviving
            plan.actuals[edge.key()] = len(surviving)
        if clock is not None:
            prof.stage_seconds[edge.key()] = clock() - t0
    indirect_rows = sum(
        len(satisfied[q.qattr_id]) for q in query.qattrs if q.child_qattr_ids
    )
    trace.add("attributes-indirect", indirect_rows)

    # ------------------------------------------------------------------
    # ObjectIntersect: every top criterion satisfied, rarest first.
    # ------------------------------------------------------------------
    t0 = clock() if clock is not None else 0.0
    result: Optional[Set[int]] = None
    for top_id in plan.intersect.top_qattr_ids:
        objects = {obj for obj, _seq in satisfied[top_id]}
        result = objects if result is None else (result & objects)
        if not result:
            break
    object_ids = sorted(result or set())
    plan.actuals[plan.intersect.key()] = len(object_ids)
    if clock is not None:
        prof.stage_seconds[plan.intersect.key()] = clock() - t0
    trace.add("object-ids", len(object_ids))
    return object_ids


def _interpret_simple(
    store: MemoryHybridStore,
    plan: LogicalPlan,
    trace: PlanTrace,
    prof: Optional[QueryProfile] = None,
) -> List[int]:
    """The §4 simplified rewrite: with at most one instance of each
    queried attribute per object and no sub-attribute criteria, count
    matching can group by *object* directly — no per-instance
    bookkeeping and no inverted-list stage."""
    query = plan.query
    trace.add(
        "query-criteria",
        len(query.qattrs) + len(query.qelems),
        f"{len(query.qattrs)} attribute, {len(query.qelems)} element criteria "
        "(simplified plan)",
    )
    elements = store.db.table("elements")
    attributes = store.db.table("attributes")
    e_obj = elements.position("object_id")
    ev_text = elements.position("value_text")
    ev_num = elements.position("value_num")

    # One index seek per criterion; met[qattr][object] = distinct qelems.
    met: Dict[int, Dict[int, Set[int]]] = defaultdict(lambda: defaultdict(set))
    match_rows = 0
    short_circuited = False
    clock = time.perf_counter if prof is not None else None
    for seek in plan.seeks:
        t0 = clock() if clock is not None else 0.0
        qelem = query.qelems[seek.qelem_id - 1]
        rows = elements.lookup(["elem_id"], [qelem.elem_def_id])
        op = qelem.op
        if qelem.numeric:
            expected = qelem.value_set if op is Op.IN_SET else qelem.value_num
            position = ev_num
        else:
            expected = qelem.value_set if op is Op.IN_SET else qelem.value_text
            position = ev_text
        seek_rows = 0
        for row in rows:
            if op.matches(row[position], expected):
                met[seek.qattr_id][row[e_obj]].add(seek.qelem_id)
                seek_rows += 1
        plan.actuals[seek.key()] = seek_rows
        if clock is not None:
            prof.stage_seconds[seek.key()] = clock() - t0
        match_rows += seek_rows
        if seek_rows == 0:
            short_circuited = True
            break
    trace.add(
        "elements-meeting-criteria",
        match_rows,
        "short-circuited: a criterion matched nothing" if short_circuited else "",
    )
    if short_circuited:
        return _empty_result(plan, trace, simple=True)

    result: Optional[Set[int]] = None
    satisfied_rows = 0
    for count in plan.counts:
        t0 = clock() if clock is not None else 0.0
        if count.required == 0:
            objects = {
                row[0] for row in attributes.lookup(["attr_id"], [count.attr_def_id])
            }
        else:
            objects = {
                obj for obj, hits in met[count.qattr_id].items()
                if len(hits) == count.required
            }
        plan.actuals[count.key()] = len(objects)
        if clock is not None:
            prof.stage_seconds[count.key()] = clock() - t0
        satisfied_rows += len(objects)
        result = objects if result is None else (result & objects)
        # No early exit on an empty running intersection: the sqlite
        # compiler executes every DirectCountMatch stage regardless, and
        # the per-stage actuals must stay backend-identical (profile
        # parity).  The expensive case — a criterion matching nothing —
        # already short-circuited at the seek stage above.
    trace.add("attributes-direct", satisfied_rows)
    object_ids = sorted(result or set())
    plan.actuals[plan.intersect.key()] = len(object_ids)
    trace.add("object-ids", len(object_ids))
    return object_ids


def _empty_result(plan: LogicalPlan, trace: PlanTrace, simple: bool) -> List[int]:
    """Finish the trace uniformly after a seek short-circuit: the
    remaining stages run over empty inputs, so record them as zero-row
    stages (both backends emit the identical stage sequence)."""
    for seek in plan.seeks:
        plan.actuals.setdefault(seek.key(), 0)
    for count in plan.counts:
        plan.actuals[count.key()] = 0
    trace.add("attributes-direct", 0)
    if not simple:
        for edge in plan.containments:
            plan.actuals[edge.key()] = 0
        trace.add("attributes-indirect", 0)
    plan.actuals[plan.intersect.key()] = 0
    trace.add("object-ids", 0)
    return []
