"""The Fig-4 object-query plan, executed on the memory store.

The plan is set-based throughout — every stage is a bulk operation over
whole row sets, never a per-object traversal — and uses the inverted
lists to resolve sub-attribute containment without recursion (paper §4):

1. **elements-meeting-criteria** — join the element data with the query
   element criteria (one index seek per criterion, the access path an
   RDBMS would choose) producing ``(object, attribute instance, qelem)``
   match rows.
2. **attributes-direct** — group matches by attribute instance and
   query attribute; instances qualify when they contain the *required
   number of distinct* direct element criteria.  Criteria with no
   direct elements take every instance of their definition as
   candidates.
3. **attributes-indirect** — bottom-up over the criteria tree: join the
   satisfied child-criterion instances with the data's inverted list of
   sub-attribute → ancestor relationships, and keep ancestor instances
   that account for *all* child criteria (count matching).  Because the
   inverted list spans intervening sub-attributes, a query criterion
   nested one level below another matches data any number of levels
   deeper — and no stage ever recurses through the data.
4. **object-ids** — objects where every top-level attribute criterion
   has at least one fully satisfied instance.

The sqlite backend executes the same stages as SQL statements
(:mod:`repro.backends.sqlite`); the two are property-tested to agree.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from .query import Op, ShreddedQuery
from .storage import MemoryHybridStore, PlanTrace, record_plan

Instance = Tuple[int, int]  # (object_id, seq_id)


def match_objects_memory(
    store: MemoryHybridStore,
    query: ShreddedQuery,
    trace: Optional[PlanTrace] = None,
) -> List[int]:
    """Run the count-matching plan; returns sorted object ids.

    Dispatches to the §4 simplified plan when the query's attributes are
    single-instance and there are no sub-attribute criteria.
    """
    if trace is None:
        trace = PlanTrace()
    if query.simple:
        object_ids = _match_objects_simple(store, query, trace)
        record_plan(trace, store.metrics_registry())
        return object_ids
    trace.add(
        "query-criteria",
        len(query.qattrs) + len(query.qelems),
        f"{len(query.qattrs)} attribute, {len(query.qelems)} element criteria",
    )

    elements = store.db.table("elements")
    attributes = store.db.table("attributes")
    ancestors = store.db.table("attr_ancestors")

    # ------------------------------------------------------------------
    # Stage 1: elements meeting criteria (one index seek per criterion).
    # ------------------------------------------------------------------
    # matches[qattr_id][instance] = set of qelem ids that matched there
    matches: Dict[int, Dict[Instance, Set[int]]] = defaultdict(lambda: defaultdict(set))
    match_rows = 0
    ev_text = elements.position("value_text")
    ev_num = elements.position("value_num")
    e_obj = elements.position("object_id")
    e_seq = elements.position("seq_id")
    for qelem in query.qelems:
        qattr = query.qattr(qelem.qattr_id)
        rows = elements.lookup(["elem_id"], [qelem.elem_def_id])
        op = qelem.op
        if qelem.numeric:
            expected = qelem.value_set if op is Op.IN_SET else qelem.value_num
            for row in rows:
                if row[1] != qattr.attr_def_id:
                    continue
                if op.matches(row[ev_num], expected):
                    matches[qelem.qattr_id][(row[e_obj], row[e_seq])].add(qelem.qelem_id)
                    match_rows += 1
        else:
            expected = qelem.value_set if op is Op.IN_SET else qelem.value_text
            for row in rows:
                if row[1] != qattr.attr_def_id:
                    continue
                if op.matches(row[ev_text], expected):
                    matches[qelem.qattr_id][(row[e_obj], row[e_seq])].add(qelem.qelem_id)
                    match_rows += 1
    trace.add("elements-meeting-criteria", match_rows)

    # ------------------------------------------------------------------
    # Stage 2: attribute instances meeting their direct element counts.
    # ------------------------------------------------------------------
    satisfied: Dict[int, Set[Instance]] = {}
    direct_rows = 0
    for qattr in query.qattrs:
        if qattr.direct_elem_count == 0:
            # Existence-only criterion: every instance of the definition
            # is a candidate.
            instance_rows = attributes.lookup(["attr_id"], [qattr.attr_def_id])
            candidates = {(row[0], row[2]) for row in instance_rows}
        else:
            required = qattr.direct_elem_count
            candidates = {
                instance
                for instance, met in matches[qattr.qattr_id].items()
                if len(met) == required
            }
        satisfied[qattr.qattr_id] = candidates
        direct_rows += len(candidates)
    trace.add("attributes-direct", direct_rows)

    # ------------------------------------------------------------------
    # Stage 3: bottom-up containment via the inverted lists.
    # ------------------------------------------------------------------
    indirect_rows = 0
    for depth in range(query.max_depth(), -1, -1):
        for qattr in query.qattrs:
            if qattr.depth != depth or not qattr.child_qattr_ids:
                continue
            base = satisfied[qattr.qattr_id]
            if not base:
                continue
            # For each child criterion, the set of this definition's
            # instances that contain a satisfied child instance.
            surviving = base
            for child_id in qattr.child_qattr_ids:
                child = query.qattr(child_id)
                child_ok = satisfied[child_id]
                if not child_ok:
                    surviving = set()
                    break
                pair_rows = ancestors.lookup(
                    ["desc_attr_id", "anc_attr_id"],
                    [child.attr_def_id, qattr.attr_def_id],
                )
                anc_ok = {
                    (row[0], row[4])
                    for row in pair_rows
                    if row[5] >= 1 and (row[0], row[2]) in child_ok
                }
                surviving = surviving & anc_ok
                if not surviving:
                    break
            satisfied[qattr.qattr_id] = surviving
            indirect_rows += len(surviving)
    trace.add("attributes-indirect", indirect_rows)

    # ------------------------------------------------------------------
    # Stage 4: objects where every top criterion is satisfied.
    # ------------------------------------------------------------------
    result: Optional[Set[int]] = None
    for top_id in query.top_qattr_ids:
        objects = {obj for obj, _seq in satisfied[top_id]}
        result = objects if result is None else (result & objects)
        if not result:
            break
    object_ids = sorted(result or set())
    trace.add("object-ids", len(object_ids))
    record_plan(trace, store.metrics_registry())
    return object_ids


def _match_objects_simple(
    store: MemoryHybridStore,
    query: ShreddedQuery,
    trace: PlanTrace,
) -> List[int]:
    """The §4 simplified plan: with at most one instance of each queried
    attribute per object and no sub-attribute criteria, count matching
    can group by *object* directly — no per-instance bookkeeping and no
    inverted-list stage."""
    trace.add(
        "query-criteria",
        len(query.qattrs) + len(query.qelems),
        f"{len(query.qattrs)} attribute, {len(query.qelems)} element criteria "
        "(simplified plan)",
    )
    elements = store.db.table("elements")
    attributes = store.db.table("attributes")
    e_obj = elements.position("object_id")
    ev_text = elements.position("value_text")
    ev_num = elements.position("value_num")

    # One index seek per criterion; met[qattr][object] = distinct qelems.
    met: Dict[int, Dict[int, Set[int]]] = defaultdict(lambda: defaultdict(set))
    match_rows = 0
    for qelem in query.qelems:
        rows = elements.lookup(["elem_id"], [qelem.elem_def_id])
        op = qelem.op
        if qelem.numeric:
            expected = qelem.value_set if op is Op.IN_SET else qelem.value_num
            position = ev_num
        else:
            expected = qelem.value_set if op is Op.IN_SET else qelem.value_text
            position = ev_text
        for row in rows:
            if op.matches(row[position], expected):
                met[qelem.qattr_id][row[e_obj]].add(qelem.qelem_id)
                match_rows += 1
    trace.add("elements-meeting-criteria", match_rows)

    result: Optional[Set[int]] = None
    satisfied_rows = 0
    for qattr in query.qattrs:
        if qattr.direct_elem_count == 0:
            objects = {
                row[0] for row in attributes.lookup(["attr_id"], [qattr.attr_def_id])
            }
        else:
            required = qattr.direct_elem_count
            objects = {
                obj for obj, hits in met[qattr.qattr_id].items()
                if len(hits) == required
            }
        satisfied_rows += len(objects)
        result = objects if result is None else (result & objects)
        if not result:
            break
    trace.add("attributes-direct", satisfied_rows)
    object_ids = sorted(result or set())
    trace.add("object-ids", len(object_ids))
    return object_ids
