"""Interpreter of the logical plan IR over the memory store.

The Fig-4 object-query plan is built once as a backend-neutral
:class:`~repro.core.logical.LogicalPlan` (see :mod:`repro.core.logical`)
and this module *interprets* it over :class:`MemoryHybridStore` — the
sqlite backend compiles the very same plan object to SQL, so the two
backends can never drift apart stage-wise.

The plan is set-based throughout — every stage is a bulk operation over
whole row sets, never a per-object traversal — and uses the inverted
lists to resolve sub-attribute containment without recursion (paper §4):

1. **ElementSeek** (one per criterion, most-selective-first when
   statistics are available) — probe the ``elem_id`` hash index for the
   criterion's row ids, then run a *vectorized comparison kernel*
   straight over the value column (no row tuples are built), producing
   the matching ``(object, attribute instance)`` id set.  Because all
   criteria are conjunctive, a seek that matches nothing
   short-circuits the remaining stages.
2. **DirectCountMatch** — instances qualify when they contain the
   *required number of distinct* direct element criteria; since each
   criterion contributes one id set, that is exactly the set
   intersection of the qattr's per-seek instance sets.  Criteria with
   no direct elements take every instance of their definition as
   candidates.  Under the §4 simplified rewrite (``plan.simple``),
   the same semijoin runs over object ids directly.
3. **AncestorCountMatch** — bottom-up over the criteria tree: probe the
   inverted sub-attribute → ancestor list by definition pair and
   semijoin its (object, seq) columns against the satisfied child
   instances, keeping ancestor instances that account for *all* child
   criteria.  Because the inverted list spans intervening
   sub-attributes, a query criterion nested one level below another
   matches data any number of levels deeper — and no stage ever
   recurses through the data.
4. **ObjectIntersect** — sorted object-id vectors intersected with the
   merge kernels from :mod:`repro.relational.batch`, rarest criterion
   first so an empty intersection exits early.

The sqlite backend executes the same stages as SQL statements
(:mod:`repro.backends.sqlite`); the two are property-tested to agree.
The pre-columnar row-at-a-time interpreter is kept as
:func:`match_objects_memory_rows` — it is the "before" baseline for
bench E15 and a second oracle for the batch kernels.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..obs.profile import QueryProfile, current_profile
from ..relational.batch import intersect_sorted
from .logical import LogicalPlan, build_plan
from .query import Op, ShreddedQuery
from .storage import MemoryHybridStore, PlanTrace, record_plan

Instance = Tuple[int, int]  # (object_id, seq_id)

#: Stage kinds this interpreter executes.  PLN02 (reprolint) asserts
#: this declaration stays mirrored with the sqlite compiler and with
#: the ``kind`` markers on the stage classes in :mod:`repro.core.logical`.
HANDLED_STAGE_KINDS = (
    "ElementSeek",
    "DirectCountMatch",
    "AncestorCountMatch",
    "ObjectIntersect",
)


def _as_plan(query: Union[ShreddedQuery, LogicalPlan]) -> LogicalPlan:
    if isinstance(query, LogicalPlan):
        return query
    return build_plan(query)


# ---------------------------------------------------------------------------
# Vectorized seek kernels
# ---------------------------------------------------------------------------

def _seek_hits(
    op: Op,
    vals: List[Any],
    expected: Any,
    rowids: Sequence[int],
) -> List[int]:
    """Row ids (of ``rowids``) whose column value matches ``op``.

    One comprehension per operator over the raw value column — the
    vectorized equivalent of calling :meth:`Op.matches` per row, and
    bit-for-bit identical to it: NULL never matches, type-mismatched
    inequalities are False (the except fallback), CONTAINS is substring
    over ``str()``, IN_SET is set membership.
    """
    try:
        if op is Op.EQ:
            # expected is never None (query shredding validates it), so
            # a NULL slot compares unequal without an explicit guard.
            return [r for r in rowids if vals[r] == expected]
        if op is Op.NE:
            return [r for r in rowids if (v := vals[r]) is not None and v != expected]
        if op is Op.IN_SET:
            return [r for r in rowids if vals[r] in expected]
        if op is Op.CONTAINS:
            needle = str(expected)
            return [
                r for r in rowids
                if (v := vals[r]) is not None and needle in str(v)
            ]
        if op is Op.LT:
            return [r for r in rowids if (v := vals[r]) is not None and v < expected]
        if op is Op.LE:
            return [r for r in rowids if (v := vals[r]) is not None and v <= expected]
        if op is Op.GT:
            return [r for r in rowids if (v := vals[r]) is not None and v > expected]
        return [r for r in rowids if (v := vals[r]) is not None and v >= expected]
    except TypeError:
        # Mixed-type column (possible only through raw table writes):
        # fall back to the scalar path, which defines mismatch as False.
        return [r for r in rowids if op.matches(vals[r], expected)]


def _seek_expected(qelem) -> Any:
    if qelem.op is Op.IN_SET:
        return qelem.value_set
    return qelem.value_num if qelem.numeric else qelem.value_text


def match_objects_memory(
    store: MemoryHybridStore,
    query: Union[ShreddedQuery, LogicalPlan],
    trace: Optional[PlanTrace] = None,
) -> List[int]:
    """Interpret the count-matching plan; returns sorted object ids.

    Accepts either a bare :class:`ShreddedQuery` (compiled on the spot,
    unoptimized) or a pre-built :class:`LogicalPlan` (what the catalog's
    plan cache hands down).
    """
    plan = _as_plan(query)
    if trace is None:
        trace = PlanTrace()
    # One contextvar read per query is the whole disabled-profiling
    # cost on this path (bench E13's ≤1% budget).
    prof = current_profile()
    if plan.simple:
        object_ids = _interpret_simple(store, plan, trace, prof)
    else:
        object_ids = _interpret_general(store, plan, trace, prof)
    record_plan(trace, store.metrics_registry())
    if prof is not None:
        prof.record_plan(plan, backend="memory", trace=trace)
    return object_ids


def _interpret_general(
    store: MemoryHybridStore,
    plan: LogicalPlan,
    trace: PlanTrace,
    prof: Optional[QueryProfile] = None,
) -> List[int]:
    query = plan.query
    trace.add(
        "query-criteria",
        len(query.qattrs) + len(query.qelems),
        f"{len(query.qattrs)} attribute, {len(query.qelems)} element criteria",
    )

    elements = store.db.table("elements")
    attributes = store.db.table("attributes")
    ancestors = store.db.table("attr_ancestors")

    e_obj = elements.column_data("object_id")
    e_attr = elements.column_data("attr_id")
    e_seq = elements.column_data("seq_id")
    e_text = elements.column_data("value_text")
    e_num = elements.column_data("value_num")

    # ------------------------------------------------------------------
    # ElementSeek stages (one index probe + comparison kernel per
    # criterion, in plan order).  Each seek yields its instance id set;
    # per-instance criterion counting becomes set intersection below.
    # ------------------------------------------------------------------
    seek_instances: Dict[int, List[Set[Instance]]] = defaultdict(list)
    match_rows = 0
    short_circuited = False
    clock = time.perf_counter if prof is not None else None
    for seek in plan.seeks:
        t0 = clock() if clock is not None else 0.0
        qelem = query.qelems[seek.qelem_id - 1]
        qattr = query.qattr(seek.qattr_id)
        rowids = elements.lookup_rowids(["elem_id"], [qelem.elem_def_id])
        attr_def_id = qattr.attr_def_id
        rowids = [r for r in rowids if e_attr[r] == attr_def_id]
        vals = e_num if qelem.numeric else e_text
        hits = _seek_hits(qelem.op, vals, _seek_expected(qelem), rowids)
        seek_instances[seek.qattr_id].append({(e_obj[r], e_seq[r]) for r in hits})
        seek_rows = len(hits)
        plan.actuals[seek.key()] = seek_rows
        if clock is not None:
            prof.stage_seconds[seek.key()] = clock() - t0
        match_rows += seek_rows
        if seek_rows == 0:
            # Conjunctive query: an unmatched criterion empties the
            # result — skip the remaining seeks entirely (the payoff of
            # most-selective-first ordering).
            short_circuited = True
            break
    trace.add(
        "elements-meeting-criteria",
        match_rows,
        "short-circuited: a criterion matched nothing" if short_circuited else "",
    )
    if short_circuited:
        return _empty_result(plan, trace, simple=False)

    # ------------------------------------------------------------------
    # DirectCountMatch stages (per attribute criterion).  An instance
    # meets the required count of *distinct* criteria exactly when it
    # appears in every per-seek id set — a k-way set intersection.
    # ------------------------------------------------------------------
    satisfied: Dict[int, Set[Instance]] = {}
    direct_rows = 0
    for count in plan.counts:
        t0 = clock() if clock is not None else 0.0
        if count.required == 0:
            # Existence-only criterion: every instance of the definition
            # is a candidate.
            a_rowids = attributes.lookup_rowids(["attr_id"], [count.attr_def_id])
            a_obj = attributes.column_data("object_id")
            a_seq = attributes.column_data("seq_id")
            candidates = {(a_obj[r], a_seq[r]) for r in a_rowids}
        else:
            hit_sets = seek_instances[count.qattr_id]
            candidates = set.intersection(*hit_sets) if hit_sets else set()
        satisfied[count.qattr_id] = candidates
        plan.actuals[count.key()] = len(candidates)
        if clock is not None:
            prof.stage_seconds[count.key()] = clock() - t0
        direct_rows += len(candidates)
    trace.add("attributes-direct", direct_rows)

    # ------------------------------------------------------------------
    # AncestorCountMatch stages (bottom-up containment via the
    # inverted lists, one edge at a time): probe the definition-pair
    # index, then semijoin the id columns directly.
    # ------------------------------------------------------------------
    p_obj = ancestors.column_data("object_id")
    p_desc_seq = ancestors.column_data("desc_seq")
    p_anc_seq = ancestors.column_data("anc_seq")
    p_dist = ancestors.column_data("distance")
    for edge in plan.containments:
        t0 = clock() if clock is not None else 0.0
        base = satisfied[edge.parent_qattr_id]
        if not base:
            plan.actuals[edge.key()] = 0
        elif not satisfied[edge.child_qattr_id]:
            satisfied[edge.parent_qattr_id] = set()
            plan.actuals[edge.key()] = 0
        else:
            child_ok = satisfied[edge.child_qattr_id]
            pair_rowids = ancestors.lookup_rowids(
                ["desc_attr_id", "anc_attr_id"],
                [edge.child_def_id, edge.parent_def_id],
            )
            anc_ok = {
                (p_obj[r], p_anc_seq[r])
                for r in pair_rowids
                if p_dist[r] >= 1 and (p_obj[r], p_desc_seq[r]) in child_ok
            }
            surviving = base & anc_ok
            satisfied[edge.parent_qattr_id] = surviving
            plan.actuals[edge.key()] = len(surviving)
        if clock is not None:
            prof.stage_seconds[edge.key()] = clock() - t0
    indirect_rows = sum(
        len(satisfied[q.qattr_id]) for q in query.qattrs if q.child_qattr_ids
    )
    trace.add("attributes-indirect", indirect_rows)

    # ------------------------------------------------------------------
    # ObjectIntersect: every top criterion satisfied — sorted id
    # vectors merged rarest-first, exiting early when one runs dry.
    # ------------------------------------------------------------------
    t0 = clock() if clock is not None else 0.0
    result: Optional[List[int]] = None
    for top_id in plan.intersect.top_qattr_ids:
        vector = sorted({obj for obj, _seq in satisfied[top_id]})
        result = vector if result is None else intersect_sorted(result, vector)
        if not result:
            break
    object_ids = result or []
    plan.actuals[plan.intersect.key()] = len(object_ids)
    if clock is not None:
        prof.stage_seconds[plan.intersect.key()] = clock() - t0
    trace.add("object-ids", len(object_ids))
    return object_ids


def _interpret_simple(
    store: MemoryHybridStore,
    plan: LogicalPlan,
    trace: PlanTrace,
    prof: Optional[QueryProfile] = None,
) -> List[int]:
    """The §4 simplified rewrite: with at most one instance of each
    queried attribute per object and no sub-attribute criteria, count
    matching can group by *object* directly — per-seek object id sets
    intersected per criterion, no per-instance bookkeeping and no
    inverted-list stage."""
    query = plan.query
    trace.add(
        "query-criteria",
        len(query.qattrs) + len(query.qelems),
        f"{len(query.qattrs)} attribute, {len(query.qelems)} element criteria "
        "(simplified plan)",
    )
    elements = store.db.table("elements")
    attributes = store.db.table("attributes")
    e_obj = elements.column_data("object_id")
    e_text = elements.column_data("value_text")
    e_num = elements.column_data("value_num")

    # One index probe + kernel per criterion; each seek yields the
    # object ids it matched.
    seek_objects: Dict[int, List[Set[int]]] = defaultdict(list)
    match_rows = 0
    short_circuited = False
    clock = time.perf_counter if prof is not None else None
    for seek in plan.seeks:
        t0 = clock() if clock is not None else 0.0
        qelem = query.qelems[seek.qelem_id - 1]
        rowids = elements.lookup_rowids(["elem_id"], [qelem.elem_def_id])
        vals = e_num if qelem.numeric else e_text
        hits = _seek_hits(qelem.op, vals, _seek_expected(qelem), rowids)
        seek_objects[seek.qattr_id].append({e_obj[r] for r in hits})
        seek_rows = len(hits)
        plan.actuals[seek.key()] = seek_rows
        if clock is not None:
            prof.stage_seconds[seek.key()] = clock() - t0
        match_rows += seek_rows
        if seek_rows == 0:
            short_circuited = True
            break
    trace.add(
        "elements-meeting-criteria",
        match_rows,
        "short-circuited: a criterion matched nothing" if short_circuited else "",
    )
    if short_circuited:
        return _empty_result(plan, trace, simple=True)

    result: Optional[List[int]] = None
    satisfied_rows = 0
    for count in plan.counts:
        t0 = clock() if clock is not None else 0.0
        if count.required == 0:
            a_rowids = attributes.lookup_rowids(["attr_id"], [count.attr_def_id])
            a_obj = attributes.column_data("object_id")
            objects = {a_obj[r] for r in a_rowids}
        else:
            hit_sets = seek_objects[count.qattr_id]
            objects = set.intersection(*hit_sets) if hit_sets else set()
        plan.actuals[count.key()] = len(objects)
        if clock is not None:
            prof.stage_seconds[count.key()] = clock() - t0
        satisfied_rows += len(objects)
        vector = sorted(objects)
        result = vector if result is None else intersect_sorted(result, vector)
        # No early exit on an empty running intersection: the sqlite
        # compiler executes every DirectCountMatch stage regardless, and
        # the per-stage actuals must stay backend-identical (profile
        # parity).  The expensive case — a criterion matching nothing —
        # already short-circuited at the seek stage above.
    trace.add("attributes-direct", satisfied_rows)
    object_ids = result or []
    plan.actuals[plan.intersect.key()] = len(object_ids)
    trace.add("object-ids", len(object_ids))
    return object_ids


def _empty_result(plan: LogicalPlan, trace: PlanTrace, simple: bool) -> List[int]:
    """Finish the trace uniformly after a seek short-circuit: the
    remaining stages run over empty inputs, so record them as zero-row
    stages (both backends emit the identical stage sequence)."""
    for seek in plan.seeks:
        plan.actuals.setdefault(seek.key(), 0)
    for count in plan.counts:
        plan.actuals[count.key()] = 0
    trace.add("attributes-direct", 0)
    if not simple:
        for edge in plan.containments:
            plan.actuals[edge.key()] = 0
        trace.add("attributes-indirect", 0)
    plan.actuals[plan.intersect.key()] = 0
    trace.add("object-ids", 0)
    return []


# ---------------------------------------------------------------------------
# Legacy row-at-a-time interpreter (pre-columnar).  Kept as the E15
# "before" baseline and as a second oracle the batch interpreter is
# tested against; not used by the catalog's query path.
# ---------------------------------------------------------------------------

def match_objects_memory_rows(
    store: MemoryHybridStore,
    query: Union[ShreddedQuery, LogicalPlan],
    trace: Optional[PlanTrace] = None,
) -> List[int]:
    """Row-at-a-time reference interpretation of the plan."""
    plan = _as_plan(query)
    if trace is None:
        trace = PlanTrace()
    if plan.simple:
        object_ids = _interpret_simple_rows(store, plan, trace)
    else:
        object_ids = _interpret_general_rows(store, plan, trace)
    record_plan(trace, store.metrics_registry())
    return object_ids


def _interpret_general_rows(
    store: MemoryHybridStore,
    plan: LogicalPlan,
    trace: PlanTrace,
) -> List[int]:
    query = plan.query
    trace.add(
        "query-criteria",
        len(query.qattrs) + len(query.qelems),
        f"{len(query.qattrs)} attribute, {len(query.qelems)} element criteria",
    )

    elements = store.db.table("elements")
    attributes = store.db.table("attributes")
    ancestors = store.db.table("attr_ancestors")

    # matches[qattr_id][instance] = set of qelem ids that matched there
    matches: Dict[int, Dict[Instance, Set[int]]] = defaultdict(lambda: defaultdict(set))
    match_rows = 0
    ev_text = elements.position("value_text")
    ev_num = elements.position("value_num")
    e_obj = elements.position("object_id")
    e_seq = elements.position("seq_id")
    short_circuited = False
    for seek in plan.seeks:
        qelem = query.qelems[seek.qelem_id - 1]
        qattr = query.qattr(seek.qattr_id)
        rows = elements.lookup(["elem_id"], [qelem.elem_def_id])
        op = qelem.op
        expected = _seek_expected(qelem)
        position = ev_num if qelem.numeric else ev_text
        seek_rows = 0
        for row in rows:
            if row[1] != qattr.attr_def_id:
                continue
            if op.matches(row[position], expected):
                matches[seek.qattr_id][(row[e_obj], row[e_seq])].add(seek.qelem_id)
                seek_rows += 1
        plan.actuals[seek.key()] = seek_rows
        match_rows += seek_rows
        if seek_rows == 0:
            short_circuited = True
            break
    trace.add(
        "elements-meeting-criteria",
        match_rows,
        "short-circuited: a criterion matched nothing" if short_circuited else "",
    )
    if short_circuited:
        return _empty_result(plan, trace, simple=False)

    satisfied: Dict[int, Set[Instance]] = {}
    direct_rows = 0
    for count in plan.counts:
        if count.required == 0:
            instance_rows = attributes.lookup(["attr_id"], [count.attr_def_id])
            candidates = {(row[0], row[2]) for row in instance_rows}
        else:
            candidates = {
                instance
                for instance, met in matches[count.qattr_id].items()
                if len(met) == count.required
            }
        satisfied[count.qattr_id] = candidates
        plan.actuals[count.key()] = len(candidates)
        direct_rows += len(candidates)
    trace.add("attributes-direct", direct_rows)

    for edge in plan.containments:
        base = satisfied[edge.parent_qattr_id]
        if not base:
            plan.actuals[edge.key()] = 0
        elif not satisfied[edge.child_qattr_id]:
            satisfied[edge.parent_qattr_id] = set()
            plan.actuals[edge.key()] = 0
        else:
            child_ok = satisfied[edge.child_qattr_id]
            pair_rows = ancestors.lookup(
                ["desc_attr_id", "anc_attr_id"],
                [edge.child_def_id, edge.parent_def_id],
            )
            anc_ok = {
                (row[0], row[4])
                for row in pair_rows
                if row[5] >= 1 and (row[0], row[2]) in child_ok
            }
            surviving = base & anc_ok
            satisfied[edge.parent_qattr_id] = surviving
            plan.actuals[edge.key()] = len(surviving)
    indirect_rows = sum(
        len(satisfied[q.qattr_id]) for q in query.qattrs if q.child_qattr_ids
    )
    trace.add("attributes-indirect", indirect_rows)

    result: Optional[Set[int]] = None
    for top_id in plan.intersect.top_qattr_ids:
        objects = {obj for obj, _seq in satisfied[top_id]}
        result = objects if result is None else (result & objects)
        if not result:
            break
    object_ids = sorted(result or set())
    plan.actuals[plan.intersect.key()] = len(object_ids)
    trace.add("object-ids", len(object_ids))
    return object_ids


def _interpret_simple_rows(
    store: MemoryHybridStore,
    plan: LogicalPlan,
    trace: PlanTrace,
) -> List[int]:
    query = plan.query
    trace.add(
        "query-criteria",
        len(query.qattrs) + len(query.qelems),
        f"{len(query.qattrs)} attribute, {len(query.qelems)} element criteria "
        "(simplified plan)",
    )
    elements = store.db.table("elements")
    attributes = store.db.table("attributes")
    e_obj = elements.position("object_id")
    ev_text = elements.position("value_text")
    ev_num = elements.position("value_num")

    met: Dict[int, Dict[int, Set[int]]] = defaultdict(lambda: defaultdict(set))
    match_rows = 0
    short_circuited = False
    for seek in plan.seeks:
        qelem = query.qelems[seek.qelem_id - 1]
        rows = elements.lookup(["elem_id"], [qelem.elem_def_id])
        op = qelem.op
        expected = _seek_expected(qelem)
        position = ev_num if qelem.numeric else ev_text
        seek_rows = 0
        for row in rows:
            if op.matches(row[position], expected):
                met[seek.qattr_id][row[e_obj]].add(seek.qelem_id)
                seek_rows += 1
        plan.actuals[seek.key()] = seek_rows
        match_rows += seek_rows
        if seek_rows == 0:
            short_circuited = True
            break
    trace.add(
        "elements-meeting-criteria",
        match_rows,
        "short-circuited: a criterion matched nothing" if short_circuited else "",
    )
    if short_circuited:
        return _empty_result(plan, trace, simple=True)

    result: Optional[Set[int]] = None
    satisfied_rows = 0
    for count in plan.counts:
        if count.required == 0:
            objects = {
                row[0] for row in attributes.lookup(["attr_id"], [count.attr_def_id])
            }
        else:
            objects = {
                obj for obj, hits in met[count.qattr_id].items()
                if len(hits) == count.required
            }
        plan.actuals[count.key()] = len(objects)
        satisfied_rows += len(objects)
        result = objects if result is None else (result & objects)
    trace.add("attributes-direct", satisfied_rows)
    object_ids = sorted(result or set())
    plan.actuals[plan.intersect.key()] = len(object_ids)
    trace.add("object-ids", len(object_ids))
    return object_ids
