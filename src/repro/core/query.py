"""Metadata-attribute queries (paper §4).

Scientists query the catalog for *objects* whose metadata attributes
meet criteria — "unordered queries over metadata attributes".  The
programmatic surface mirrors the myLEAD Java API the paper shows::

    query = ObjectQuery()
    grid = AttributeCriteria("grid", "ARPS")
    grid.add_element("dx", "ARPS", 1000, Op.EQ)
    stretching = AttributeCriteria("grid-stretching", "ARPS")
    stretching.add_element("dzmin", "ARPS", 100, Op.EQ)
    grid.add_attribute(stretching)
    query.add_attribute(grid)

(``MyFile``/``MyAttr`` aliases are provided for paper fidelity, along
with the ``MYEQUAL``-style operator constants.)

Before execution a query is itself **shredded** (§4): criteria are
resolved against the definition registry and flattened into criterion
rows with the required direct/subtree counts — the inputs of the Fig-4
count-matching plan.  A criterion that references an unknown or
non-queryable definition fails fast with :class:`QueryError`; this is
the query-side payoff of validating dynamic attributes on insert.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from ..errors import QueryError
from .definitions import ADMIN_SCOPE, DefinitionRegistry
from .schema import ValueType


class Op(enum.Enum):
    """Comparison operators for element criteria.

    ``IN_SET`` matches any value of a collection — the operator
    ontology-based query expansion produces (§3: definitions "could also
    be connected to an ontology for enhanced search capabilities").
    """

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    CONTAINS = "contains"
    IN_SET = "in"

    def matches(self, actual, expected) -> bool:
        """Evaluate against an actual value (used by scan baselines and
        the memory planner; SQL backends render the operator instead)."""
        if actual is None:
            return False
        if self is Op.IN_SET:
            return actual in expected
        if self is Op.CONTAINS:
            return str(expected) in str(actual)
        if self is Op.EQ:
            return actual == expected
        if self is Op.NE:
            return actual != expected
        try:
            if self is Op.LT:
                return actual < expected
            if self is Op.LE:
                return actual <= expected
            if self is Op.GT:
                return actual > expected
            return actual >= expected
        except TypeError:
            return False


# Paper-style operator constants.
MYEQUAL = Op.EQ
MYNOTEQUAL = Op.NE
MYLESS = Op.LT
MYLESSEQUAL = Op.LE
MYGREATER = Op.GT
MYGREATEREQUAL = Op.GE
MYCONTAINS = Op.CONTAINS


class ElementCriterion:
    """One comparison against a metadata element's value."""

    __slots__ = ("name", "source", "value", "op")

    def __init__(self, name: str, source: str, value, op: Op = Op.EQ) -> None:
        if not isinstance(op, Op):
            raise QueryError(f"op must be an Op, got {op!r}")
        self.name = name
        self.source = source
        self.value = value
        self.op = op

    def __repr__(self) -> str:  # pragma: no cover
        return f"ElementCriterion({self.name!r} {self.op.value} {self.value!r})"


class AttributeCriteria:
    """Criteria on one metadata attribute: element comparisons plus
    nested sub-attribute criteria.  All criteria are conjunctive."""

    def __init__(self, name: str, source: str = "") -> None:
        self.name = name
        self.source = source
        self.elements: List[ElementCriterion] = []
        self.sub_attributes: List["AttributeCriteria"] = []

    def add_element(
        self,
        name: str,
        source: Optional[str] = None,
        value=None,
        op: Op = Op.EQ,
    ) -> "AttributeCriteria":
        """Add an element comparison.  ``source=None`` inherits this
        attribute's source (matching the paper's
        ``stAttr.addElement("dzmin", 100, MYEQUAL)`` shorthand)."""
        self.elements.append(
            ElementCriterion(name, self.source if source is None else source, value, op)
        )
        return self

    def add_attribute(self, sub: "AttributeCriteria") -> "AttributeCriteria":
        self.sub_attributes.append(sub)
        return self

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"AttributeCriteria({self.name!r}, elements={len(self.elements)}, "
            f"subs={len(self.sub_attributes)})"
        )


class ObjectQuery:
    """A conjunctive query over metadata attributes."""

    def __init__(self) -> None:
        self.attributes: List[AttributeCriteria] = []

    def add_attribute(self, criteria: AttributeCriteria) -> "ObjectQuery":
        self.attributes.append(criteria)
        return self

    def is_empty(self) -> bool:
        return not self.attributes

    def __repr__(self) -> str:  # pragma: no cover
        return f"ObjectQuery(attributes={len(self.attributes)})"


# Paper-fidelity aliases (the Java API of §4).
MyFile = ObjectQuery
MyAttr = AttributeCriteria


# ---------------------------------------------------------------------------
# Query shredding
# ---------------------------------------------------------------------------

class QAttr:
    """A shredded attribute criterion (a row of the temporary
    query-attribute table of §4)."""

    __slots__ = (
        "qattr_id",
        "attr_def_id",
        "parent_qattr_id",
        "depth",
        "direct_elem_count",
        "subtree_elem_count",
        "subtree_attr_count",
        "child_qattr_ids",
    )

    def __init__(
        self,
        qattr_id: int,
        attr_def_id: int,
        parent_qattr_id: Optional[int],
        depth: int,
    ) -> None:
        self.qattr_id = qattr_id
        self.attr_def_id = attr_def_id
        self.parent_qattr_id = parent_qattr_id
        self.depth = depth
        self.direct_elem_count = 0
        self.subtree_elem_count = 0
        self.subtree_attr_count = 1  # self
        self.child_qattr_ids: List[int] = []


class QElem:
    """A shredded element criterion (query-element table row).

    For ``Op.IN_SET`` the accepted values live in ``value_set`` (a
    frozenset of floats or strings per ``numeric``); otherwise the
    single comparison value is in ``value_num``/``value_text``.
    """

    __slots__ = (
        "qelem_id", "qattr_id", "elem_def_id", "op",
        "value_text", "value_num", "value_set", "numeric",
    )

    def __init__(
        self,
        qelem_id: int,
        qattr_id: int,
        elem_def_id: int,
        op: Op,
        value_text: Optional[str],
        value_num: Optional[float],
        numeric: bool,
        value_set: Optional[frozenset] = None,
    ) -> None:
        self.qelem_id = qelem_id
        self.qattr_id = qattr_id
        self.elem_def_id = elem_def_id
        self.op = op
        self.value_text = value_text
        self.value_num = value_num
        self.value_set = value_set
        self.numeric = numeric


class ShreddedQuery:
    """The flattened criteria a store's planner executes.

    ``simple`` is set by :func:`shred_query` when the §4 simplified plan
    applies (see :meth:`is_simple`); planners use it to skip per-instance
    grouping and the inverted-list stage.
    """

    def __init__(self) -> None:
        self.qattrs: List[QAttr] = []
        self.qelems: List[QElem] = []
        self.top_qattr_ids: List[int] = []
        self.simple = False

    def qattr(self, qattr_id: int) -> QAttr:
        return self.qattrs[qattr_id - 1]

    def max_depth(self) -> int:
        return max((q.depth for q in self.qattrs), default=0)

    def elements_of(self, qattr_id: int) -> List[QElem]:
        return [e for e in self.qelems if e.qattr_id == qattr_id]

    def is_simple(self, registry) -> bool:
        """True when the §4 simplified plan applies: no sub-attribute
        criteria, and no queried attribute can occur more than once per
        object — so per-object counting replaces per-instance counting.

        Dynamic definitions always admit multiple instances (their host
        node is repeatable); structural definitions follow their schema
        node's ``repeatable`` flag.
        """
        for qattr in self.qattrs:
            if qattr.child_qattr_ids:
                return False
            attr_def = registry.attribute(qattr.attr_def_id)
            if not attr_def.structural:
                return False
            node = registry.schema.node_by_order(attr_def.schema_order)
            if node.repeatable:
                return False
        return True

    def describe(self) -> str:
        lines = []
        for q in self.qattrs:
            pad = "  " * q.depth
            lines.append(
                f"{pad}qattr {q.qattr_id} (def {q.attr_def_id}): "
                f"direct={q.direct_elem_count} subtree_elems={q.subtree_elem_count} "
                f"subtree_attrs={q.subtree_attr_count}"
            )
            for e in self.elements_of(q.qattr_id):
                if e.op is Op.IN_SET:
                    value = sorted(e.value_set)  # type: ignore[arg-type]
                else:
                    value = e.value_num if e.numeric else e.value_text
                lines.append(f"{pad}  qelem {e.qelem_id}: def {e.elem_def_id} {e.op.value} {value!r}")
        return "\n".join(lines)


def shred_query(
    query: ObjectQuery,
    registry: DefinitionRegistry,
    user: Optional[str] = None,
) -> ShreddedQuery:
    """Resolve and flatten ``query`` against ``registry`` (paper §4:
    "queries are first shredded to determine the number of metadata
    attribute criteria that must be met").

    Raises
    ------
    QueryError
        For unknown definitions, non-queryable attributes, definitions
        not visible to ``user``, type-invalid comparison values, or an
        empty query.
    """
    if query.is_empty():
        raise QueryError("query has no attribute criteria")
    shredded = ShreddedQuery()

    def visible(scope: str) -> bool:
        return scope == ADMIN_SCOPE or (user is not None and scope == user)

    def walk(criteria: AttributeCriteria, parent: Optional[QAttr], depth: int) -> QAttr:
        parent_def = registry.attribute(parent.attr_def_id) if parent else None
        attr_def = registry.lookup_attribute(
            criteria.name, criteria.source, user=user, parent=parent_def
        )
        if attr_def is None:
            raise QueryError(
                f"no attribute definition ({criteria.name!r}, {criteria.source!r})"
                + (f" under {parent_def.name!r}" if parent_def else "")
            )
        if not visible(attr_def.scope):
            raise QueryError(
                f"attribute ({criteria.name!r}, {criteria.source!r}) is private "
                f"to another user"
            )
        if not attr_def.queryable:
            raise QueryError(
                f"attribute ({criteria.name!r}, {criteria.source!r}) is not queryable"
            )
        qattr = QAttr(
            len(shredded.qattrs) + 1,
            attr_def.attr_id,
            parent.qattr_id if parent else None,
            depth,
        )
        shredded.qattrs.append(qattr)
        if parent is not None:
            parent.child_qattr_ids.append(qattr.qattr_id)

        for criterion in criteria.elements:
            elem_def = registry.lookup_element(attr_def, criterion.name, criterion.source)
            if elem_def is None and criterion.source == "":
                # Leaf attributes register their element under their own
                # name; allow the common shorthand of querying them by the
                # attribute name with an empty source.
                elem_def = registry.lookup_element(attr_def, criterion.name, attr_def.source)
            if elem_def is None:
                raise QueryError(
                    f"no element definition ({criterion.name!r}, "
                    f"{criterion.source!r}) for attribute {criteria.name!r}"
                )
            numeric = elem_def.value_type in (ValueType.INTEGER, ValueType.FLOAT)
            value = criterion.value
            value_set: Optional[frozenset] = None
            value_num: Optional[float] = None
            value_text: Optional[str] = None
            if criterion.op is Op.IN_SET:
                try:
                    values = list(value)
                except TypeError:
                    raise QueryError(
                        f"IN_SET criterion on {criterion.name!r} needs an "
                        f"iterable of values, got {value!r}"
                    ) from None
                if not values:
                    raise QueryError(
                        f"IN_SET criterion on {criterion.name!r} has no values"
                    )
                if numeric:
                    try:
                        value_set = frozenset(float(v) for v in values)
                    except (TypeError, ValueError):
                        raise QueryError(
                            f"IN_SET criterion on numeric element "
                            f"{criterion.name!r} has non-numeric values"
                        ) from None
                else:
                    value_set = frozenset(str(v) for v in values)
            elif numeric:
                try:
                    value_num = float(value)
                except (TypeError, ValueError):
                    raise QueryError(
                        f"criterion on numeric element {criterion.name!r} has "
                        f"non-numeric value {value!r}"
                    ) from None
                if criterion.op is Op.CONTAINS:
                    raise QueryError(
                        f"CONTAINS is not defined for numeric element {criterion.name!r}"
                    )
            else:
                value_text = str(value)
            shredded.qelems.append(
                QElem(
                    len(shredded.qelems) + 1,
                    qattr.qattr_id,
                    elem_def.elem_id,
                    criterion.op,
                    value_text,
                    value_num,
                    numeric,
                    value_set=value_set,
                )
            )
            qattr.direct_elem_count += 1

        for sub in criteria.sub_attributes:
            child = walk(sub, qattr, depth + 1)
            qattr.subtree_elem_count += child.subtree_elem_count
            qattr.subtree_attr_count += child.subtree_attr_count
        qattr.subtree_elem_count += qattr.direct_elem_count
        if qattr.direct_elem_count == 0 and not criteria.sub_attributes:
            # An attribute criterion with no conditions is an existence
            # test — allowed, it just requires one instance of the def.
            pass
        return qattr

    for top in query.attributes:
        qattr = walk(top, None, 0)
        shredded.top_qattr_ids.append(qattr.qattr_id)
    shredded.simple = shredded.is_simple(registry)
    return shredded
