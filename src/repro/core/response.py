"""Query-response construction (paper §5).

Responses are rebuilt from the stored CLOBs plus the schema-level
global ordering, using only set-based operations:

1. Project the CLOB keys ``(object, schema order, sequence)`` for the
   result objects — the CLOB *text* is not touched yet ("the join can
   utilize the index without accessing the CLOBs until needed in the
   final join").
2. Join with the node-ancestor inverted list to find the **distinct**
   wrapper nodes each object needs (many attributes are optional, so
   the required ancestors differ per object).
3. Join with the global-ordering table to turn each required ancestor
   into an opening tag at its order and a closing tag after its
   ``last_child_order`` — no external tagger.
4. Final join fetches the CLOB text and a single sort of the event rows
   yields the tagged document.

Event sorting key: ``(position, sequence, close-depth)`` where opening
tags sort before content at the same order (sequence 0), closing tags
sort after everything at their ``last_child_order`` (sequence ∞), and
deeper nodes close first when several close at the same position.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .storage import MemoryHybridStore

_OPEN = 0
_CONTENT = 1
_CLOSE = 2

_INF_SEQ = 1 << 60


def build_responses_memory(
    store: MemoryHybridStore, object_ids: Sequence[int]
) -> Dict[int, str]:
    """Reconstruct tagged XML for each object; objects unknown to the
    store are silently absent from the result (mirroring a join)."""
    schema = store.schema
    assert schema is not None, "schema not installed"
    clobs = store.db.table("clobs")
    node_ancestors = store.db.table("node_ancestors")
    schema_order = store.db.table("schema_order")

    # Global-ordering table: order -> (tag, last_child_order).  Loaded
    # once per call; it is schema-sized, not data-sized.
    order_info: Dict[int, Tuple[str, int]] = {
        order: (tag, last)
        for order, tag, last in schema_order.iter_values(
            "node_order", "tag", "last_child_order"
        )
    }
    ancestor_map: Dict[int, List[int]] = {}
    for node, anc in node_ancestors.iter_values("node_order", "ancestor_order"):
        ancestor_map.setdefault(node, []).append(anc)

    root_order = 1
    root_tag = order_info[root_order][0]

    c_order = clobs.column_data("schema_order")
    c_seq = clobs.column_data("clob_seq")
    c_text = clobs.column_data("content")

    responses: Dict[int, str] = {}
    for object_id in object_ids:
        if not store.has_object(object_id):
            continue
        # One index probe per object; both passes below reuse it and
        # read straight from the key/content columns.
        rowids = clobs.lookup_rowids(["object_id"], [object_id])
        # Stage 1+2: distinct required ancestors from the CLOB keys
        # (content deferred to the final join).
        required: set = set()
        for r in rowids:
            for anc in ancestor_map.get(c_order[r], ()):
                required.add(anc)
        if not rowids:
            responses[object_id] = f"<{root_tag}></{root_tag}>"
            continue
        # Stage 3: open/close tag events from the global-ordering table.
        events: List[Tuple[int, int, int, int, str]] = []
        for anc in required:
            tag, last_child = order_info[anc]
            events.append((anc, 0, _OPEN, -anc, f"<{tag}>"))
            events.append((last_child, _INF_SEQ, _CLOSE, -anc, f"</{tag}>"))
        # Stage 4: final join — fetch CLOB text.
        for r in rowids:
            events.append((c_order[r], c_seq[r], _CONTENT, 0, c_text[r]))
        events.sort(key=lambda e: (e[0], e[1], e[2], e[3]))
        responses[object_id] = "".join(e[4] for e in events)
    record_response_metrics(store.metrics_registry(), responses)
    return responses


def record_response_metrics(registry, responses: Dict[int, str]) -> None:
    """Count built responses.  Both backends route through this one
    helper so the response counters have a single creation call site
    (OBS01)."""
    registry.counter(
        "response_documents_total", "tagged XML responses built"
    ).inc(len(responses))
    registry.counter(
        "response_bytes_total", "bytes of tagged XML serialized"
    ).inc(sum(len(text) for text in responses.values()))
