"""Write-invalidated LRU cache of query *results* (object-id lists).

The plan cache (:class:`~repro.core.logical.PlanCache`) saves the
optimizer's work for repeated query *templates*; under a served
workload the same fully-bound query — template *and* literals — repeats
too (a portal polling ``themekey = "precipitation"``), and its answer
only changes when the catalog changes.  :class:`QueryResultCache`
memoizes the matching object ids for exactly that case.

Keys and invalidation:

* the **key** is the query's plan shape plus the literal comparison
  values of every element criterion (:func:`result_key`).  Ontology
  expansion happens before query shredding, so an expanded and an
  unexpanded query produce different shredded literals and therefore
  different keys — expansion is part of the key by construction;
* the **token** is the owning catalog's
  ``(stats generation, data version)`` pair
  (:meth:`~repro.core.stats.CatalogStatistics.cache_token`).  Every
  write moves it — deletes and definition changes bump the generation,
  ingests bump the data version — and the cache drops all entries the
  moment it sees a new token, so a hit can never serve pre-write
  results.  A result computed *concurrently with* a write carries the
  token read before execution; :meth:`store` refuses it once the token
  moved, closing the race where a stale answer would be inserted into
  a freshly invalidated cache.

The cache is thread-safe and returns defensive copies: callers may
mutate the list they get without corrupting the cached entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, List, Optional, Tuple

from .logical import plan_shape
from .query import ShreddedQuery

__all__ = ["QueryResultCache", "result_key"]


def result_key(query: ShreddedQuery) -> Tuple:
    """The cache key of a fully-bound shredded query: its plan shape
    (criteria tree, definition ids, operators) plus every element
    criterion's literal value(s)."""
    literals = tuple(
        (
            e.qelem_id,
            e.value_text,
            e.value_num,
            tuple(sorted(e.value_set)) if e.value_set is not None else None,
        )
        for e in query.qelems
    )
    return (plan_shape(query), literals)


class QueryResultCache:
    """Token-guarded LRU of ``key -> object id list``.

    ``on_invalidate`` (if set) is called with a *cause* string each
    time a wipe drops live entries: ``"generation"`` when the
    statistics generation moved (deletes, definition changes),
    ``"data_version"`` when only the data version moved (ingest), and
    ``"manual"`` for an explicit :meth:`clear`.  The owning catalog
    mirrors the causes into ``query_cache_invalidations_total`` and
    the event log.
    """

    def __init__(
        self,
        capacity: int = 256,
        on_invalidate: Optional[Callable[[str], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("result cache capacity must be >= 1")
        self.capacity = capacity
        self.on_invalidate = on_invalidate
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        self._token: Optional[Tuple] = None
        #: Lifetime counts, mirrored into the owning catalog's metrics.
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def _sync_token(self, token: Tuple) -> None:
        """Drop everything when the catalog moved past the token the
        entries were computed under.  Caller holds the lock."""
        if self._token != token:
            if self._entries:
                self.invalidations += 1
                self._entries.clear()
                if self.on_invalidate is not None:
                    # Token is (stats generation, data version): blame
                    # whichever component moved.
                    cause = "generation"
                    if (
                        self._token is not None
                        and token is not None
                        and self._token[0] == token[0]
                    ):
                        cause = "data_version"
                    self.on_invalidate(cause)
            self._token = token

    def lookup(self, key: Tuple, token: Tuple) -> Optional[List[int]]:
        with self._lock:
            self._sync_token(token)
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return list(entry)

    def store(self, key: Tuple, token: Tuple, object_ids: List[int]) -> int:
        """Insert a computed result; returns how many entries the LRU
        evicted (the caller mirrors that into its metrics)."""
        with self._lock:
            if self._token != token:
                # Computed against a catalog state that no longer
                # exists (a write landed mid-query): unsafe to keep.
                return 0
            self._entries[key] = list(object_ids)
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
            return evicted

    def clear(self) -> None:
        with self._lock:
            had_entries = bool(self._entries)
            self._entries.clear()
            self._token = None
            if had_entries and self.on_invalidate is not None:
                self.on_invalidate("manual")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
