"""Annotated schema model (paper §2).

The hybrid approach starts from the community XML schema, *annotated*
with which elements are metadata attributes, sub-attributes, and
metadata elements.  (The paper's conclusion proposes exactly this: "a
framework for metadata catalogs ... based on an annotated schema to
indicate which schema elements are structural or dynamic metadata
attributes and elements".)

Node kinds
----------

``STRUCTURAL``
    Interior node *above* the metadata attributes (e.g. ``keywords``,
    ``idinfo``).  Structural nodes participate in the global ordering
    and appear in responses only as wrapper tags.
``ATTRIBUTE``
    A metadata attribute — a single concept, stored both as a CLOB and
    shredded.  May be a leaf ("both a metadata attribute and a metadata
    element"), in which case :attr:`SchemaNode.is_element` is true.
``SUB_ATTRIBUTE``
    Interior node strictly inside an attribute subtree.
``ELEMENT``
    Leaf inside an attribute subtree; holds the actual data value.

Dynamic attributes
------------------

An ``ATTRIBUTE`` node may carry a :class:`DynamicSpec` describing how
the recursive subtree below it encodes user-defined attributes: which
child names the attribute (``enttypl``), which gives its source
(``enttypds``), the recursive item tag (``attr``) and its label /
source / value tags.  See :mod:`repro.core.shredder` for how recursion
"disappears" at shred time.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import SchemaError


class NodeKind(enum.Enum):
    STRUCTURAL = "structural"
    ATTRIBUTE = "attribute"
    SUB_ATTRIBUTE = "sub_attribute"
    ELEMENT = "element"


class ValueType(enum.Enum):
    """Declared type of a metadata element's value.

    Used both for validation at shred time and for typed comparison in
    queries (a ``dx = 1000`` criterion compares numerically).
    """

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    DATE = "date"

    def parse(self, raw: str):
        """Parse raw character data into the typed value.

        Raises
        ------
        ValueError
            If the text does not conform to the declared type.
        """
        raw = raw.strip()
        if self is ValueType.STRING:
            return raw
        if self is ValueType.INTEGER:
            return int(raw)
        if self is ValueType.FLOAT:
            return float(raw)
        # DATE: ISO-8601 calendar date, kept as a normalized string so it
        # sorts correctly both in the engine and in sqlite.
        parts = raw.split("-")
        if len(parts) != 3:
            raise ValueError(f"not an ISO date: {raw!r}")
        y, m, d = (int(p) for p in parts)
        if not (1 <= m <= 12 and 1 <= d <= 31):
            raise ValueError(f"not a valid date: {raw!r}")
        return f"{y:04d}-{m:02d}-{d:02d}"


class DynamicSpec:
    """How a dynamic attribute subtree encodes user-defined attributes.

    Matches the LEAD ``detailed`` convention of the paper (§3) but with
    every tag configurable, so other community schemas can annotate
    their own dynamic sections:

    * ``entity_tag`` wraps the naming block (``enttyp``); inside it,
      ``name_tag`` (``enttypl``) holds the attribute name and
      ``source_tag`` (``enttypds``) the source.
    * ``item_tag`` (``attr``) is the recursive item; its ``label_tag``
      (``attrlabl``) and ``defs_tag`` (``attrdefs``) name each
      sub-attribute or element; ``value_tag`` (``attrv``) marks a leaf
      element carrying a value; a nested ``item_tag`` marks a
      sub-attribute.
    """

    __slots__ = (
        "entity_tag",
        "name_tag",
        "source_tag",
        "item_tag",
        "label_tag",
        "defs_tag",
        "value_tag",
    )

    def __init__(
        self,
        entity_tag: str = "enttyp",
        name_tag: str = "enttypl",
        source_tag: str = "enttypds",
        item_tag: str = "attr",
        label_tag: str = "attrlabl",
        defs_tag: str = "attrdefs",
        value_tag: str = "attrv",
    ) -> None:
        self.entity_tag = entity_tag
        self.name_tag = name_tag
        self.source_tag = source_tag
        self.item_tag = item_tag
        self.label_tag = label_tag
        self.defs_tag = defs_tag
        self.value_tag = value_tag


class SchemaNode:
    """One element declaration in the annotated schema."""

    __slots__ = (
        "tag",
        "kind",
        "children",
        "parent",
        "repeatable",
        "required",
        "queryable",
        "is_element",
        "value_type",
        "dynamic",
        "has_xml_attributes",
        "order",
        "last_child_order",
    )

    def __init__(
        self,
        tag: str,
        kind: NodeKind,
        children: Optional[Sequence["SchemaNode"]] = None,
        repeatable: bool = False,
        required: bool = False,
        queryable: bool = True,
        is_element: bool = False,
        value_type: ValueType = ValueType.STRING,
        dynamic: Optional[DynamicSpec] = None,
        has_xml_attributes: bool = False,
    ) -> None:
        self.tag = tag
        self.kind = kind
        self.children: List[SchemaNode] = list(children or [])
        self.parent: Optional[SchemaNode] = None
        self.repeatable = repeatable
        self.required = required
        self.queryable = queryable
        self.is_element = is_element
        self.value_type = value_type
        self.dynamic = dynamic
        self.has_xml_attributes = has_xml_attributes
        # Assigned by the ordering pass (repro.core.ordering); None for
        # nodes inside attribute subtrees, which are never ordered.
        self.order: Optional[int] = None
        self.last_child_order: Optional[int] = None
        for child in self.children:
            child.parent = self

    # -- navigation ---------------------------------------------------
    def iter(self) -> Iterator["SchemaNode"]:
        """Pre-order traversal of this node's subtree."""
        yield self
        for child in self.children:
            yield from child.iter()

    def ancestors(self) -> List["SchemaNode"]:
        """Ancestors from parent up to the root."""
        out = []
        node = self.parent
        while node is not None:
            out.append(node)
            node = node.parent
        return out

    def path(self) -> str:
        """Slash path from the root, e.g. ``data/idinfo/keywords/theme``."""
        parts = [self.tag]
        node = self.parent
        while node is not None:
            parts.append(node.tag)
            node = node.parent
        return "/".join(reversed(parts))

    def find_child(self, tag: str) -> Optional["SchemaNode"]:
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def enclosing_attribute(self) -> Optional["SchemaNode"]:
        """The ATTRIBUTE node at or above this node, if any."""
        node: Optional[SchemaNode] = self
        while node is not None:
            if node.kind is NodeKind.ATTRIBUTE:
                return node
            node = node.parent
        return None

    @property
    def is_attribute(self) -> bool:
        return self.kind is NodeKind.ATTRIBUTE

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchemaNode({self.tag!r}, {self.kind.value})"


# ---------------------------------------------------------------------------
# Declarative constructors — the schema-authoring surface.
# ---------------------------------------------------------------------------

def structural(tag: str, *children: SchemaNode, repeatable: bool = False,
               required: bool = False) -> SchemaNode:
    """An interior node above the metadata attributes."""
    return SchemaNode(tag, NodeKind.STRUCTURAL, children, repeatable=repeatable,
                      required=required)


def attribute(
    tag: str,
    *children: SchemaNode,
    repeatable: bool = False,
    required: bool = False,
    queryable: bool = True,
    value_type: ValueType = ValueType.STRING,
    dynamic: Optional[DynamicSpec] = None,
    has_xml_attributes: bool = False,
) -> SchemaNode:
    """A metadata attribute.  Without children it is a leaf attribute
    ("both a metadata attribute and a metadata element")."""
    # A childless attribute is a leaf element carrying its own value —
    # unless it is dynamic, in which case its content is defined by the
    # DynamicSpec rather than by static schema children.
    return SchemaNode(
        tag,
        NodeKind.ATTRIBUTE,
        children,
        repeatable=repeatable,
        required=required,
        queryable=queryable,
        is_element=not children and dynamic is None,
        value_type=value_type,
        dynamic=dynamic,
        has_xml_attributes=has_xml_attributes,
    )


def sub_attribute(tag: str, *children: SchemaNode, repeatable: bool = False,
                  required: bool = False) -> SchemaNode:
    if not children:
        raise SchemaError(f"sub-attribute {tag!r} must have children; use melement for leaves")
    return SchemaNode(tag, NodeKind.SUB_ATTRIBUTE, children, repeatable=repeatable,
                      required=required)


def melement(tag: str, value_type: ValueType = ValueType.STRING,
             repeatable: bool = False, required: bool = False,
             has_xml_attributes: bool = False) -> SchemaNode:
    """A metadata element — a leaf carrying a data value."""
    return SchemaNode(tag, NodeKind.ELEMENT, None, repeatable=repeatable,
                      required=required, value_type=value_type, is_element=True,
                      has_xml_attributes=has_xml_attributes)


class AnnotatedSchema:
    """A validated, ordered annotated schema.

    Construction runs the partition-rule validator
    (:mod:`repro.core.partition`) and the schema-level global ordering
    pass (:mod:`repro.core.ordering`); an invalid annotation raises
    :class:`~repro.errors.SchemaError` immediately, so any schema object
    that exists is usable.
    """

    def __init__(self, root: SchemaNode, name: str = "schema") -> None:
        # Imports are local to avoid a cycle: partition/ordering import
        # the node types from this module.
        from .ordering import assign_global_order
        from .partition import validate_partition

        self.root = root
        self.name = name
        validate_partition(root)
        self.ordered_nodes: List[SchemaNode] = assign_global_order(root)
        self._by_order: Dict[int, SchemaNode] = {
            n.order: n for n in self.ordered_nodes  # type: ignore[misc]
        }
        self._attributes: List[SchemaNode] = [
            n for n in self.ordered_nodes if n.kind is NodeKind.ATTRIBUTE
        ]
        self._attribute_by_tag: Dict[str, SchemaNode] = {}
        for node in self._attributes:
            if node.tag in self._attribute_by_tag:
                raise SchemaError(
                    f"attribute tag {node.tag!r} appears twice in the schema; "
                    "structural attribute tags must be unique for tag-based "
                    "definition lookup (paper §3)"
                )
            self._attribute_by_tag[node.tag] = node

    # -- lookups --------------------------------------------------------
    def node_by_order(self, order: int) -> SchemaNode:
        try:
            return self._by_order[order]
        except KeyError:
            raise SchemaError(f"no ordered node {order} in schema {self.name!r}") from None

    def attributes(self) -> List[SchemaNode]:
        """All metadata-attribute nodes, in global order."""
        return list(self._attributes)

    def attribute_by_tag(self, tag: str) -> Optional[SchemaNode]:
        return self._attribute_by_tag.get(tag)

    def max_order(self) -> int:
        return len(self.ordered_nodes)

    def iter_nodes(self) -> Iterator[SchemaNode]:
        return self.root.iter()

    def describe(self) -> str:
        """Human-readable annotated tree (used by examples; mirrors the
        bold/italic annotation of the paper's Figure 2)."""
        lines: List[str] = []
        self._describe(self.root, 0, lines)
        return "\n".join(lines)

    def _describe(self, node: SchemaNode, depth: int, lines: List[str]) -> None:
        marks = {
            NodeKind.STRUCTURAL: "",
            NodeKind.ATTRIBUTE: " [ATTRIBUTE]",
            NodeKind.SUB_ATTRIBUTE: " [sub-attribute]",
            NodeKind.ELEMENT: " <element>",
        }
        order = f" #{node.order}" if node.order is not None else ""
        extras = []
        if node.repeatable:
            extras.append("repeatable")
        if node.dynamic is not None:
            extras.append("dynamic")
        if node.kind is NodeKind.ATTRIBUTE and node.is_element:
            extras.append("leaf")
        suffix = f" ({', '.join(extras)})" if extras else ""
        lines.append(f"{'  ' * depth}{node.tag}{marks[node.kind]}{order}{suffix}")
        for child in node.children:
            self._describe(child, depth + 1, lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AnnotatedSchema({self.name!r}, ordered={len(self.ordered_nodes)})"
