"""Hybrid shredding of metadata documents (paper §3).

A document is walked against the annotated schema.  Every element that
is a metadata attribute is stored **twice**:

* as a verbatim **CLOB** keyed by ``(schema order, same-sibling
  sequence)`` — the reconstruction path (§5); and
* **shredded** into attribute-instance rows, element-value rows, and an
  inverted list of sub-attribute → ancestor-attribute relationships —
  the query path (§4).

Dynamic attributes resolve their definition by ``(name, source)`` taken
from the document's entity block (``enttypl``/``enttypds``) and item
labels (``attrlabl``/``attrdefs``), not by element tag — which is how
the recursion of the community schema "disappears" at shred time.

Validation policy
-----------------

``on_unknown`` controls what happens when a dynamic attribute or
element has no definition in the registry:

* ``"store"`` (paper default) — keep it in the CLOB, do not shred it
  into the query tables, and record a warning;
* ``"reject"`` — raise :class:`~repro.errors.ValidationError`;
* ``"define"`` — auto-register an admin/user definition and shred
  (types inferred from the value text).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..errors import ShredError, ValidationError
from ..obs.metrics import MetricsRegistry, default_registry
from ..xmlkit import Document, Element
from .definitions import AttributeDef, DefinitionRegistry, ElementDef
from .schema import AnnotatedSchema, DynamicSpec, NodeKind, SchemaNode, ValueType

ON_UNKNOWN_POLICIES = ("store", "reject", "define")


class ClobRow:
    """One stored CLOB: a metadata attribute subtree, verbatim."""

    __slots__ = ("schema_order", "clob_seq", "text")

    def __init__(self, schema_order: int, clob_seq: int, text: str) -> None:
        self.schema_order = schema_order
        self.clob_seq = clob_seq
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover
        return f"ClobRow(order={self.schema_order}, seq={self.clob_seq}, len={len(self.text)})"


class AttributeRow:
    """One metadata-attribute (or sub-attribute) instance."""

    __slots__ = ("attr_id", "seq_id", "clob_order", "clob_seq")

    def __init__(self, attr_id: int, seq_id: int, clob_order: int, clob_seq: int) -> None:
        self.attr_id = attr_id
        self.seq_id = seq_id
        self.clob_order = clob_order
        self.clob_seq = clob_seq

    def __repr__(self) -> str:  # pragma: no cover
        return f"AttributeRow(attr={self.attr_id}, seq={self.seq_id})"


class ElementRow:
    """One metadata-element value inside an attribute instance."""

    __slots__ = ("attr_id", "seq_id", "elem_id", "elem_seq", "value_text", "value_num")

    def __init__(
        self,
        attr_id: int,
        seq_id: int,
        elem_id: int,
        elem_seq: int,
        value_text: str,
        value_num: Optional[float],
    ) -> None:
        self.attr_id = attr_id
        self.seq_id = seq_id
        self.elem_id = elem_id
        self.elem_seq = elem_seq
        self.value_text = value_text
        self.value_num = value_num

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ElementRow(attr={self.attr_id}.{self.seq_id}, elem={self.elem_id}, "
            f"value={self.value_text!r})"
        )


class InvertedRow:
    """Sub-attribute instance → ancestor attribute instance, with the
    number of levels between them (0 = self)."""

    __slots__ = ("desc_attr_id", "desc_seq", "anc_attr_id", "anc_seq", "distance")

    def __init__(
        self, desc_attr_id: int, desc_seq: int, anc_attr_id: int, anc_seq: int, distance: int
    ) -> None:
        self.desc_attr_id = desc_attr_id
        self.desc_seq = desc_seq
        self.anc_attr_id = anc_attr_id
        self.anc_seq = anc_seq
        self.distance = distance

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"InvertedRow({self.desc_attr_id}.{self.desc_seq} -> "
            f"{self.anc_attr_id}.{self.anc_seq} @ {self.distance})"
        )


class ShredResult:
    """Everything one document contributes to the catalog tables."""

    __slots__ = ("clobs", "attributes", "elements", "inverted", "warnings", "defined")

    def __init__(self) -> None:
        self.clobs: List[ClobRow] = []
        self.attributes: List[AttributeRow] = []
        self.elements: List[ElementRow] = []
        self.inverted: List[InvertedRow] = []
        self.warnings: List[str] = []
        self.defined: List[AttributeDef] = []

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ShredResult(clobs={len(self.clobs)}, attrs={len(self.attributes)}, "
            f"elems={len(self.elements)}, inverted={len(self.inverted)})"
        )

    # ------------------------------------------------------------------
    # Compact wire form — plain tuples pickle an order of magnitude
    # faster than row instances, which matters when results cross a
    # process boundary (the bulk loader's pool).
    # ------------------------------------------------------------------
    def to_payload(self) -> tuple:
        return (
            [(c.schema_order, c.clob_seq, c.text) for c in self.clobs],
            [(a.attr_id, a.seq_id, a.clob_order, a.clob_seq) for a in self.attributes],
            [
                (e.attr_id, e.seq_id, e.elem_id, e.elem_seq, e.value_text, e.value_num)
                for e in self.elements
            ],
            [
                (i.desc_attr_id, i.desc_seq, i.anc_attr_id, i.anc_seq, i.distance)
                for i in self.inverted
            ],
            list(self.warnings),
        )

    @classmethod
    def from_payload(cls, payload: tuple) -> "ShredResult":
        clobs, attributes, elements, inverted, warnings = payload
        result = cls()
        result.clobs = [ClobRow(*row) for row in clobs]
        result.attributes = [AttributeRow(*row) for row in attributes]
        result.elements = [ElementRow(*row) for row in elements]
        result.inverted = [InvertedRow(*row) for row in inverted]
        result.warnings = warnings
        return result


class Shredder:
    """Shreds documents against one schema + definition registry."""

    def __init__(
        self,
        schema: AnnotatedSchema,
        registry: DefinitionRegistry,
        on_unknown: str = "store",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if on_unknown not in ON_UNKNOWN_POLICIES:
            raise ValueError(f"on_unknown must be one of {ON_UNKNOWN_POLICIES}")
        self.schema = schema
        self.registry = registry
        self.on_unknown = on_unknown
        self._metrics = metrics
        self._handles = None

    def _observe(self, result: ShredResult, seconds: float) -> None:
        """Account one shred into the metrics registry.  Handles are
        resolved once and cached — this sits on the ingest hot path."""
        registry = self._metrics if self._metrics is not None else default_registry()
        if self._handles is None or self._handles[0] is not registry:
            self._handles = (
                registry,
                registry.histogram("shredder_shred_seconds",
                                   "wall time of one document/fragment shred"),
                registry.counter("shredder_documents_total",
                                 "documents and fragments shredded"),
                registry.counter("shredder_clobs_total",
                                 "CLOB rows produced by shredding"),
                registry.counter("shredder_attribute_rows_total",
                                 "attribute-instance rows produced"),
                registry.counter("shredder_element_rows_total",
                                 "element-value rows produced"),
                registry.counter("shredder_inverted_rows_total",
                                 "inverted-list rows produced"),
                registry.counter("shredder_warnings_total",
                                 "validation warnings recorded"),
            )
        (_, h_seconds, c_docs, c_clobs, c_attrs, c_elems, c_inverted,
         c_warnings) = self._handles
        h_seconds.observe(seconds)
        c_docs.inc()
        c_clobs.inc(len(result.clobs))
        c_attrs.inc(len(result.attributes))
        c_elems.inc(len(result.elements))
        c_inverted.inc(len(result.inverted))
        c_warnings.inc(len(result.warnings))

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def shred(self, document: Document, user: Optional[str] = None) -> ShredResult:
        """Shred ``document``; raises :class:`ShredError` if the document
        does not conform to the schema structure."""
        root = document.root
        if root.tag != self.schema.root.tag:
            raise ShredError(
                f"document root {root.tag!r} does not match schema root "
                f"{self.schema.root.tag!r}"
            )
        start = time.perf_counter()
        state = _ShredState(document, user, ShredResult())
        self._walk_structural(root, self.schema.root, state)
        self._observe(state.result, time.perf_counter() - start)
        return state.result

    def shred_attribute_fragment(
        self,
        document: Document,
        clob_seq: int,
        seq_base: Optional[Dict[int, int]] = None,
        user: Optional[str] = None,
    ) -> ShredResult:
        """Shred a single metadata-attribute fragment for *incremental*
        insertion into an existing object (paper §5: "as metadata
        attributes were inserted later, CLOBs were stored ...").

        ``document.root`` must be an element the schema declares as a
        metadata attribute.  ``clob_seq`` is the same-sibling sequence
        the new CLOB should take (one past the object's current count);
        ``seq_base`` carries the object's existing per-definition
        instance counts so new instance sequence ids continue from them.
        """
        root = document.root
        snode = self.schema.attribute_by_tag(root.tag)
        if snode is None:
            raise ShredError(
                f"<{root.tag}> is not a metadata attribute of schema "
                f"{self.schema.name!r}"
            )
        if clob_seq > 1 and not snode.repeatable:
            raise ShredError(
                f"attribute <{root.tag}> allows a single instance"
            )
        start = time.perf_counter()
        state = _ShredState(document, user, ShredResult(), seq_base=seq_base)
        self._shred_attribute(root, snode, clob_seq, state)
        self._observe(state.result, time.perf_counter() - start)
        return state.result

    # ------------------------------------------------------------------
    # Structural walk (above the attributes)
    # ------------------------------------------------------------------
    def _walk_structural(self, node: Element, snode: SchemaNode, state: "_ShredState") -> None:
        seen: Dict[str, int] = {}
        for child in node.children:
            if isinstance(child, str):
                if child.strip():
                    raise ShredError(
                        f"unexpected text {child.strip()[:40]!r} inside "
                        f"structural element <{node.tag}>"
                    )
                continue
            child_schema = snode.find_child(child.tag)
            if child_schema is None:
                raise ShredError(
                    f"element <{child.tag}> inside <{node.tag}> is not in the "
                    "schema; structural content must be schema-valid"
                )
            count = seen.get(child.tag, 0) + 1
            seen[child.tag] = count
            if count > 1 and not child_schema.repeatable:
                raise ShredError(
                    f"element <{child.tag}> occurs {count} times but the "
                    "schema allows a single instance"
                )
            if child_schema.kind is NodeKind.ATTRIBUTE:
                self._shred_attribute(child, child_schema, count, state)
            else:
                self._walk_structural(child, child_schema, state)
        for child_schema in snode.children:
            if child_schema.required and child_schema.tag not in seen:
                raise ShredError(
                    f"required element <{child_schema.tag}> missing from "
                    f"<{node.tag}>"
                )

    # ------------------------------------------------------------------
    # Attribute shredding
    # ------------------------------------------------------------------
    def _shred_attribute(
        self, node: Element, snode: SchemaNode, clob_seq: int, state: "_ShredState"
    ) -> None:
        assert snode.order is not None
        # The CLOB is stored unconditionally — even content that fails
        # dynamic validation remains retrievable (paper §3).
        state.result.clobs.append(
            ClobRow(snode.order, clob_seq, state.document.slice(node))
        )
        if snode.dynamic is not None:
            self._shred_dynamic(node, snode, snode.dynamic, clob_seq, state)
        else:
            attr_def = self.registry.structural_attribute(snode.tag)
            if attr_def is None:  # pragma: no cover - registry built from schema
                raise ShredError(f"no structural definition for <{snode.tag}>")
            instance = state.new_instance(attr_def, snode.order, clob_seq)
            state.result.inverted.append(
                InvertedRow(attr_def.attr_id, instance, attr_def.attr_id, instance, 0)
            )
            if snode.is_element:
                # Leaf attribute: its own text is the value.
                elem_def = self.registry.lookup_element(attr_def, snode.tag, "")
                if elem_def is not None:
                    self._add_element_value(
                        attr_def, instance, elem_def, node.text(), 1, state
                    )
            else:
                self._shred_structural_subtree(
                    node, snode, attr_def, instance, [(attr_def, instance)], state
                )

    def _shred_structural_subtree(
        self,
        node: Element,
        snode: SchemaNode,
        attr_def: AttributeDef,
        instance: int,
        ancestry: List[Tuple[AttributeDef, int]],
        state: "_ShredState",
    ) -> None:
        """Shred the inside of a structural attribute: sub-attributes and
        element values, per the schema annotation."""
        elem_seq = 0
        for child in node.children:
            if isinstance(child, str):
                continue
            child_schema = snode.find_child(child.tag)
            if child_schema is None:
                self._unknown(
                    state,
                    f"element <{child.tag}> inside attribute <{snode.tag}> is "
                    "not in the schema",
                )
                continue
            if child_schema.kind is NodeKind.ELEMENT:
                elem_def = self.registry.lookup_element(attr_def, child.tag, "")
                if elem_def is None:
                    self._unknown(
                        state,
                        f"no element definition for <{child.tag}> in attribute "
                        f"<{snode.tag}>",
                    )
                    continue
                elem_seq += 1
                self._add_element_value(
                    attr_def, instance, elem_def, child.text(), elem_seq, state
                )
            else:  # SUB_ATTRIBUTE
                sub_def = self.registry.lookup_attribute(
                    child.tag, "", user=state.user, parent=attr_def
                )
                if sub_def is None:
                    self._unknown(
                        state,
                        f"no sub-attribute definition for <{child.tag}> under "
                        f"<{snode.tag}>",
                    )
                    continue
                sub_instance = state.new_instance(
                    sub_def, ancestry[0][0].schema_order, 0
                )
                self._emit_inverted(sub_def, sub_instance, ancestry, state)
                self._shred_structural_subtree(
                    child,
                    child_schema,
                    sub_def,
                    sub_instance,
                    ancestry + [(sub_def, sub_instance)],
                    state,
                )

    # ------------------------------------------------------------------
    # Dynamic attribute shredding (recursion "disappears")
    # ------------------------------------------------------------------
    def _shred_dynamic(
        self,
        node: Element,
        snode: SchemaNode,
        spec: DynamicSpec,
        clob_seq: int,
        state: "_ShredState",
    ) -> None:
        assert snode.order is not None
        entity = node.find(spec.entity_tag)
        if entity is None:
            self._unknown(
                state,
                f"dynamic attribute <{snode.tag}> lacks an <{spec.entity_tag}> "
                "entity block",
            )
            return
        name_el = entity.find(spec.name_tag)
        source_el = entity.find(spec.source_tag)
        name = name_el.text().strip() if name_el is not None else ""
        source = source_el.text().strip() if source_el is not None else ""
        if not name or not source:
            self._unknown(
                state,
                f"dynamic attribute <{snode.tag}> entity block lacks "
                f"<{spec.name_tag}>/<{spec.source_tag}>",
            )
            return
        attr_def = self.registry.lookup_attribute(name, source, user=state.user)
        if attr_def is None:
            attr_def = self._resolve_unknown_attribute(name, source, snode, None, state)
            if attr_def is None:
                return
        instance = state.new_instance(attr_def, snode.order, clob_seq)
        state.result.inverted.append(
            InvertedRow(attr_def.attr_id, instance, attr_def.attr_id, instance, 0)
        )
        self._shred_dynamic_items(
            node, spec, snode, attr_def, instance, [(attr_def, instance)], source, state
        )

    def _shred_dynamic_items(
        self,
        node: Element,
        spec: DynamicSpec,
        snode: SchemaNode,
        attr_def: AttributeDef,
        instance: int,
        ancestry: List[Tuple[AttributeDef, int]],
        default_source: str,
        state: "_ShredState",
    ) -> None:
        elem_seq = 0
        for item in node.find_all(spec.item_tag):
            label_el = item.find(spec.label_tag)
            defs_el = item.find(spec.defs_tag)
            label = label_el.text().strip() if label_el is not None else ""
            source = defs_el.text().strip() if defs_el is not None else default_source
            if not label:
                self._unknown(
                    state,
                    f"<{spec.item_tag}> inside dynamic attribute "
                    f"{attr_def.name!r} lacks a <{spec.label_tag}>",
                )
                continue
            nested = item.find_all(spec.item_tag)
            value_el = item.find(spec.value_tag)
            if nested and value_el is not None:
                raise ShredError(
                    f"<{spec.item_tag}> {label!r} has both a value and nested "
                    f"<{spec.item_tag}> items; items are either elements or "
                    "sub-attributes (paper §3)"
                )
            if nested:
                sub_def = self.registry.lookup_attribute(
                    label, source, user=state.user, parent=attr_def
                )
                if sub_def is None:
                    sub_def = self._resolve_unknown_attribute(
                        label, source, snode, attr_def, state
                    )
                    if sub_def is None:
                        continue
                sub_instance = state.new_instance(
                    sub_def, ancestry[0][0].schema_order, 0
                )
                self._emit_inverted(sub_def, sub_instance, ancestry, state)
                self._shred_dynamic_items(
                    item,
                    spec,
                    snode,
                    sub_def,
                    sub_instance,
                    ancestry + [(sub_def, sub_instance)],
                    source,
                    state,
                )
            else:
                if value_el is None:
                    self._unknown(
                        state,
                        f"<{spec.item_tag}> {label!r} has neither a value nor "
                        "nested items",
                    )
                    continue
                elem_def = self.registry.lookup_element(attr_def, label, source)
                if elem_def is None:
                    elem_def = self._resolve_unknown_element(
                        attr_def, label, source, value_el.text(), state
                    )
                    if elem_def is None:
                        continue
                elem_seq += 1
                self._add_element_value(
                    attr_def, instance, elem_def, value_el.text(), elem_seq, state
                )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _emit_inverted(
        self,
        sub_def: AttributeDef,
        sub_instance: int,
        ancestry: List[Tuple[AttributeDef, int]],
        state: "_ShredState",
    ) -> None:
        """Self row plus one row per ancestor, nearest first."""
        state.result.inverted.append(
            InvertedRow(sub_def.attr_id, sub_instance, sub_def.attr_id, sub_instance, 0)
        )
        for distance, (anc_def, anc_instance) in enumerate(reversed(ancestry), start=1):
            state.result.inverted.append(
                InvertedRow(
                    sub_def.attr_id, sub_instance, anc_def.attr_id, anc_instance, distance
                )
            )

    def _add_element_value(
        self,
        attr_def: AttributeDef,
        instance: int,
        elem_def: ElementDef,
        raw: str,
        elem_seq: int,
        state: "_ShredState",
    ) -> None:
        text = raw.strip()
        try:
            typed = elem_def.value_type.parse(text)
        except ValueError:
            self._unknown(
                state,
                f"value {text!r} for element {elem_def.name!r} is not a valid "
                f"{elem_def.value_type.value}",
            )
            return
        value_num = float(typed) if isinstance(typed, (int, float)) else None
        value_text = text if not isinstance(typed, str) else typed
        state.result.elements.append(
            ElementRow(
                attr_def.attr_id, instance, elem_def.elem_id, elem_seq,
                value_text, value_num,
            )
        )

    def _resolve_unknown_attribute(
        self,
        name: str,
        source: str,
        host: SchemaNode,
        parent: Optional[AttributeDef],
        state: "_ShredState",
    ) -> Optional[AttributeDef]:
        message = (
            f"dynamic attribute ({name!r}, {source!r}) is not defined"
            + (f" under {parent.name!r}" if parent is not None else "")
        )
        if self.on_unknown == "reject":
            raise ValidationError(message)
        if self.on_unknown == "store":
            state.result.warnings.append(message + "; stored as CLOB only")
            return None
        attr_def = self.registry.define_attribute(
            name, source, host=host.tag, parent=parent, user=state.user
        )
        state.result.defined.append(attr_def)
        return attr_def

    def _resolve_unknown_element(
        self,
        attr_def: AttributeDef,
        name: str,
        source: str,
        raw: str,
        state: "_ShredState",
    ) -> Optional[ElementDef]:
        message = (
            f"dynamic element ({name!r}, {source!r}) is not defined for "
            f"attribute {attr_def.name!r}"
        )
        if self.on_unknown == "reject":
            raise ValidationError(message)
        if self.on_unknown == "store":
            state.result.warnings.append(message + "; stored as CLOB only")
            return None
        return self.registry.define_element(
            attr_def, name, source, infer_value_type(raw),
            user=state.user or None,
        )

    def _unknown(self, state: "_ShredState", message: str) -> None:
        if self.on_unknown == "reject":
            raise ValidationError(message)
        state.result.warnings.append(message + "; stored as CLOB only")


def infer_value_type(raw: str) -> ValueType:
    """Infer INTEGER/FLOAT/STRING from a value's text (used when
    auto-defining dynamic elements)."""
    text = raw.strip()
    try:
        int(text)
        return ValueType.INTEGER
    except ValueError:
        pass
    try:
        float(text)
        return ValueType.FLOAT
    except ValueError:
        return ValueType.STRING


class _ShredState:
    """Per-shred mutable state: instance counters and the result.

    ``seq_base`` seeds the per-definition counters with an existing
    object's instance counts, so incremental fragments continue the
    sequence instead of colliding with stored rows.
    """

    __slots__ = ("document", "user", "result", "_instance_counters")

    def __init__(
        self,
        document: Document,
        user: Optional[str],
        result: ShredResult,
        seq_base: Optional[Dict[int, int]] = None,
    ) -> None:
        self.document = document
        self.user = user
        self.result = result
        self._instance_counters: Dict[int, int] = dict(seq_base or {})

    def new_instance(self, attr_def: AttributeDef, clob_order: int, clob_seq: int) -> int:
        """Allocate the next sequence id for ``attr_def`` in this document
        and record the attribute-instance row."""
        seq = self._instance_counters.get(attr_def.attr_id, 0) + 1
        self._instance_counters[attr_def.attr_id] = seq
        self.result.attributes.append(
            AttributeRow(attr_def.attr_id, seq, clob_order, clob_seq)
        )
        return seq
