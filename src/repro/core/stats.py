"""Lightweight catalog statistics for the query optimizer (E8 payoff).

The Fig-4 plan's cost tracks the number of *matching* rows (paper §4,
measured in E8), so the planner wants to evaluate the most selective
criteria first.  :class:`CatalogStatistics` maintains the inputs of
that decision — per element-definition row and distinct-value counts,
per attribute-definition instance counts, and the object total — and
turns them into row estimates for each criterion kind.

Maintenance protocol (driven by :class:`~repro.core.catalog.HybridCatalog`):

* **ingest / add_attribute** call :meth:`record_shred`, which updates
  the counters incrementally from the shredded rows — no store access.
* **delete / remove_attribute / definition changes** call
  :meth:`invalidate`, which bumps :attr:`generation` (cached plans key
  on it, so they all miss) and marks the counters dirty; the next
  estimate rebuilds them from the store via
  :meth:`~repro.core.storage.HybridStore.collect_statistics`.

Estimates are advisory: they order plan stages, they never change which
objects match.  Distinct-value counts maintained incrementally track
exact sets only while the statistics were built from shred rows; after
a rebuild from a sqlite store the per-value sets are sealed and later
ingests keep the last distinct count (a lower bound — still a valid
ordering signal).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Set, Tuple

from .query import Op, QAttr, QElem
from .shredder import ShredResult


class StatsSnapshot:
    """Counter state collected from a store in one pass (the rebuild
    payload of :meth:`HybridStore.collect_statistics`)."""

    __slots__ = ("objects", "elem_rows", "elem_distinct", "attr_rows")

    def __init__(
        self,
        objects: int,
        elem_rows: Dict[int, int],
        elem_distinct: Dict[int, int],
        attr_rows: Dict[int, int],
    ) -> None:
        self.objects = objects
        self.elem_rows = elem_rows
        self.elem_distinct = elem_distinct
        self.attr_rows = attr_rows


class _ElemStat:
    """Row count plus distinct-value tracking for one element def."""

    __slots__ = ("rows", "distinct", "values")

    def __init__(self) -> None:
        self.rows = 0
        self.distinct = 0
        # Exact value set while statistics are shred-fed; None once the
        # counters came from a store rebuild (sealed).
        self.values: Optional[Set[Tuple[Optional[str], Optional[float]]]] = set()

    def add_value(self, value_text: Optional[str], value_num: Optional[float]) -> None:
        self.rows += 1
        if self.values is not None:
            self.values.add((value_text, value_num))
            self.distinct = len(self.values)


class CatalogStatistics:
    """Selectivity statistics over one hybrid store.

    ``generation`` changes exactly when previously built plans may no
    longer be trusted (definition changes, deletes); the plan cache
    stores it per entry and treats a mismatch as a miss.
    ``data_version`` additionally moves on *every* recorded write —
    including plain ingests, which leave plans valid but change query
    answers — so ``(generation, data_version)`` is the invalidation
    token of the query-result cache (:meth:`cache_token`).

    Thread safety: maintenance and the lazy rebuild are serialized by
    an internal lock, and the rebuild publishes fully built counter
    dicts in one swap — a reader racing :meth:`invalidate` sees either
    the complete old statistics or the complete new ones, never a
    half-rebuilt state that would order a plan from empty estimates.
    """

    def __init__(self, store) -> None:
        self._store = store
        self._lock = threading.RLock()
        self._dirty = True
        self.generation = 0
        self.data_version = 0
        self._elems: Dict[int, _ElemStat] = {}
        self._attrs: Dict[int, int] = {}
        self._objects = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def cache_token(self) -> Tuple[int, int]:
        """The result-cache invalidation token: moves exactly when a
        previously computed query answer may no longer be current."""
        return (self.generation, self.data_version)

    def invalidate(self) -> None:
        """Definitions or stored rows changed in a way incremental
        accounting does not cover: rebuild lazily, retire cached plans."""
        with self._lock:
            self._dirty = True
            self.generation += 1
            self.data_version += 1

    def record_shred(self, shred: ShredResult, new_object: bool = True) -> None:
        """Fold one ingested shred into the counters (no store access).
        A dirty snapshot stays dirty — the pending rebuild will see the
        new rows anyway."""
        with self._lock:
            self.data_version += 1
            if self._dirty:
                return
            for erow in shred.elements:
                stat = self._elems.get(erow.elem_id)
                if stat is None:
                    stat = self._elems[erow.elem_id] = _ElemStat()
                stat.add_value(erow.value_text, erow.value_num)
            for arow in shred.attributes:
                self._attrs[arow.attr_id] = self._attrs.get(arow.attr_id, 0) + 1
            if new_object:
                self._objects += 1

    def _ensure(self) -> None:
        if not self._dirty:
            return
        with self._lock:
            if not self._dirty:
                return  # another thread rebuilt while we waited
            snapshot: StatsSnapshot = self._store.collect_statistics()
            elems: Dict[int, _ElemStat] = {}
            for elem_id, rows in snapshot.elem_rows.items():
                stat = _ElemStat()
                stat.rows = rows
                stat.distinct = snapshot.elem_distinct.get(elem_id, 0)
                stat.values = None  # sealed: counts known, value sets not
                elems[elem_id] = stat
            # Publish complete dicts in one swap; concurrent readers see
            # old-or-new, never a partially filled rebuild.
            self._elems = elems
            self._attrs = dict(snapshot.attr_rows)
            self._objects = snapshot.objects
            self._dirty = False

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def object_count(self) -> int:
        self._ensure()
        return self._objects

    def element_rows(self, elem_def_id: int) -> int:
        self._ensure()
        stat = self._elems.get(elem_def_id)
        return stat.rows if stat is not None else 0

    def element_distinct(self, elem_def_id: int) -> int:
        self._ensure()
        stat = self._elems.get(elem_def_id)
        return stat.distinct if stat is not None else 0

    def attribute_rows(self, attr_def_id: int) -> int:
        self._ensure()
        return self._attrs.get(attr_def_id, 0)

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------
    def estimate_qelem(self, qelem: QElem) -> float:
        """Expected number of element rows matching one criterion."""
        rows = self.element_rows(qelem.elem_def_id)
        if rows == 0:
            return 0.0
        distinct = max(self.element_distinct(qelem.elem_def_id), 1)
        op = qelem.op
        if op is Op.EQ:
            return rows / distinct
        if op is Op.NE:
            return rows * (1.0 - 1.0 / distinct)
        if op is Op.IN_SET:
            width = len(qelem.value_set) if qelem.value_set is not None else 1
            return min(float(rows), width * rows / distinct)
        if op is Op.CONTAINS:
            return rows / 2.0
        # Range operators: the classic one-third heuristic.
        return rows / 3.0

    def estimate_qattr(
        self, qattr: QAttr, query, elem_estimates: Dict[int, float]
    ) -> float:
        """Expected number of attribute instances satisfying a shredded
        attribute criterion's *direct* elements (containment pruning is
        not modeled — it only tightens the result).  ``elem_estimates``
        maps qelem id → the :meth:`estimate_qelem` value."""
        instances = self.attribute_rows(qattr.attr_def_id)
        if qattr.direct_elem_count == 0:
            return float(instances)
        ests = [
            elem_estimates[e.qelem_id]
            for e in query.qelems
            if e.qattr_id == qattr.qattr_id
        ]
        bound = min(ests) if ests else float(instances)
        return min(float(instances), bound) if instances else bound
