"""Catalog storage layout and the in-memory hybrid store.

The hybrid scheme stores, per catalog (paper §2–§3):

``objects``
    One row per cataloged object (file or aggregation).
``clobs``
    One verbatim CLOB per metadata-attribute instance, keyed by
    ``(object, schema order, same-sibling sequence)``.
``attributes``
    One row per attribute/sub-attribute instance:
    ``(object, attribute def, sequence)`` plus the hosting CLOB key.
``elements``
    One row per metadata-element value, keyed to its parent attribute
    instance; values are stored as text plus a numeric shadow column for
    typed comparison.
``attr_ancestors``
    The inverted list of sub-attribute → ancestor-attribute instance
    relationships (distance 0 = self), which lets queries avoid
    recursion (§4).
``schema_order``
    The schema-level global ordering: ``(order, tag, last_child_order)``
    — built once per schema (§2).
``node_ancestors``
    The inverted list mapping every ordered schema node to its
    ancestors, used to find required wrapper tags when building
    responses (§5).
``attr_defs`` / ``elem_defs``
    The definition tables mirroring :class:`DefinitionRegistry`.

:class:`MemoryHybridStore` holds these tables in the from-scratch
relational engine; :class:`repro.backends.sqlite.SqliteHybridStore`
holds the identical layout in stdlib sqlite.  Both implement
:class:`HybridStore`, the interface the catalog facade drives.
"""

from __future__ import annotations

import abc
import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import CatalogClosedError, CatalogError
from ..faults import DEFAULT_RETRY, FaultPlan, RetryPolicy
from ..faults.sites import OBJECT_ROW_TABLES, check_site
from ..obs import names as metric_names
from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.profile import current_profile
from ..obs.tracing import current_span
from ..relational import Database, clob, eq, integer, real, text
from .concurrency import RWLock
from .definitions import DefinitionRegistry
from .ordering import ancestor_pairs
from .schema import AnnotatedSchema
from .shredder import ShredResult

#: Guards first-touch creation of a store's RWLock (stores are built
#: without one so legacy single-threaded construction paths stay cheap).
_RWLOCK_INIT_LOCK = threading.Lock()


class PlanStage:
    """One stage of an executed query plan, for the Fig-4 trace."""

    __slots__ = ("name", "rows", "note")

    def __init__(self, name: str, rows: int, note: str = "") -> None:
        self.name = name
        self.rows = rows
        self.note = note

    def __repr__(self) -> str:  # pragma: no cover
        return f"PlanStage({self.name!r}, rows={self.rows})"


class PlanTrace:
    """Ordered stage list recorded while matching a query.

    Stages are mirrored into the observability layer by the planners:
    each stage lands on the active :func:`repro.obs.span` as an event
    and its row count is observed into the ``planner_stage_rows``
    histogram, so the Fig-4 trace and the metrics pipeline are one
    mechanism.
    """

    def __init__(self) -> None:
        self.stages: List[PlanStage] = []

    def add(self, name: str, rows: int, note: str = "") -> None:
        self.stages.append(PlanStage(name, rows, note))

    def describe(self) -> str:
        if not self.stages:
            return "(no stages)"
        width = max(len(s.name) for s in self.stages)
        lines = []
        for s in self.stages:
            note = f"  -- {s.note}" if s.note else ""
            lines.append(f"{s.name:<{width}}  {s.rows:>8} rows{note}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """Structured export (mirrors :meth:`repro.obs.Span.as_dict`)."""
        return {
            "stages": [
                {"name": s.name, "rows": s.rows, "note": s.note}
                for s in self.stages
            ]
        }

    def stage_names(self) -> List[str]:
        return [s.name for s in self.stages]


#: Row-count buckets for the per-stage histograms (row counts span
#: 0 .. corpus * criteria, so powers of ten).
ROW_BUCKETS = (0, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000,
               50000, 100000, float("inf"))


def record_plan(trace: PlanTrace, registry: MetricsRegistry) -> None:
    """Mirror an executed plan trace into the observability layer:
    one ``planner_stage_rows{stage=...}`` observation per stage, plus
    span events on the active query span (both backends call this at
    the end of ``match_objects``)."""
    stage_rows = registry.histogram(
        "planner_stage_rows",
        "row count produced by each query-plan stage",
        labels=("stage",),
        buckets=ROW_BUCKETS,
    )
    span = current_span()
    for stage in trace.stages:
        stage_rows.labels(stage=stage.name).observe(stage.rows)
        if span is not None:
            if stage.note:
                span.event(stage.name, rows=stage.rows, note=stage.note)
            else:
                span.event(stage.name, rows=stage.rows)
    registry.counter(
        "planner_queries_total", "query plans executed"
    ).inc()


class HybridStore(abc.ABC):
    """Backend interface for the hybrid catalog.

    ``metrics`` is the registry instrumentation in the store and the
    planners report to; the owning catalog binds its own registry via
    :meth:`bind_metrics`, and unbound stores fall back to the process
    default.

    Every mutation runs inside a transaction: subclasses implement the
    ``_txn_begin``/``_txn_commit``/``_txn_rollback`` primitives (sqlite
    issues ``BEGIN IMMEDIATE``; the memory store journals undo entries)
    and the shared :meth:`transaction` / :meth:`run_transaction` logic
    handles reentrancy, rollback on any exception, bounded retry with
    exponential backoff for transient failures, and the
    ``txn_commits_total`` / ``txn_rollbacks_total`` /
    ``txn_retries_total`` metrics.  A :class:`~repro.faults.FaultPlan`
    installed via :meth:`install_faults` is consulted before every
    statement issued inside a transaction (write paths only), which is
    how the crash-safety suite proves any mid-write failure leaves the
    catalog fsck-clean.

    Concurrency contract (both backends): every transaction holds the
    store's write lock begin-through-commit, so writes stay strictly
    serialized (the S32 single-writer protocol); read surfaces run
    under :meth:`read_locked`, so any number of reader threads proceed
    in parallel and never observe a half-applied mutation.  Transaction
    reentrancy is *per thread* — a nested ``transaction()`` joins the
    outer one only on the thread that owns it; any other thread queues
    on the write lock.  Fault plans likewise only fire for statements
    issued by the transaction-owning thread, keeping deterministic
    ``fail_at=N`` crash sweeps stable under concurrent readers."""

    metrics: Optional[MetricsRegistry] = None
    events: Optional[EventLog] = None
    fault_plan: Optional[FaultPlan] = None
    retry_policy: RetryPolicy = DEFAULT_RETRY
    _txn_depth: int = 0
    _txn_owner: Optional[int] = None  # thread id owning the open txn
    _closed: bool = False
    _rwlock_obj: Optional[RWLock] = None

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        self.metrics = registry

    def bind_events(self, log: Optional[EventLog]) -> None:
        """Attach (or detach, with ``None``) the structured event log;
        rollbacks, retries, and injected faults are journaled to it."""
        self.events = log

    def metrics_registry(self) -> MetricsRegistry:
        return self.metrics if self.metrics is not None else default_registry()

    # ------------------------------------------------------------------
    # Concurrency: reader-writer lock, closed-store guard
    # ------------------------------------------------------------------
    def _rwlock(self) -> RWLock:
        lock = self._rwlock_obj
        if lock is None:
            with _RWLOCK_INIT_LOCK:
                lock = self._rwlock_obj
                if lock is None:
                    lock = RWLock(observer=self._observe_lock_wait)
                    self._rwlock_obj = lock
        return lock

    def _observe_lock_wait(self, mode: str, seconds: float) -> None:
        """RWLock contention observer: contended acquisitions land in
        the reader/writer wait histograms and on the active query
        profile.  Only ever called on the blocked path, so the
        uncontended fast path stays clock-free."""
        name = (
            "rwlock_reader_wait_seconds"
            if mode == "read"
            else "rwlock_writer_wait_seconds"
        )
        declared = metric_names.spec(name)
        self.metrics_registry().histogram(name, declared.help).observe(seconds)
        prof = current_profile()
        if prof is not None:
            prof.add_wait("lock", seconds)

    def _check_open(self) -> None:
        if self._closed:
            raise CatalogClosedError(
                f"{type(self).__name__} is closed; operations on a closed "
                "store are invalid (close() itself is idempotent)"
            )

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Shared read section: runs in parallel with other readers and
        is excluded from write transactions.  Reentrant, and a no-op
        inside the calling thread's own transaction.  Doubles as the
        closed-store guard of every read surface."""
        self._check_open()
        with self._rwlock().read_locked():
            yield

    # ------------------------------------------------------------------
    # Crash safety: transactions, fault injection, retry
    # ------------------------------------------------------------------
    def install_faults(self, plan: FaultPlan) -> FaultPlan:
        """Arm a fault plan on this store's write paths; returns it."""
        self.fault_plan = plan
        return plan

    def clear_faults(self) -> None:
        self.fault_plan = None

    def set_retry_policy(self, policy: RetryPolicy) -> None:
        self.retry_policy = policy

    def _fault_armed(self) -> bool:
        """True when statements issued by the *calling thread* should
        consult the fault plan — i.e. inside this thread's own
        transaction.  Reader threads running concurrently with another
        thread's transaction must not consume fault-plan statement
        counts, or deterministic ``fail_at=N`` sweeps would drift."""
        return (
            self.fault_plan is not None
            and self._txn_depth > 0
            and self._txn_owner == threading.get_ident()
        )

    def _fault(self, site: str) -> None:
        """Injection point: called before each write-path statement."""
        if self._fault_armed():
            try:
                self.fault_plan.before(site, self.metrics_registry())
            except BaseException:
                # The plan fired here: journal the injection before the
                # crash propagates (the sweep harness reads these back).
                if self.events is not None:
                    self.events.emit("fault_injected", site=site)
                raise

    def in_transaction(self) -> bool:
        """True when the *calling thread* is inside a transaction."""
        return self._txn_depth > 0 and self._txn_owner == threading.get_ident()

    @abc.abstractmethod
    def _txn_begin(self, site: str) -> None:
        """Start a backend transaction."""

    @abc.abstractmethod
    def _txn_commit(self, site: str) -> None:
        """Commit the backend transaction."""

    @abc.abstractmethod
    def _txn_rollback(self, site: str) -> None:
        """Roll the backend transaction back; must tolerate a
        transaction that never fully started."""

    _txn_counter_cache: Optional[Tuple[MetricsRegistry, dict]] = None

    def _txn_counter(self, name: str, site: str):
        # Resolved handles are cached per (name, site) — one registry
        # dict walk per transaction would show up in E1.  The help text
        # and labels come from the central declaration so they cannot
        # drift between call sites.
        registry = self.metrics_registry()
        cache = self._txn_counter_cache
        if cache is None or cache[0] is not registry:
            cache = (registry, {})
            self._txn_counter_cache = cache
        try:
            return cache[1][(name, site)]
        except KeyError:
            declared = metric_names.spec(name)
            child = registry.counter(
                name, declared.help, labels=declared.labels
            ).labels(site=site)
            cache[1][(name, site)] = child
            return child

    def _count_commit(self, site: str) -> None:
        self._txn_counter("txn_commits_total", site).inc()

    def _count_rollback(self, site: str) -> None:
        self._txn_counter("txn_rollbacks_total", site).inc()
        if self.events is not None:
            self.events.emit("txn_rollback", site=site)

    def _count_retry(self, site: str) -> None:
        self._txn_counter("txn_retries_total", site).inc()
        if self.events is not None:
            self.events.emit("txn_retry", site=site)

    @contextmanager
    def transaction(self, site: str = "txn") -> Iterator[None]:
        """One transaction around the ``with`` body; reentrant per
        thread (a nested ``transaction()`` on the owning thread joins
        the outer one, so a logical catalog operation commits exactly
        once; any other thread queues on the write lock)."""
        if self.in_transaction():
            self._txn_depth += 1
            try:
                yield
            finally:
                self._txn_depth -= 1
            return
        self._check_open()
        with self._rwlock().write_locked():
            self._check_open()
            self._txn_owner = threading.get_ident()
            self._txn_depth = 1
            try:
                self._txn_begin(site)
                yield
            except BaseException:
                self._txn_depth = 0
                self._txn_owner = None
                self._txn_rollback(site)
                self._count_rollback(site)
                raise
            self._txn_depth = 0
            self._txn_owner = None
            try:
                self._txn_commit(site)
            except BaseException:
                self._txn_rollback(site)
                self._count_rollback(site)
                raise
            self._count_commit(site)

    def run_transaction(self, site: str, fn: Callable[[], "object"]):
        """Run ``fn`` inside one transaction, retrying the whole thing
        (the rollback restored a clean state) on transient failures —
        sqlite ``database is locked`` — per the store's retry policy.
        Already inside this thread's transaction, ``fn`` simply joins
        it: retry is the outermost operation's business.  The write
        lock is held begin-through-commit, serializing transactions
        across threads.

        This is the write hot path (every ingest crosses it), so the
        transaction bracketing is inlined rather than delegated to the
        :meth:`transaction` context manager."""
        if self.in_transaction():
            return fn()
        self._check_open()
        with self._rwlock().write_locked():
            self._check_open()
            policy = self.retry_policy
            attempt = 1
            while True:
                self._txn_owner = threading.get_ident()
                self._txn_depth = 1
                try:
                    self._txn_begin(site)
                    result = fn()
                except BaseException as exc:
                    self._txn_depth = 0
                    self._txn_owner = None
                    self._txn_rollback(site)
                    self._count_rollback(site)
                    if (
                        isinstance(exc, Exception)
                        and attempt < policy.max_attempts
                        and policy.is_transient(exc)
                    ):
                        self._count_retry(site)
                        policy.pause(attempt)
                        attempt += 1
                        continue
                    raise
                self._txn_depth = 0
                self._txn_owner = None
                try:
                    self._txn_commit(site)
                except BaseException:
                    self._txn_rollback(site)
                    self._count_rollback(site)
                    raise
                self._count_commit(site)
                return result

    @abc.abstractmethod
    def install_schema(self, schema: AnnotatedSchema) -> None:
        """Create the layout and load the global-ordering tables."""

    def is_initialized(self) -> bool:
        """True when the store already holds a catalog (reopened file).
        In-memory stores are never pre-initialized."""
        return False

    def close(self) -> None:
        """Release backend resources.  Idempotent: a second ``close()``
        is a no-op.  Every subsequent operation raises
        :class:`~repro.errors.CatalogClosedError`.  The base marks the
        store closed after waiting out in-flight transactions; backends
        with external resources extend it."""
        if self._closed:
            return
        # Let an in-flight transaction finish rather than yanking the
        # state out from under it; new operations fail _check_open.
        with self._rwlock().write_locked():
            self._closed = True

    def attach_schema(self, schema: AnnotatedSchema) -> None:
        """Bind ``schema`` to an already-initialized store, verifying it
        matches the stored global ordering."""
        raise CatalogError("this store cannot be reopened")

    def load_definition_rows(self):
        """``(attr_rows, elem_rows)`` for registry rehydration."""
        raise CatalogError("this store cannot be reopened")

    def load_objects(self):
        """``(object_id, name, owner)`` rows for catalog rehydration."""
        raise CatalogError("this store cannot be reopened")

    @abc.abstractmethod
    def sync_definitions(self, registry: DefinitionRegistry) -> None:
        """Upsert definition rows to match the registry."""

    @abc.abstractmethod
    def store_object(
        self, object_id: int, name: str, owner: str, shred: ShredResult
    ) -> None:
        """Persist one shredded document."""

    @abc.abstractmethod
    def delete_object(self, object_id: int) -> None:
        """Remove an object and all its rows."""

    @abc.abstractmethod
    def append_rows(self, object_id: int, shred: ShredResult) -> None:
        """Add an incremental fragment's rows to an existing object
        (paper §5: attributes may be inserted after the original shred)."""

    @abc.abstractmethod
    def max_clob_seq(self, object_id: int, schema_order: int) -> int:
        """Highest stored same-sibling sequence of the given schema node
        for an object (0 when none) — the next fragment takes this + 1.
        Max, not count: removals may leave sequence gaps."""

    @abc.abstractmethod
    def instance_counts(self, object_id: int) -> Dict[int, int]:
        """Max stored sequence id per attribute definition for an object."""

    @abc.abstractmethod
    def remove_attribute_instance(
        self, object_id: int, attr_id: int, seq_id: int
    ) -> None:
        """Remove one top-level attribute instance (its CLOB, rows, and
        all descendant sub-attribute instances)."""

    @abc.abstractmethod
    def has_object(self, object_id: int) -> bool: ...

    @abc.abstractmethod
    def object_count(self) -> int: ...

    @abc.abstractmethod
    def match_objects(self, shredded_query, trace: Optional[PlanTrace] = None) -> List[int]:
        """Execute the Fig-4 count-matching plan; return matching object
        ids.  Accepts either a :class:`~repro.core.query.ShreddedQuery`
        (compiled into an unoptimized plan on the spot) or a pre-built
        :class:`~repro.core.logical.LogicalPlan` — the catalog facade
        passes optimized, cached plans down this path."""

    @abc.abstractmethod
    def collect_statistics(self):
        """One aggregation pass producing a
        :class:`~repro.core.stats.StatsSnapshot` (per element-def row and
        distinct-value counts, per attribute-def instance counts, object
        total) — the rebuild path of the statistics layer."""

    @abc.abstractmethod
    def build_responses(self, object_ids: Sequence[int]) -> Dict[int, str]:
        """Reconstruct tagged XML for each object id (paper §5)."""

    @abc.abstractmethod
    def storage_report(self) -> List[Tuple[str, int, int]]:
        """Per-table ``(name, rows, bytes)`` accounting."""


# ---------------------------------------------------------------------------
# Memory store
# ---------------------------------------------------------------------------

class MemoryHybridStore(HybridStore):
    """Hybrid layout on the from-scratch relational engine."""

    def __init__(self) -> None:
        self.db = Database("hybrid")
        self.schema: Optional[AnnotatedSchema] = None

    # -- Transactions (engine undo journal) -----------------------------
    def _txn_begin(self, site: str) -> None:
        self.db.begin()

    def _txn_commit(self, site: str) -> None:
        self.db.commit()

    def _txn_rollback(self, site: str) -> None:
        if self.db.in_transaction():
            self.db.rollback()

    # -- DDL ------------------------------------------------------------
    def install_schema(self, schema: AnnotatedSchema) -> None:
        if self.schema is not None:
            raise CatalogError("schema already installed")
        self.schema = schema
        db = self.db
        db.create_table(
            "objects",
            [integer("object_id", nullable=False), text("name"), text("owner")],
            primary_key=["object_id"],
        )
        t = db.create_table(
            "clobs",
            [
                integer("object_id", nullable=False),
                integer("schema_order", nullable=False),
                integer("clob_seq", nullable=False),
                clob("content", nullable=False),
            ],
            primary_key=["object_id", "schema_order", "clob_seq"],
        )
        t.create_index("clobs_by_object", ["object_id"])
        t = db.create_table(
            "attributes",
            [
                integer("object_id", nullable=False),
                integer("attr_id", nullable=False),
                integer("seq_id", nullable=False),
                integer("clob_order", nullable=False),
                integer("clob_seq", nullable=False),
            ],
            primary_key=["object_id", "attr_id", "seq_id"],
        )
        t.create_index("attributes_by_def", ["attr_id"])
        t.create_index("attributes_by_object", ["object_id"])
        t = db.create_table(
            "elements",
            [
                integer("object_id", nullable=False),
                integer("attr_id", nullable=False),
                integer("seq_id", nullable=False),
                integer("elem_id", nullable=False),
                integer("elem_seq", nullable=False),
                text("value_text"),
                real("value_num"),
            ],
        )
        t.create_index("elements_by_def", ["elem_id"])
        t.create_index("elements_by_object", ["object_id"])
        t = db.create_table(
            "attr_ancestors",
            [
                integer("object_id", nullable=False),
                integer("desc_attr_id", nullable=False),
                integer("desc_seq", nullable=False),
                integer("anc_attr_id", nullable=False),
                integer("anc_seq", nullable=False),
                integer("distance", nullable=False),
            ],
        )
        t.create_index("anc_by_pair", ["desc_attr_id", "anc_attr_id"])
        t.create_index("anc_by_object", ["object_id"])
        db.create_table(
            "schema_order",
            [
                integer("node_order", nullable=False),
                text("tag", nullable=False),
                integer("last_child_order", nullable=False),
            ],
            primary_key=["node_order"],
        )
        t = db.create_table(
            "node_ancestors",
            [
                integer("node_order", nullable=False),
                integer("ancestor_order", nullable=False),
            ],
        )
        t.create_index("node_anc_by_node", ["node_order"])
        db.create_table(
            "attr_defs",
            [
                integer("attr_id", nullable=False),
                text("name", nullable=False),
                text("source", nullable=False),
                integer("parent_id"),
                integer("schema_order", nullable=False),
                text("scope", nullable=False),
                integer("queryable", nullable=False),
                integer("structural", nullable=False),
            ],
            primary_key=["attr_id"],
        )
        db.create_table(
            "elem_defs",
            [
                integer("elem_id", nullable=False),
                integer("attr_id", nullable=False),
                text("name", nullable=False),
                text("source", nullable=False),
                text("value_type", nullable=False),
                text("scope", nullable=False),
            ],
            primary_key=["elem_id"],
        )
        # Load the schema-level global ordering (built once — §2) under
        # a transaction: a crash mid-load must not leave a half-ordered
        # schema behind (TXN01).
        def load_ordering() -> None:
            order_table = db.table("schema_order")
            for node in schema.ordered_nodes:
                self._fault("insert:schema_order")
                order_table.insert([node.order, node.tag, node.last_child_order])
            anc_table = db.table("node_ancestors")
            for node_order, anc_order in ancestor_pairs(schema.ordered_nodes):
                self._fault("insert:node_ancestors")
                anc_table.insert([node_order, anc_order])

        self.run_transaction("install_schema", load_ordering)

    def sync_definitions(self, registry: DefinitionRegistry) -> None:
        self.run_transaction(
            "sync_definitions", lambda: self._sync_definitions(registry)
        )

    def _sync_definitions(self, registry: DefinitionRegistry) -> None:
        attr_table = self.db.table("attr_defs")
        known = {row[0] for row in attr_table.scan()}
        for d in registry.all_attributes():
            if d.attr_id not in known:
                self._fault("insert:attr_defs")
                attr_table.insert(
                    [
                        d.attr_id, d.name, d.source, d.parent_id, d.schema_order,
                        d.scope, int(d.queryable), int(d.structural),
                    ]
                )
        elem_table = self.db.table("elem_defs")
        known = {row[0] for row in elem_table.scan()}
        for e in registry.all_elements():
            if e.elem_id not in known:
                self._fault("insert:elem_defs")
                elem_table.insert(
                    [e.elem_id, e.attr_id, e.name, e.source, e.value_type.value, e.scope]
                )

    # -- Ingest -----------------------------------------------------------
    def store_object(
        self, object_id: int, name: str, owner: str, shred: ShredResult
    ) -> None:
        def write() -> None:
            self._fault("insert:objects")
            self.db.table("objects").insert([object_id, name, owner])
            self._append_rows(object_id, shred)

        self.run_transaction("store_object", write)

    def append_rows(self, object_id: int, shred: ShredResult) -> None:
        self.run_transaction(
            "append_rows", lambda: self._append_rows(object_id, shred)
        )

    def _append_rows(self, object_id: int, shred: ShredResult) -> None:
        db = self.db
        clobs = db.table("clobs")
        for row in shred.clobs:
            self._fault("insert:clobs")
            clobs.insert([object_id, row.schema_order, row.clob_seq, row.text])
        attributes = db.table("attributes")
        for arow in shred.attributes:
            self._fault("insert:attributes")
            attributes.insert(
                [object_id, arow.attr_id, arow.seq_id, arow.clob_order, arow.clob_seq]
            )
        elements = db.table("elements")
        for erow in shred.elements:
            self._fault("insert:elements")
            elements.insert(
                [
                    object_id, erow.attr_id, erow.seq_id, erow.elem_id,
                    erow.elem_seq, erow.value_text, erow.value_num,
                ]
            )
        ancestors = db.table("attr_ancestors")
        for irow in shred.inverted:
            self._fault("insert:attr_ancestors")
            ancestors.insert(
                [
                    object_id, irow.desc_attr_id, irow.desc_seq,
                    irow.anc_attr_id, irow.anc_seq, irow.distance,
                ]
            )

    def delete_object(self, object_id: int) -> None:
        if not self.has_object(object_id):
            raise CatalogError(f"no object {object_id}")

        def write() -> None:
            for name in OBJECT_ROW_TABLES:
                self._fault(check_site(f"delete:{name}"))
                self.db.table(name).delete_where(eq("object_id", object_id))

        self.run_transaction("delete_object", write)

    def has_object(self, object_id: int) -> bool:
        with self.read_locked():
            return bool(self.db.table("objects").lookup(["object_id"], [object_id]))

    def object_count(self) -> int:
        with self.read_locked():
            return len(self.db.table("objects"))

    def max_clob_seq(self, object_id: int, schema_order: int) -> int:
        with self.read_locked():
            clobs = self.db.table("clobs")
            orders = clobs.column_data("schema_order")
            seqs = clobs.column_data("clob_seq")
            return max(
                (
                    seqs[r]
                    for r in clobs.lookup_rowids(["object_id"], [object_id])
                    if orders[r] == schema_order
                ),
                default=0,
            )

    def instance_counts(self, object_id: int) -> Dict[int, int]:
        with self.read_locked():
            counts: Dict[int, int] = {}
            attributes = self.db.table("attributes")
            attr_col = attributes.column_data("attr_id")
            seq_col = attributes.column_data("seq_id")
            for r in attributes.lookup_rowids(["object_id"], [object_id]):
                attr_id, seq_id = attr_col[r], seq_col[r]
                if seq_id > counts.get(attr_id, 0):
                    counts[attr_id] = seq_id
            return counts

    def remove_attribute_instance(
        self, object_id: int, attr_id: int, seq_id: int
    ) -> None:
        self.run_transaction(
            "remove_attribute_instance",
            lambda: self._remove_attribute_instance(object_id, attr_id, seq_id),
        )

    def _remove_attribute_instance(
        self, object_id: int, attr_id: int, seq_id: int
    ) -> None:
        attributes = self.db.table("attributes")
        a_attr = attributes.column_data("attr_id")
        a_seq = attributes.column_data("seq_id")
        target = [
            r
            for r in attributes.lookup_rowids(["object_id"], [object_id])
            if a_attr[r] == attr_id and a_seq[r] == seq_id
        ]
        if not target:
            raise CatalogError(
                f"object {object_id} has no instance {seq_id} of attribute "
                f"{attr_id}"
            )
        clob_order = attributes.column_data("clob_order")[target[0]]
        clob_seq = attributes.column_data("clob_seq")[target[0]]
        if clob_seq < 1:
            raise CatalogError(
                "only top-level attribute instances can be removed; "
                f"attribute {attr_id} instance {seq_id} is a sub-attribute"
            )
        # The victim plus every descendant sub-attribute instance (via
        # the inverted list, distance >= 1).
        ancestors = self.db.table("attr_ancestors")
        n_desc_attr = ancestors.column_data("desc_attr_id")
        n_desc_seq = ancestors.column_data("desc_seq")
        n_anc_attr = ancestors.column_data("anc_attr_id")
        n_anc_seq = ancestors.column_data("anc_seq")
        n_dist = ancestors.column_data("distance")
        victims = {(attr_id, seq_id)}
        for r in ancestors.lookup_rowids(["object_id"], [object_id]):
            if n_anc_attr[r] == attr_id and n_anc_seq[r] == seq_id and n_dist[r] >= 1:
                victims.add((n_desc_attr[r], n_desc_seq[r]))
        for victim_attr, victim_seq in victims:
            base = (
                eq("object_id", object_id)
                & eq("attr_id", victim_attr)
                & eq("seq_id", victim_seq)
            )
            self._fault("delete:attributes")
            attributes.delete_where(base)
            self._fault("delete:elements")
            self.db.table("elements").delete_where(base)
            self._fault("delete:attr_ancestors")
            ancestors.delete_where(
                eq("object_id", object_id)
                & eq("desc_attr_id", victim_attr)
                & eq("desc_seq", victim_seq)
            )
            self._fault("delete:attr_ancestors")
            ancestors.delete_where(
                eq("object_id", object_id)
                & eq("anc_attr_id", victim_attr)
                & eq("anc_seq", victim_seq)
            )
        self._fault("delete:clobs")
        self.db.table("clobs").delete_where(
            eq("object_id", object_id)
            & eq("schema_order", clob_order)
            & eq("clob_seq", clob_seq)
        )

    # -- Query / response (implemented in planner.py / response.py) -------
    def match_objects(self, shredded_query, trace: Optional[PlanTrace] = None) -> List[int]:
        from .planner import match_objects_memory

        with self.read_locked():
            return match_objects_memory(self, shredded_query, trace)

    # -- Statistics (optimizer inputs) --------------------------------------
    def collect_statistics(self):
        from .stats import StatsSnapshot

        with self.read_locked():
            # Projection scans: only the three referenced columns of
            # ``elements`` (and one of ``attributes``) are touched.
            elem_rows: Dict[int, int] = {}
            elem_values: Dict[int, set] = {}
            elements = self.db.table("elements")
            for elem_id, text, num in elements.iter_values(
                "elem_id", "value_text", "value_num"
            ):
                elem_rows[elem_id] = elem_rows.get(elem_id, 0) + 1
                elem_values.setdefault(elem_id, set()).add((text, num))
            attr_rows: Dict[int, int] = {}
            attributes = self.db.table("attributes")
            for (attr_id,) in attributes.iter_values("attr_id"):
                attr_rows[attr_id] = attr_rows.get(attr_id, 0) + 1
            return StatsSnapshot(
                self.object_count(),
                elem_rows,
                {elem_id: len(values) for elem_id, values in elem_values.items()},
                attr_rows,
            )

    def build_responses(self, object_ids: Sequence[int]) -> Dict[int, str]:
        from .response import build_responses_memory

        with self.read_locked():
            return build_responses_memory(self, object_ids)

    # -- Accounting ---------------------------------------------------------
    def storage_report(self) -> List[Tuple[str, int, int]]:
        with self.read_locked():
            return self.db.storage_report()
