"""Attribute queries → the equivalent XPath (paper §4 in reverse).

§4 shows the XQuery FLWOR expression a scientist would have to write
against a general XML store, then the attribute query that replaces it.
This module mechanizes that correspondence: any attribute query over a
catalog's definitions translates into per-document XPath conditions —
the navigational query the hybrid approach spares its users — which is
both documentation ("here is what you did not have to write") and a
test oracle (the translation must select exactly the objects the Fig-4
plan returns; see ``tests/integration/test_xpath_equivalence.py``).

Translation rules:

* a **structural** attribute criterion becomes the schema path to its
  node, with one predicate per element comparison and nested-path
  predicates for structural sub-attribute criteria;
* a **dynamic** attribute criterion becomes the path to its host node
  (e.g. ``detailed``) with entity-block predicates
  (``enttyp/enttypl = name`` …), item predicates for elements
  (``attr[attrlabl = … and attrv op …]``), and descendant item paths
  for sub-attribute criteria (matching the inverted list's any-depth
  semantics);
* a conjunctive query yields one expression per top-level criterion; a
  document matches when **every** expression selects something.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import QueryError
from ..xmlkit import Element, xpath_exists
from .definitions import AttributeDef, DefinitionRegistry
from .query import AttributeCriteria, ElementCriterion, ObjectQuery, Op
from .schema import AnnotatedSchema, DynamicSpec

_OP_TO_XPATH = {
    Op.EQ: "=", Op.NE: "!=", Op.LT: "<", Op.LE: "<=", Op.GT: ">", Op.GE: ">=",
}


def _literal(value) -> str:
    if isinstance(value, bool):
        raise QueryError("boolean literals are not expressible in XPath-lite")
    if isinstance(value, (int, float)):
        return repr(float(value)) if isinstance(value, float) else str(value)
    text = str(value)
    if "'" in text:
        raise QueryError(
            f"value {text!r} contains a quote; not expressible in XPath-lite"
        )
    return f"'{text}'"


def _element_condition(criterion: ElementCriterion) -> str:
    """Predicate text for a structural element comparison."""
    if criterion.op is Op.CONTAINS:
        raise QueryError("CONTAINS has no XPath-lite equivalent (no functions)")
    if criterion.op is Op.IN_SET:
        parts = [
            f"{criterion.name} = {_literal(v)}" for v in sorted(criterion.value, key=repr)
        ]
        return "(" + " or ".join(parts) + ")"
    return f"{criterion.name} {_OP_TO_XPATH[criterion.op]} {_literal(criterion.value)}"


def _dynamic_item_condition(spec: DynamicSpec, criterion: ElementCriterion) -> str:
    """Predicate selecting an item element carrying the value."""
    if criterion.op is Op.CONTAINS:
        raise QueryError("CONTAINS has no XPath-lite equivalent (no functions)")
    base = f"{spec.label_tag} = {_literal(criterion.name)}"
    if criterion.source:
        base += f" and {spec.defs_tag} = {_literal(criterion.source)}"
    if criterion.op is Op.IN_SET:
        values = " or ".join(
            f"{spec.value_tag} = {_literal(v)}" for v in sorted(criterion.value, key=repr)
        )
        return f"{spec.item_tag}[{base} and ({values})]"
    return (
        f"{spec.item_tag}[{base} and {spec.value_tag} "
        f"{_OP_TO_XPATH[criterion.op]} {_literal(criterion.value)}]"
    )


def _dynamic_sub_path(spec: DynamicSpec, criteria: AttributeCriteria) -> str:
    """Descendant path predicate for a dynamic sub-attribute criterion
    (any depth, matching the inverted list)."""
    label = f"{spec.label_tag} = {_literal(criteria.name)}"
    if criteria.source:
        label += f" and {spec.defs_tag} = {_literal(criteria.source)}"
    predicates = "".join(
        f"[{_dynamic_item_condition(spec, c)}]" for c in criteria.elements
    )
    for sub in criteria.sub_attributes:
        predicates += f"[{_dynamic_sub_path(spec, sub)}]"
    return f"//{spec.item_tag}[{label}]{predicates}"


def _schema_path(node) -> str:
    parts = [node.tag]
    current = node.parent
    while current is not None:
        parts.append(current.tag)
        current = current.parent
    return "/" + "/".join(reversed(parts))


def _structural_expression(
    schema: AnnotatedSchema, criteria: AttributeCriteria
) -> str:
    node = schema.attribute_by_tag(criteria.name)
    if node is None:
        raise QueryError(f"no schema attribute {criteria.name!r}")
    if node.is_element and criteria.elements:
        # Leaf attribute queried by its own name: XPath-lite has no '.'
        # axis, so anchor the comparison at the parent instead
        # (/root[resourceID = 'x']/resourceID).
        if node.parent is None:
            raise QueryError("cannot translate a rootless leaf attribute")
        conditions = " and ".join(_element_condition(c) for c in criteria.elements)
        return f"{_schema_path(node.parent)}[{conditions}]/{node.tag}"
    predicates = "".join(f"[{_element_condition(c)}]" for c in criteria.elements)
    for sub in criteria.sub_attributes:
        predicates += f"[{_structural_sub_predicate(sub)}]"
    return f"{_schema_path(node)}{predicates}"


def _structural_sub_predicate(criteria: AttributeCriteria) -> str:
    predicates = "".join(f"[{_element_condition(c)}]" for c in criteria.elements)
    for nested in criteria.sub_attributes:
        predicates += f"[{_structural_sub_predicate(nested)}]"
    return f"{criteria.name}{predicates}"


def _dynamic_expression(
    schema: AnnotatedSchema,
    registry: DefinitionRegistry,
    attr_def: AttributeDef,
    criteria: AttributeCriteria,
) -> str:
    host = schema.node_by_order(attr_def.schema_order)
    spec = host.dynamic
    assert spec is not None
    entity = (
        f"{spec.entity_tag}/{spec.name_tag} = {_literal(criteria.name)} and "
        f"{spec.entity_tag}/{spec.source_tag} = {_literal(criteria.source)}"
    )
    predicates = "".join(
        f"[{_dynamic_item_condition(spec, c)}]" for c in criteria.elements
    )
    for sub in criteria.sub_attributes:
        predicates += f"[{_dynamic_sub_path(spec, sub)}]"
    return f"{_schema_path(host)}[{entity}]{predicates}"


def query_to_xpath(
    query: ObjectQuery,
    registry: DefinitionRegistry,
    user: Optional[str] = None,
) -> List[str]:
    """Translate ``query`` into XPath expressions, one per top-level
    criterion; a document satisfies the query iff every expression
    selects at least one element.

    Raises :class:`QueryError` for criteria with no XPath-lite
    equivalent (CONTAINS) or unknown definitions.
    """
    if query.is_empty():
        raise QueryError("query has no attribute criteria")
    schema = registry.schema
    expressions = []
    for criteria in query.attributes:
        attr_def = registry.lookup_attribute(criteria.name, criteria.source, user=user)
        if attr_def is None:
            raise QueryError(
                f"no attribute definition ({criteria.name!r}, {criteria.source!r})"
            )
        if attr_def.structural:
            expressions.append(_structural_expression(schema, criteria))
        else:
            expressions.append(
                _dynamic_expression(schema, registry, attr_def, criteria)
            )
    return expressions


def xpath_matches_document(expressions: List[str], root: Element) -> bool:
    """True when every expression selects something in the document."""
    return all(xpath_exists(root, expression) for expression in expressions)
