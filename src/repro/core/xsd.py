"""Annotated XML Schema loader (paper §7 future work).

The conclusion proposes "a framework for metadata catalogs that would
be based on an annotated schema to indicate which schema elements are
structural or dynamic metadata attributes and elements".  This module
implements that framework: a community XML Schema, annotated in-place
through standard ``xs:annotation/xs:appinfo`` hooks, loads directly
into an :class:`AnnotatedSchema`.

Supported XSD subset (the constructs grid metadata schemas of the era
actually used — FGDC-style sequences of elements):

* one top-level ``xs:element`` (the document root) plus named top-level
  ``xs:complexType`` definitions;
* ``xs:complexType`` / ``xs:sequence`` composition, inline or by
  ``type="..."`` reference (recursive references allowed — that is how
  the ``attr``-within-``attr`` recursion is declared);
* ``minOccurs`` / ``maxOccurs`` (``"unbounded"`` supported);
* built-in simple types mapped to catalog value types:
  string → STRING, int/integer/long → INTEGER,
  float/double/decimal → FLOAT, date → DATE.

Annotation markers, placed inside an element's
``xs:annotation/xs:appinfo``:

* ``<catalog:attribute [queryable="false"]/>`` — this element is a
  metadata attribute;
* ``<catalog:dynamic [entity="enttyp"] [name="enttypl"] ...>`` — this
  element is a *dynamic* attribute section (tag names configurable,
  defaulting to the LEAD convention).

Everything else is inferred: interior nodes above attributes are
structural, interior nodes below are sub-attributes, leaves below are
metadata elements.  Namespace prefixes are recognized but not resolved
(tags compare by local name), matching the catalog's namespace-free
document handling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..errors import SchemaError
from ..xmlkit import Element, parse
from .schema import (
    AnnotatedSchema,
    DynamicSpec,
    NodeKind,
    SchemaNode,
    ValueType,
)

_SIMPLE_TYPES: Dict[str, ValueType] = {
    "string": ValueType.STRING,
    "token": ValueType.STRING,
    "normalizedstring": ValueType.STRING,
    "anyuri": ValueType.STRING,
    "boolean": ValueType.STRING,
    "int": ValueType.INTEGER,
    "integer": ValueType.INTEGER,
    "long": ValueType.INTEGER,
    "short": ValueType.INTEGER,
    "nonnegativeinteger": ValueType.INTEGER,
    "positiveinteger": ValueType.INTEGER,
    "float": ValueType.FLOAT,
    "double": ValueType.FLOAT,
    "decimal": ValueType.FLOAT,
    "date": ValueType.DATE,
}


def _local(tag: str) -> str:
    """Strip a namespace prefix: ``xs:element`` → ``element``."""
    return tag.rsplit(":", 1)[-1]


def _children(element: Element, local_name: str) -> List[Element]:
    return [c for c in element.child_elements() if _local(c.tag) == local_name]


def _child(element: Element, local_name: str) -> Optional[Element]:
    found = _children(element, local_name)
    return found[0] if found else None


class _Markers:
    """The catalog annotations found on one xs:element."""

    __slots__ = ("is_attribute", "queryable", "dynamic")

    def __init__(self) -> None:
        self.is_attribute = False
        self.queryable = True
        self.dynamic: Optional[DynamicSpec] = None


def _read_markers(xs_element: Element) -> _Markers:
    markers = _Markers()
    annotation = _child(xs_element, "annotation")
    if annotation is None:
        return markers
    for appinfo in _children(annotation, "appinfo"):
        for marker in appinfo.child_elements():
            name = _local(marker.tag)
            if name == "attribute":
                markers.is_attribute = True
                if marker.attributes.get("queryable", "true").lower() == "false":
                    markers.queryable = False
            elif name == "dynamic":
                markers.is_attribute = True
                markers.dynamic = DynamicSpec(
                    entity_tag=marker.attributes.get("entity", "enttyp"),
                    name_tag=marker.attributes.get("name", "enttypl"),
                    source_tag=marker.attributes.get("source", "enttypds"),
                    item_tag=marker.attributes.get("item", "attr"),
                    label_tag=marker.attributes.get("label", "attrlabl"),
                    defs_tag=marker.attributes.get("defs", "attrdefs"),
                    value_tag=marker.attributes.get("value", "attrv"),
                )
            else:
                raise SchemaError(f"unknown catalog annotation <{marker.tag}>")
    return markers


class _XsdLoader:
    def __init__(self, schema_element: Element) -> None:
        self.named_types: Dict[str, Element] = {}
        self.roots: List[Element] = []
        for child in schema_element.child_elements():
            name = _local(child.tag)
            if name == "complexType":
                type_name = child.attributes.get("name")
                if not type_name:
                    raise SchemaError("top-level complexType needs a name")
                if type_name in self.named_types:
                    raise SchemaError(f"duplicate complexType {type_name!r}")
                self.named_types[type_name] = child
            elif name == "element":
                self.roots.append(child)
            elif name in ("annotation", "import", "include"):
                continue
            else:
                raise SchemaError(f"unsupported top-level construct <{child.tag}>")
        if len(self.roots) != 1:
            raise SchemaError(
                f"expected exactly one top-level element, found {len(self.roots)}"
            )

    # ------------------------------------------------------------------
    def load(self, name: str) -> AnnotatedSchema:
        root = self._build_element(self.roots[0], inside_attribute=False,
                                   type_stack=set())
        root.required = False  # occurrence is meaningless for the root
        if root.kind is not NodeKind.STRUCTURAL:
            raise SchemaError(
                "the document root element must not itself be annotated as "
                "a metadata attribute"
            )
        return AnnotatedSchema(root, name=name)

    # ------------------------------------------------------------------
    def _build_element(
        self,
        xs_element: Element,
        inside_attribute: bool,
        type_stack: Set[str],
    ) -> SchemaNode:
        tag = xs_element.attributes.get("name")
        if not tag:
            raise SchemaError("xs:element without a name")
        markers = _read_markers(xs_element)
        min_occurs = int(xs_element.attributes.get("minOccurs", "1"))
        max_occurs_raw = xs_element.attributes.get("maxOccurs", "1")
        repeatable = max_occurs_raw == "unbounded" or int(max_occurs_raw) > 1
        required = min_occurs >= 1

        type_ref = xs_element.attributes.get("type")
        inline_type = _child(xs_element, "complexType")

        if markers.dynamic is not None:
            # The recursive structure below a dynamic section is governed
            # by the DynamicSpec; the declared content (often the
            # recursive attrType) is intentionally not walked.
            return SchemaNode(
                tag,
                NodeKind.ATTRIBUTE,
                None,
                repeatable=repeatable,
                required=required,
                queryable=markers.queryable,
                dynamic=markers.dynamic,
            )

        # Resolve the content model.
        value_type: Optional[ValueType] = None
        content: Optional[Element] = None
        if type_ref is not None and inline_type is not None:
            raise SchemaError(f"element {tag!r} has both type= and inline complexType")
        if type_ref is not None:
            local_ref = _local(type_ref).lower()
            if local_ref in _SIMPLE_TYPES:
                value_type = _SIMPLE_TYPES[local_ref]
            else:
                named = _local(type_ref)
                if named not in self.named_types:
                    raise SchemaError(f"element {tag!r} references unknown type {type_ref!r}")
                if named in type_stack:
                    raise SchemaError(
                        f"recursive type {named!r} reached outside a dynamic "
                        "attribute; recursion must be contained within a "
                        "metadata attribute (rule R4)"
                    )
                content = self.named_types[named]
                type_stack = type_stack | {named}
        elif inline_type is not None:
            content = inline_type
        else:
            value_type = ValueType.STRING  # untyped leaf

        if content is None:
            # Leaf element.
            if markers.is_attribute:
                if inside_attribute:
                    raise SchemaError(
                        f"attribute annotation on {tag!r} inside another attribute"
                    )
                return SchemaNode(
                    tag, NodeKind.ATTRIBUTE, None, repeatable=repeatable,
                    required=required, queryable=markers.queryable,
                    is_element=True, value_type=value_type or ValueType.STRING,
                )
            kind = NodeKind.ELEMENT if inside_attribute else NodeKind.ELEMENT
            if not inside_attribute:
                raise SchemaError(
                    f"leaf element {tag!r} is outside any metadata attribute; "
                    "annotate it or an ancestor as a catalog attribute (R5)"
                )
            return SchemaNode(
                tag, kind, None, repeatable=repeatable, required=required,
                value_type=value_type or ValueType.STRING, is_element=True,
            )

        # Interior element: walk the sequence.
        sequence = _child(content, "sequence")
        if sequence is None:
            raise SchemaError(f"complex element {tag!r} needs an xs:sequence")
        child_inside = inside_attribute or markers.is_attribute
        children = [
            self._build_element(child, child_inside, type_stack)
            for child in _children(sequence, "element")
        ]
        if markers.is_attribute:
            kind = NodeKind.ATTRIBUTE
        elif inside_attribute:
            kind = NodeKind.SUB_ATTRIBUTE
        else:
            kind = NodeKind.STRUCTURAL
        return SchemaNode(
            tag, kind, children, repeatable=repeatable, required=required,
            queryable=markers.queryable,
        )


_TYPE_NAMES = {
    ValueType.STRING: "xs:string",
    ValueType.INTEGER: "xs:integer",
    ValueType.FLOAT: "xs:double",
    ValueType.DATE: "xs:date",
}


def schema_to_xsd(schema: AnnotatedSchema) -> str:
    """Render an :class:`AnnotatedSchema` back into annotated-XSD text.

    The output round-trips: ``load_xsd(schema_to_xsd(s))`` produces a
    schema node-for-node equivalent to ``s`` (property-tested).  All
    content models are emitted inline (named types are a loading
    convenience, not part of the model).
    """
    lines: List[str] = [
        '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"',
        '           xmlns:catalog="urn:repro:catalog">',
    ]
    _render_node(schema.root, lines, indent=1, is_root=True)
    lines.append("</xs:schema>")
    return "\n".join(lines) + "\n"


def _render_node(node: SchemaNode, lines: List[str], indent: int, is_root: bool = False) -> None:
    pad = "  " * indent
    occurs = ""
    if not is_root:
        if not node.required:
            occurs += ' minOccurs="0"'
        if node.repeatable:
            occurs += ' maxOccurs="unbounded"'

    annotation: List[str] = []
    if node.kind is NodeKind.ATTRIBUTE:
        if node.dynamic is not None:
            d = node.dynamic
            annotation = [
                f"{pad}  <xs:annotation><xs:appinfo>",
                f'{pad}    <catalog:dynamic entity="{d.entity_tag}" name="{d.name_tag}"',
                f'{pad}                     source="{d.source_tag}" item="{d.item_tag}"',
                f'{pad}                     label="{d.label_tag}" defs="{d.defs_tag}"',
                f'{pad}                     value="{d.value_tag}"/>',
                f"{pad}  </xs:appinfo></xs:annotation>",
            ]
        else:
            queryable = "" if node.queryable else ' queryable="false"'
            annotation = [
                f"{pad}  <xs:annotation><xs:appinfo>"
                f"<catalog:attribute{queryable}/>"
                f"</xs:appinfo></xs:annotation>"
            ]

    if node.dynamic is not None or (node.is_leaf and node.kind is not NodeKind.STRUCTURAL):
        if node.dynamic is not None:
            lines.append(f'{pad}<xs:element name="{node.tag}"{occurs}>')
            lines.extend(annotation)
            lines.append(f"{pad}</xs:element>")
        else:
            type_name = _TYPE_NAMES[node.value_type]
            if annotation:
                lines.append(
                    f'{pad}<xs:element name="{node.tag}" type="{type_name}"{occurs}>'
                )
                lines.extend(annotation)
                lines.append(f"{pad}</xs:element>")
            else:
                lines.append(
                    f'{pad}<xs:element name="{node.tag}" type="{type_name}"{occurs}/>'
                )
        return

    lines.append(f'{pad}<xs:element name="{node.tag}"{occurs}>')
    lines.extend(annotation)
    lines.append(f"{pad}  <xs:complexType><xs:sequence>")
    for child in node.children:
        _render_node(child, lines, indent + 2)
    lines.append(f"{pad}  </xs:sequence></xs:complexType>")
    lines.append(f"{pad}</xs:element>")


def load_xsd(text: str, name: str = "xsd-schema") -> AnnotatedSchema:
    """Parse annotated XSD ``text`` into a validated, ordered
    :class:`AnnotatedSchema`.

    Raises
    ------
    SchemaError
        For unsupported constructs, unresolved type references,
        non-dynamic recursion, or annotation placements that violate the
        partition rules.
    """
    document = parse(text)
    if _local(document.root.tag) != "schema":
        raise SchemaError(
            f"expected an xs:schema document, got <{document.root.tag}>"
        )
    return _XsdLoader(document.root).load(name)
