"""Exception hierarchy shared across the catalog and its substrates.

All library errors derive from :class:`ReproError` so applications can
catch one base class.  Substrate-specific errors (XML parsing, relational
engine) subclass it in their own modules; the core catalog errors live
here because they are part of the public API surface.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """An annotated schema violates the metadata-attribute partition rules."""


class ShredError(ReproError):
    """A document cannot be shredded against the annotated schema."""


class ValidationError(ShredError):
    """A dynamic metadata attribute failed validation against the registry."""


class QueryError(ReproError):
    """A query is malformed or references unknown definitions."""


class ResponseError(ReproError):
    """A query response could not be reconstructed from stored CLOBs."""


class CatalogError(ReproError):
    """Catalog-level misuse (unknown object ids, duplicate ingest, ...)."""


class CatalogClosedError(CatalogError):
    """An operation was attempted on a closed store.  ``close()`` itself
    is idempotent; everything else on a closed store raises this instead
    of leaking a backend-specific error (``sqlite3.ProgrammingError``)
    or silently operating on released resources."""


class DefinitionError(ReproError):
    """Attribute/element definition registry misuse or conflicts."""
