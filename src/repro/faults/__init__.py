"""``repro.faults`` — crash-safety verification tools (S32).

Deterministic fault injection (:class:`FaultPlan`) plus bounded
retry/backoff for transient failures (:class:`RetryPolicy`).  The
package imports only :mod:`repro.errors` and :mod:`repro.obs`, so both
storage backends can depend on it without cycles.

See the "Crash safety & fault injection" sections of README.md and
DESIGN.md for the site naming convention and the metrics
(``fault_injected_total``, ``txn_commits_total``,
``txn_rollbacks_total``, ``txn_retries_total``).
"""

from .plan import FaultError, FaultPlan, TransientFault
from .retry import DEFAULT_RETRY, NO_RETRY, RetryPolicy, is_transient

__all__ = [
    "DEFAULT_RETRY",
    "FaultError",
    "FaultPlan",
    "NO_RETRY",
    "RetryPolicy",
    "TransientFault",
    "is_transient",
]
