"""Deterministic fault injection for the catalog write paths.

Crash safety is only believable when it is *tested*, and testing it
needs a way to fail any individual write deterministically.  A
:class:`FaultPlan` is armed on a store
(:meth:`repro.core.storage.HybridStore.install_faults`) and consulted
before every statement a write transaction issues — an ``executemany``
on the sqlite backend, a row insert or a ``delete_where`` on the
in-memory store.  The plan can

* fail the Nth statement of the plan's lifetime (``fail_at=N``,
  1-based) — sweeping N over a workload exercises every intermediate
  crash point;
* fail at a named site (``site="insert:clobs"``), from the Kth
  occurrence of that site onward (``site_occurrence=K``) — a site plan
  keeps failing until cleared or healed, which retry-exhaustion tests
  need;
* raise an arbitrary exception (``exc=...``, an instance or a zero-arg
  factory); the default is :class:`FaultError`, and
  :class:`TransientFault` models sqlite's ``database is locked``;
* disarm itself after the first trigger (``heal=True``), so a retried
  operation succeeds — the one-shot failure retry tests need.

Statement *sites* are ``verb:table`` strings (``insert:objects``,
``delete:attr_ancestors``) and are identical across backends so one
plan drives both.  A plan with no trigger condition is a pure counter:
run a workload once against it and read :attr:`statements_seen` to
learn how many injection points the workload has.

Every trigger increments ``fault_injected_total{site=}`` in the store's
metrics registry.
"""

from __future__ import annotations

import sqlite3
from typing import Callable, List, Optional, Tuple, Union

from ..errors import ReproError
from ..obs.metrics import MetricsRegistry

__all__ = ["FaultError", "TransientFault", "FaultPlan"]


class FaultError(ReproError):
    """The default injected failure (a hard, non-transient fault)."""


class TransientFault(sqlite3.OperationalError):
    """An injected transient failure, indistinguishable from sqlite's
    ``database is locked`` so it exercises the real retry path."""

    def __init__(self, message: str = "database is locked (injected)") -> None:
        super().__init__(message)


class FaultPlan:
    """A deterministic schedule of injected write failures."""

    def __init__(
        self,
        fail_at: Optional[int] = None,
        site: Optional[str] = None,
        site_occurrence: int = 1,
        exc: Union[None, BaseException, Callable[[], BaseException]] = None,
        heal: bool = False,
    ) -> None:
        if fail_at is not None and fail_at < 1:
            raise ValueError("fail_at is 1-based")
        if site_occurrence < 1:
            raise ValueError("site_occurrence is 1-based")
        self.fail_at = fail_at
        self.site = site
        self.site_occurrence = site_occurrence
        self.exc = exc
        self.heal = heal
        self.armed = fail_at is not None or site is not None
        #: Statements observed over the plan's lifetime (counting
        #: continues after the plan disarms, so a healed retry's
        #: statements are still visible to assertions).
        self.statements_seen = 0
        self._site_seen = 0
        #: ``(statement_index, site)`` for every injected failure.
        self.triggered: List[Tuple[int, str]] = []

    # ------------------------------------------------------------------
    def _matches(self, site: str) -> bool:
        if self.site is not None:
            if site != self.site:
                return False
            if self._site_seen < self.site_occurrence:
                return False
            # With both a site and fail_at, fail_at is the Nth global
            # statement *and* the site must match.
            if self.fail_at is not None and self.statements_seen != self.fail_at:
                return False
            return True
        return self.fail_at is not None and self.statements_seen == self.fail_at

    def _raise(self, site: str) -> BaseException:
        exc = self.exc
        if callable(exc):
            exc = exc()
        if exc is None:
            exc = FaultError(
                f"injected fault at statement {self.statements_seen} ({site})"
            )
        return exc

    def before(self, site: str, registry: Optional[MetricsRegistry] = None) -> None:
        """Called by the store before each write statement; raises when
        the plan says this statement fails."""
        self.statements_seen += 1
        if site == self.site:
            self._site_seen += 1
        if not self.armed or not self._matches(site):
            return
        self.triggered.append((self.statements_seen, site))
        if self.heal:
            self.armed = False
        if registry is not None:
            registry.counter(
                "fault_injected_total", "write faults injected by a FaultPlan",
                labels=("site",),
            ).labels(site=site).inc()
        raise self._raise(site)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = (
            f"site={self.site!r}#{self.site_occurrence}"
            if self.site is not None
            else f"fail_at={self.fail_at}"
        )
        return (
            f"FaultPlan({target}, heal={self.heal}, armed={self.armed}, "
            f"seen={self.statements_seen})"
        )
