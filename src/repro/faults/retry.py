"""Bounded retry with exponential backoff for transient write failures.

sqlite raises ``OperationalError: database is locked`` when another
connection holds the write lock; the AMGA catalog (PAPERS.md) treats
such failures as retryable, and so do we: the store retries the whole
transaction (the rollback already restored a clean state) a bounded
number of times, sleeping ``base_delay * multiplier**(attempt-1)``
capped at ``max_delay`` between attempts.  Non-transient failures
(constraint violations, injected :class:`~repro.faults.plan.FaultError`
faults, application bugs) are never retried — they propagate after the
rollback.

Each retry increments ``txn_retries_total{site=}``.  ``sleep`` is
injectable so tests assert the backoff schedule without waiting.
"""

from __future__ import annotations

import sqlite3
import time
from typing import Callable

__all__ = ["RetryPolicy", "DEFAULT_RETRY", "NO_RETRY", "is_transient"]

#: Substrings of sqlite OperationalError messages worth retrying.
_TRANSIENT_MARKERS = ("database is locked", "database table is locked",
                     "database is busy")


def is_transient(exc: BaseException) -> bool:
    """True for failures that may succeed on retry (lock contention)."""
    if isinstance(exc, sqlite3.OperationalError):
        message = str(exc).lower()
        return any(marker in message for marker in _TRANSIENT_MARKERS)
    return False


class RetryPolicy:
    """How many times to retry a transaction and how long to wait."""

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.005,
        multiplier: float = 2.0,
        max_delay: float = 0.25,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0 or multiplier < 1.0:
            raise ValueError("backoff parameters must be non-negative and "
                             "multiplier >= 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.sleep = sleep

    def is_transient(self, exc: BaseException) -> bool:
        return is_transient(exc)

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.base_delay * self.multiplier ** (attempt - 1),
                   self.max_delay)

    def pause(self, attempt: int) -> None:
        delay = self.backoff(attempt)
        if delay > 0:
            self.sleep(delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, multiplier={self.multiplier}, "
            f"max_delay={self.max_delay})"
        )


#: The store default: three attempts, 5 ms → 10 ms backoff.
DEFAULT_RETRY = RetryPolicy()

#: Single attempt, no waiting — disables retry entirely.
NO_RETRY = RetryPolicy(max_attempts=1)
