"""The central fault-site registry (enforced by ``repro lint`` FLT01).

Every injection point the crash-safety machinery knows about is named
here, in one place, so the deterministic fault sweeps cannot silently
go dead after a rename:

* :data:`STATEMENT_SITES` — the per-statement ``verb:table`` sites a
  :class:`~repro.faults.plan.FaultPlan` is consulted at
  (:meth:`HybridStore._fault` on the memory store, the tracked-
  connection proxy on sqlite).  The names are identical across
  backends so one plan drives both.
* :data:`TRANSACTION_SITES` — the logical-operation labels passed to
  ``run_transaction`` / ``transaction`` (they label the
  ``txn_commits_total`` / ``txn_rollbacks_total`` /
  ``txn_retries_total`` counters and the retry policy's unit of work).

The FLT01 rule statically verifies that (a) every site string literal
used with ``FaultPlan(site=...)``, ``run_transaction(...)``, or
``_fault(...)`` anywhere in ``src/`` is registered here, and (b) every
registered *statement* site appears in at least one test under
``tests/faults/`` — a fault sweep that no longer reaches a site is a
CI failure, not a silent gap.  :func:`check_site` gives dynamic
call sites the same guarantee at runtime.
"""

from __future__ import annotations

from typing import FrozenSet

__all__ = [
    "STATEMENT_SITES",
    "TRANSACTION_SITES",
    "ALL_SITES",
    "check_site",
]

#: The catalog tables whose rows belong to exactly one object, in the
#: order ``delete_object`` clears them.
OBJECT_ROW_TABLES: tuple = (
    "objects", "clobs", "attributes", "elements", "attr_ancestors",
)

#: Per-statement ``verb:table`` injection sites (see
#: :func:`repro.backends.sqlite._statement_site` for the sqlite-side
#: derivation; the memory store names them explicitly).
STATEMENT_SITES: FrozenSet[str] = frozenset(
    {
        # Definition sync.
        "insert:attr_defs",
        "insert:elem_defs",
        # Ingest / incremental append.
        "insert:objects",
        "insert:clobs",
        "insert:attributes",
        "insert:elements",
        "insert:attr_ancestors",
        # Object deletion (one site per object-row table).
        "delete:objects",
        "delete:clobs",
        "delete:attributes",
        "delete:elements",
        "delete:attr_ancestors",
        # Schema installation (sqlite loads ordering rows in bulk).
        "insert:schema_order",
        "insert:node_ancestors",
        # Reader-pool connection acquisition (sqlite on-disk catalogs).
        # Consulted only by plans that target it explicitly, so the
        # deterministic fail_at sweeps over write statements are not
        # perturbed by concurrent reads.
        "pool:acquire",
        # Sharded-catalog federation points (repro.sharding).  Like
        # pool:acquire these are consulted only when a plan targets
        # them by name, so fail_at sweeps over per-shard write
        # statements do not drift when the routing layer changes.
        "shard:write",   # before routing a write to its owning shard
        "shard:sync",    # before each shard's definition-sync fan-out leg
        "shard:query",   # before each shard's scatter-gather query leg
    }
)

#: Logical-operation transaction labels (``run_transaction`` sites).
TRANSACTION_SITES: FrozenSet[str] = frozenset(
    {
        "install_schema",
        "sync_definitions",
        "store_object",
        "append_rows",
        "delete_object",
        "remove_attribute_instance",
        "catalog.ingest",
        "catalog.add_attribute",
        "txn",  # the bare default of HybridStore.transaction()
    }
)

ALL_SITES: FrozenSet[str] = STATEMENT_SITES | TRANSACTION_SITES


def check_site(site: str) -> str:
    """Validate a dynamically built site name against the registry;
    returns it unchanged.  Call sites that cannot use a string literal
    (and therefore escape the FLT01 static check) go through here so
    an unregistered name still fails fast, in tests."""
    if site not in ALL_SITES:
        raise ValueError(
            f"fault site {site!r} is not registered in repro.faults.sites"
        )
    return site
