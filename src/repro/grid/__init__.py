"""``repro.grid`` — the LEAD-grid context substrates (S14–S17).

* :mod:`.leadschema` — the annotated LEAD schema of Figure 2 and the
  Figure 3 example document.
* :mod:`.namelist` — Fortran namelist parsing (ARPS/WRF model
  parameters → dynamic metadata attribute subtrees).
* :mod:`.generator` — deterministic synthetic metadata documents.
* :mod:`.workload` — query workloads over generated corpora.
* :mod:`.service` — a myLEAD-like personal catalog service facade.
"""

from .cfontology import cf_ontology
from .clrcschema import clrc_schema, define_isis_conditions, sample_study
from .context import ContextSearch
from .generator import (
    ARPS_GROUPS,
    CF_STANDARD_NAMES,
    MODELS,
    WRF_GROUPS,
    CorpusConfig,
    LeadCorpusGenerator,
    PlantedMarker,
)
from .leadschema import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from .leadschema_xsd import LEAD_XSD, lead_schema_from_xsd
from .namelist import (
    NamelistError,
    NamelistGroup,
    namelist_to_detailed,
    parse_namelist,
    register_namelist_definitions,
)
from .service import Experiment, MyLeadService, User
from .workload import WorkloadGenerator

__all__ = [
    "ARPS_GROUPS",
    "CF_STANDARD_NAMES",
    "ContextSearch",
    "CorpusConfig",
    "Experiment",
    "FIG3_DOCUMENT",
    "LEAD_XSD",
    "LeadCorpusGenerator",
    "lead_schema_from_xsd",
    "MODELS",
    "MyLeadService",
    "NamelistError",
    "NamelistGroup",
    "PlantedMarker",
    "User",
    "WRF_GROUPS",
    "WorkloadGenerator",
    "cf_ontology",
    "clrc_schema",
    "define_fig3_attributes",
    "define_isis_conditions",
    "sample_study",
    "lead_schema",
    "namelist_to_detailed",
    "parse_namelist",
    "register_namelist_definitions",
]
