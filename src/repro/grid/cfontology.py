"""A small CF-style keyword ontology over the generator vocabulary.

Organizes the CF standard names the corpus generator emits into a
broader/narrower hierarchy with informal synonyms, so the §3
"connected to an ontology" search path has a realistic instance:
querying ``themekey = "precipitation"`` matches every specific
precipitation variable a document may be tagged with.
"""

from __future__ import annotations

from ..core.ontology import Ontology


def cf_ontology() -> Ontology:
    """Build the LEAD/CF keyword ontology (fresh instance)."""
    onto = Ontology("cf-keywords")

    onto.add_term("atmospheric_variable")

    onto.add_term("precipitation", synonyms=["rainfall"],
                  broader="atmospheric_variable")
    for term in (
        "convective_precipitation_amount",
        "convective_precipitation_flux",
        "precipitation_amount",
        "precipitation_flux",
        "snowfall_amount",
    ):
        onto.add_term(term, broader="precipitation")

    onto.add_term("pressure", broader="atmospheric_variable")
    for term in (
        "air_pressure",
        "air_pressure_at_cloud_base",
        "air_pressure_at_cloud_top",
        "surface_air_pressure",
    ):
        onto.add_term(term, broader="pressure")

    onto.add_term("temperature", broader="atmospheric_variable")
    for term in (
        "air_temperature",
        "dew_point_temperature",
        "soil_temperature",
        "surface_temperature",
        "tendency_of_air_temperature",
        "equivalent_potential_temperature",
    ):
        onto.add_term(term, broader="temperature")

    onto.add_term("wind", broader="atmospheric_variable")
    for term in (
        "wind_speed",
        "wind_from_direction",
        "eastward_wind",
        "northward_wind",
        "upward_air_velocity",
        "vertical_wind_shear",
    ):
        onto.add_term(term, broader="wind")

    onto.add_term("moisture", synonyms=["humidity"],
                  broader="atmospheric_variable")
    for term in (
        "relative_humidity",
        "specific_humidity",
        "soil_moisture_content",
        "graupel_mixing_ratio",
        "rain_water_mixing_ratio",
        "snow_mixing_ratio",
    ):
        onto.add_term(term, broader="moisture")

    onto.add_term("severe_weather", synonyms=["convective_hazard"],
                  broader="atmospheric_variable")
    for term in (
        "convective_available_potential_energy",
        "convective_inhibition",
        "storm_relative_helicity",
        "lifted_index",
        "hail_diameter",
        "tornado_probability",
        "lightning_flash_rate",
    ):
        onto.add_term(term, broader="severe_weather")

    onto.add_term("cloud", broader="atmospheric_variable")
    for term in (
        "cloud_area_fraction",
        "cloud_base_altitude",
    ):
        onto.add_term(term, broader="cloud")

    onto.add_term("radar", broader="atmospheric_variable")
    for term in ("radar_reflectivity", "composite_reflectivity"):
        onto.add_term(term, broader="radar")

    return onto
