"""A CLRC-style cross-discipline metadata schema (paper §1, §7).

The paper's introduction cites the UK CLRC Scientific Metadata Model
[2] as the other major grid metadata effort, and its conclusion claims
the hybrid approach "generalizes to metadata in other scientific grid
environments".  This module backs that claim with a second annotated
community schema, shaped after the CLRC model's top-level structure
(study → investigation → data holdings, with topic keywords, access
conditions, and instrument-specific dynamic parameters).

Everything the catalog does — partitioning, ordering, dual shredding,
dynamic attributes, querying, reconstruction — works unchanged on this
schema; ``tests/grid/test_clrc.py`` exercises the full pipeline on it.
"""

from __future__ import annotations

from ..core.schema import (
    AnnotatedSchema,
    DynamicSpec,
    ValueType,
    attribute,
    melement,
    structural,
    sub_attribute,
)
from ..xmlkit import element, pretty_print


def clrc_schema() -> AnnotatedSchema:
    """Build the annotated CLRC-style schema (fresh instance)."""
    root = structural(
        "study",
        attribute("studyID", required=True),
        attribute(
            "investigator",
            melement("name"),
            melement("institution"),
            melement("role"),
            repeatable=True,
        ),
        structural(
            "metadata",
            attribute(
                "topic",
                melement("discipline"),
                melement("keyword", repeatable=True),
                repeatable=True,
            ),
            attribute(
                "description",
                melement("purpose"),
                melement("abstract"),
            ),
            attribute(
                "access",
                melement("conditions"),
                melement("releaseDate", value_type=ValueType.DATE),
            ),
        ),
        structural(
            "investigation",
            attribute(
                "experimentConditions",
                repeatable=True,
                dynamic=DynamicSpec(
                    entity_tag="conditionSet",
                    name_tag="setName",
                    source_tag="facility",
                    item_tag="condition",
                    label_tag="parameter",
                    defs_tag="definedBy",
                    value_tag="reading",
                ),
            ),
            attribute(
                "dataHolding",
                melement("locator"),
                melement("format"),
                melement("sizeBytes", value_type=ValueType.INTEGER),
                sub_attribute(
                    "timeWindow",
                    melement("start", value_type=ValueType.DATE),
                    melement("end", value_type=ValueType.DATE),
                ),
                repeatable=True,
            ),
        ),
    )
    return AnnotatedSchema(root, name="CLRC")


def sample_study(
    study_id: str = "clrc:study:0001",
    keywords=("neutron scattering", "condensed matter"),
    beam_current: float = 180.0,
) -> str:
    """One synthetic CLRC study document (ISIS-flavoured)."""
    doc = element(
        "study",
        element("studyID", study_id),
        element(
            "investigator",
            element("name", "Dr. Grace Evans"),
            element("institution", "CLRC Rutherford Appleton Laboratory"),
            element("role", "principal investigator"),
        ),
        element(
            "metadata",
            element(
                "topic",
                element("discipline", "physics"),
                *[element("keyword", k) for k in keywords],
            ),
            element(
                "description",
                element("purpose", "structure determination"),
                element("abstract", "Neutron diffraction study of a layered oxide."),
            ),
            element(
                "access",
                element("conditions", "embargoed"),
                element("releaseDate", "2007-01-01"),
            ),
        ),
        element(
            "investigation",
            element(
                "experimentConditions",
                element(
                    "conditionSet",
                    element("setName", "beamline"),
                    element("facility", "ISIS"),
                ),
                element(
                    "condition",
                    element("parameter", "beam-current"),
                    element("definedBy", "ISIS"),
                    element("reading", str(beam_current)),
                ),
                element(
                    "condition",
                    element("parameter", "sample-environment"),
                    element("definedBy", "ISIS"),
                    element(
                        "condition",
                        element("parameter", "temperature"),
                        element("definedBy", "ISIS"),
                        element("reading", "4.2"),
                    ),
                ),
            ),
            element(
                "dataHolding",
                element("locator", "srb://clrc/raw/run-5512.nxs"),
                element("format", "NeXus"),
                element("sizeBytes", "52428800"),
                element(
                    "timeWindow",
                    element("start", "2005-11-02"),
                    element("end", "2005-11-03"),
                ),
            ),
        ),
    )
    return pretty_print(doc)


def define_isis_conditions(catalog) -> None:
    """Register the ISIS dynamic condition vocabulary used by
    :func:`sample_study` (admin scope)."""
    beamline = catalog.define_attribute(
        "beamline", "ISIS", host="experimentConditions"
    )
    catalog.define_element(beamline, "beam-current", "ISIS", ValueType.FLOAT)
    environment = catalog.define_attribute(
        "sample-environment", "ISIS", host="experimentConditions", parent=beamline
    )
    catalog.define_element(environment, "temperature", "ISIS", ValueType.FLOAT)
