"""Context and containment queries (paper §7).

The conclusion singles out myLEAD's "ability to perform complex context
queries" and notes the GUI "addresses queries from a containment
viewpoint, but it does not address searching for objects based on a
broader context".  This module provides both viewpoints on top of the
service's experiment/file hierarchy:

* **containment** — find experiments *containing* files that match a
  metadata query (any-file or all-files semantics);
* **context** — find objects whose *context* (the sibling files of the
  same experiment) matches a query, e.g. "model outputs from
  experiments that also contain a radar-observation file".

Both reuse the ordinary attribute-query machinery, so every criterion
is still validated against the definition registry and answered by the
Fig-4 plan; the context layer only adds set algebra over the
containment links.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.query import ObjectQuery
from ..errors import QueryError
from .service import Experiment, MyLeadService


class ContextSearch:
    """Containment/context search over a myLEAD service."""

    def __init__(self, service: MyLeadService) -> None:
        self.service = service

    # ------------------------------------------------------------------
    # Containment viewpoint
    # ------------------------------------------------------------------
    def experiments_containing(
        self,
        user: str,
        query: ObjectQuery,
        mode: str = "any",
    ) -> List[Experiment]:
        """Experiments with matching files visible to ``user``.

        ``mode="any"``: at least one visible file matches.
        ``mode="all"``: every visible file matches (experiments whose
        visible file set is empty never match).
        """
        if mode not in ("any", "all"):
            raise QueryError(f"mode must be 'any' or 'all', not {mode!r}")
        matching = set(self.service.query(user, query))
        out: List[Experiment] = []
        for experiment in self._experiments():
            visible = [
                oid
                for oid in experiment.file_ids
                if self.service.is_visible(user, oid)
            ]
            if not visible:
                continue
            hits = [oid for oid in visible if oid in matching]
            if mode == "any" and hits:
                out.append(experiment)
            elif mode == "all" and len(hits) == len(visible):
                out.append(experiment)
        return out

    def files_matching_in(
        self,
        user: str,
        experiment: Experiment,
        query: ObjectQuery,
    ) -> List[int]:
        """Matching files of one experiment, visibility-filtered."""
        matching = set(self.service.query(user, query))
        return [
            oid
            for oid in experiment.file_ids
            if oid in matching and self.service.is_visible(user, oid)
        ]

    # ------------------------------------------------------------------
    # Broader-context viewpoint
    # ------------------------------------------------------------------
    def objects_in_context(
        self,
        user: str,
        context_query: ObjectQuery,
        object_query: Optional[ObjectQuery] = None,
    ) -> List[int]:
        """Objects whose experiment also contains a match for
        ``context_query``.

        With ``object_query`` the returned objects must themselves match
        it; without, every visible file of a context-matching experiment
        is returned.  An object does not count as its own context — the
        context match must come from a *different* file, which is what
        makes this "broader context" rather than plain containment.
        """
        context_matches = set(self.service.query(user, context_query))
        candidates = (
            set(self.service.query(user, object_query))
            if object_query is not None
            else None
        )
        out: List[int] = []
        for experiment in self._experiments():
            visible = [
                oid
                for oid in experiment.file_ids
                if self.service.is_visible(user, oid)
            ]
            context_here = [oid for oid in visible if oid in context_matches]
            if not context_here:
                continue
            for oid in visible:
                # The context must be provided by a sibling, not the
                # object itself.
                others = [c for c in context_here if c != oid]
                if not others:
                    continue
                if candidates is not None and oid not in candidates:
                    continue
                out.append(oid)
        return sorted(set(out))

    def context_of(self, user: str, object_id: int) -> List[int]:
        """The sibling files sharing ``object_id``'s experiment, visible
        to ``user`` (the object itself excluded)."""
        experiment_id = self.service._experiment_of_object.get(object_id)
        if experiment_id is None:
            return []
        experiment = self.service.experiment(experiment_id)
        return [
            oid
            for oid in experiment.file_ids
            if oid != object_id and self.service.is_visible(user, oid)
        ]

    # ------------------------------------------------------------------
    def _experiments(self) -> List[Experiment]:
        return [
            self.service.experiment(eid)
            for eid in sorted(self.service._experiments)
        ]
