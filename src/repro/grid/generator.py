"""Deterministic synthetic LEAD metadata corpora (substrate S16).

The paper's group evaluated grid metadata systems with a synthetic
database benchmark ([7], CCGrid'04); in the same spirit this module
generates metadata documents over the Figure-2 LEAD schema with
controllable shape:

* keyword attributes (themes/places/strata/temporal) drawn from
  CF-convention and geographic vocabularies;
* citation/status/timeperd/bounding structural attributes;
* dynamic ``detailed`` sections with ARPS- or WRF-style namelist
  parameter groups, with a configurable sub-attribute nesting depth
  (the E3 sweep variable);
* optional **planted markers** — theme keywords inserted into a known
  fraction of documents so query selectivity is exact by construction
  (the E8 sweep variable).

Generation is deterministic: document ``i`` of a given config is always
byte-identical (each document seeds its own ``random.Random``), so
benchmarks are reproducible and corpora never need to be shipped.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..xmlkit import Element, element, pretty_print
from .namelist import NamelistGroup, namelist_to_detailed

# ---------------------------------------------------------------------------
# Vocabularies
# ---------------------------------------------------------------------------

CF_STANDARD_NAMES = [
    "air_temperature", "air_pressure", "air_pressure_at_cloud_base",
    "air_pressure_at_cloud_top", "convective_precipitation_amount",
    "convective_precipitation_flux", "relative_humidity", "dew_point_temperature",
    "wind_speed", "wind_from_direction", "eastward_wind", "northward_wind",
    "upward_air_velocity", "atmosphere_boundary_layer_thickness",
    "cloud_area_fraction", "cloud_base_altitude", "precipitation_amount",
    "precipitation_flux", "snowfall_amount", "soil_moisture_content",
    "soil_temperature", "surface_air_pressure", "surface_temperature",
    "tendency_of_air_temperature", "geopotential_height", "specific_humidity",
    "equivalent_potential_temperature", "convective_available_potential_energy",
    "convective_inhibition", "storm_relative_helicity", "lifted_index",
    "vertical_wind_shear", "radar_reflectivity", "composite_reflectivity",
    "hail_diameter", "tornado_probability", "lightning_flash_rate",
    "graupel_mixing_ratio", "rain_water_mixing_ratio", "snow_mixing_ratio",
]

PLACE_KEYWORDS = [
    "Oklahoma", "Kansas", "Nebraska", "Texas", "Iowa", "Missouri", "Arkansas",
    "Colorado", "New Mexico", "Louisiana", "Illinois", "Indiana", "Minnesota",
    "South Dakota", "Great Plains", "Tornado Alley", "Gulf Coast", "Midwest",
]

STRATUM_KEYWORDS = [
    "surface", "boundary layer", "lower troposphere", "mid troposphere",
    "upper troposphere", "tropopause", "stratosphere",
]

TEMPORAL_KEYWORDS = [
    "spring 2005", "summer 2005", "fall 2005", "winter 2005",
    "spring 2006", "summer 2006", "convective season", "nowcast", "forecast",
]

ORIGINS = [
    "LEAD Project", "CAPS", "NCSA", "Unidata", "Indiana University",
    "University of Oklahoma", "Millersville University", "Howard University",
]

PROGRESS_VALUES = ["Complete", "In work", "Planned"]

#: ARPS-style namelist parameter pools: group -> [(param, kind)] where
#: kind is "int", "float", or "str".
ARPS_GROUPS: Dict[str, List[Tuple[str, str]]] = {
    "grid": [
        ("nx", "int"), ("ny", "int"), ("nz", "int"),
        ("dx", "float"), ("dy", "float"), ("dz", "float"),
        ("strhopt", "int"), ("dzmin", "float"), ("ctrlat", "float"),
        ("ctrlon", "float"),
    ],
    "timestep": [
        ("dtbig", "float"), ("dtsml", "float"), ("tstart", "float"),
        ("tstop", "float"), ("vimplct", "int"),
    ],
    "physics": [
        ("mphyopt", "int"), ("cnvctopt", "int"), ("sfcphy", "int"),
        ("radopt", "int"), ("kfsubsattrig", "int"),
    ],
    "initialization": [
        ("initopt", "int"), ("inifmt", "int"), ("inifile", "str"),
        ("inigbf", "str"),
    ],
}

WRF_GROUPS: Dict[str, List[Tuple[str, str]]] = {
    "domains": [
        ("time_step", "int"), ("max_dom", "int"), ("e_we", "int"),
        ("e_sn", "int"), ("e_vert", "int"), ("dx", "float"), ("dy", "float"),
        ("grid_id", "int"), ("parent_id", "int"),
    ],
    "physics": [
        ("mp_physics", "int"), ("ra_lw_physics", "int"), ("ra_sw_physics", "int"),
        ("sf_surface_physics", "int"), ("bl_pbl_physics", "int"),
        ("cu_physics", "int"),
    ],
    "dynamics": [
        ("w_damping", "int"), ("diff_opt", "int"), ("km_opt", "int"),
        ("khdif", "float"), ("kvdif", "float"), ("non_hydrostatic", "str"),
    ],
}

MODELS = {"ARPS": ARPS_GROUPS, "WRF": WRF_GROUPS}


class PlantedMarker:
    """Plants theme keyword ``keyword`` into every ``period``-th document
    (offset 0), giving the marker an exact selectivity of 1/period."""

    __slots__ = ("keyword", "period")

    def __init__(self, keyword: str, period: int) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.keyword = keyword
        self.period = period

    def applies_to(self, index: int) -> bool:
        return index % self.period == 0

    @property
    def selectivity(self) -> float:
        return 1.0 / self.period


class CorpusConfig:
    """Shape of a generated corpus.

    Parameters
    ----------
    seed:
        Base seed; document ``i`` derives its own RNG from ``seed + i``.
    themes / places:
        Instances of the repeatable keyword attributes per document.
    keys_per_theme:
        ``themekey`` values per theme instance.
    dynamic_groups:
        Namelist parameter groups per document (0 disables the dynamic
        section).
    params_per_group:
        Parameters per group.
    dynamic_depth:
        Nesting depth of dynamic sub-attributes: 1 = flat parameters;
        each extra level wraps ``params_per_group`` parameters inside a
        chain of sub-attributes (the E3 sweep).
    models:
        Which model vocabularies to draw from.
    planted:
        Markers with exact selectivities (the E8 sweep).
    """

    def __init__(
        self,
        seed: int = 2006,
        themes: int = 2,
        places: int = 1,
        keys_per_theme: int = 3,
        dynamic_groups: int = 2,
        params_per_group: int = 6,
        dynamic_depth: int = 2,
        models: Sequence[str] = ("ARPS", "WRF"),
        planted: Sequence[PlantedMarker] = (),
    ) -> None:
        if dynamic_depth < 1:
            raise ValueError("dynamic_depth must be >= 1")
        for model in models:
            if model not in MODELS:
                raise ValueError(f"unknown model {model!r}")
        self.seed = seed
        self.themes = themes
        self.places = places
        self.keys_per_theme = keys_per_theme
        self.dynamic_groups = dynamic_groups
        self.params_per_group = params_per_group
        self.dynamic_depth = dynamic_depth
        self.models = tuple(models)
        self.planted = tuple(planted)


class LeadCorpusGenerator:
    """Deterministic generator of LEAD metadata documents."""

    def __init__(self, config: Optional[CorpusConfig] = None) -> None:
        self.config = config or CorpusConfig()

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def document_tree(self, index: int) -> Element:
        """The ``index``-th document as an element tree."""
        cfg = self.config
        rng = random.Random(cfg.seed * 1_000_003 + index)

        keywords = element("keywords")
        for t in range(cfg.themes):
            theme = element("theme", element("themekt", "CF NetCDF"))
            chosen = rng.sample(CF_STANDARD_NAMES, min(cfg.keys_per_theme, len(CF_STANDARD_NAMES)))
            for key in chosen:
                theme.append(element("themekey", key))
            if t == 0:
                for marker in cfg.planted:
                    if marker.applies_to(index):
                        theme.append(element("themekey", marker.keyword))
            keywords.append(theme)
        for _ in range(cfg.places):
            place = element("place", element("placekt", "GNIS"))
            for key in rng.sample(PLACE_KEYWORDS, min(2, len(PLACE_KEYWORDS))):
                place.append(element("placekey", key))
            keywords.append(place)
        keywords.append(
            element(
                "stratum",
                element("stratkt", "LEAD"),
                element("stratkey", rng.choice(STRATUM_KEYWORDS)),
            )
        )
        keywords.append(
            element(
                "temporal",
                element("tempkt", "LEAD"),
                element("tempkey", rng.choice(TEMPORAL_KEYWORDS)),
            )
        )

        year = rng.choice([2004, 2005, 2006])
        month = rng.randint(1, 12)
        day = rng.randint(1, 28)
        pubdate = f"{year:04d}-{month:02d}-{day:02d}"
        idinfo = element(
            "idinfo",
            element(
                "status",
                element("progress", rng.choice(PROGRESS_VALUES)),
                element("update", rng.choice(["Continually", "As needed", "None planned"])),
            ),
            element(
                "citation",
                element("origin", rng.choice(ORIGINS)),
                element("pubdate", pubdate),
                element("title", f"Forecast run {index:06d}"),
            ),
            element(
                "timeperd",
                element("begdate", pubdate),
                element("enddate", f"{year:04d}-{month:02d}-{min(day + 1, 28):02d}"),
            ),
            keywords,
            element("accconst", rng.choice(["None", "Project members only"])),
            element("useconst", "Research use"),
        )

        west = round(rng.uniform(-105.0, -95.0), 3)
        south = round(rng.uniform(30.0, 38.0), 3)
        geospatial = element(
            "geospatial",
            element(
                "spdom",
                element(
                    "bounding",
                    element("westbc", str(west)),
                    element("eastbc", str(round(west + rng.uniform(2.0, 6.0), 3))),
                    element("northbc", str(round(south + rng.uniform(2.0, 6.0), 3))),
                    element("southbc", str(south)),
                ),
            ),
            element(
                "vertdom",
                element("vertmin", "0.0"),
                element("vertmax", str(round(rng.uniform(12000.0, 20000.0), 1))),
            ),
        )
        sections = self._dynamic_sections(rng)
        if sections:
            # Optional wrappers are emitted only when non-empty; an
            # empty <eainfo/> holds no metadata attribute and therefore
            # could not be reconstructed from CLOBs (paper §5).
            geospatial.append(element("eainfo", *sections))

        return element(
            "LEADresource",
            element("resourceID", f"lead:resource:{self.config.seed}:{index:06d}"),
            element("data", idinfo, geospatial),
        )

    def document(self, index: int) -> str:
        """The ``index``-th document as pretty-printed XML text."""
        return pretty_print(self.document_tree(index))

    def documents(self, count: int) -> Iterator[str]:
        for i in range(count):
            yield self.document(i)

    # ------------------------------------------------------------------
    # Dynamic sections
    # ------------------------------------------------------------------
    def _dynamic_sections(self, rng: random.Random) -> List[Element]:
        cfg = self.config
        sections: List[Element] = []
        if cfg.dynamic_groups == 0:
            return sections
        model = rng.choice(cfg.models)
        pools = MODELS[model]
        group_names = list(pools)
        rng.shuffle(group_names)
        for g in range(cfg.dynamic_groups):
            group_name = group_names[g % len(group_names)]
            pool = pools[group_name]
            group = NamelistGroup(group_name)
            chosen = pool[: cfg.params_per_group]
            for param, kind in chosen:
                group.set(param, [self._value_for(rng, kind)])
            detailed = namelist_to_detailed(group, model)
            if cfg.dynamic_depth > 1:
                self._nest(detailed, group_name, model, rng, cfg.dynamic_depth - 1)
            sections.append(detailed)
        return sections

    def _nest(self, detailed: Element, group_name: str, model: str,
              rng: random.Random, extra_levels: int) -> None:
        """Wrap a chain of sub-attributes (``<attr>`` items) of the given
        depth under ``detailed``, each level carrying one parameter."""
        parent = detailed
        for level in range(1, extra_levels + 1):
            sub = element(
                "attr",
                element("attrlabl", f"{group_name}-section-l{level}"),
                element("attrdefs", model),
            )
            sub.append(
                element(
                    "attr",
                    element("attrlabl", f"{group_name}-param-l{level}"),
                    element("attrdefs", model),
                    element("attrv", str(self._value_for(rng, "float"))),
                )
            )
            parent.append(sub)
            parent = sub

    @staticmethod
    def _value_for(rng: random.Random, kind: str):
        if kind == "int":
            return rng.randint(0, 100)
        if kind == "float":
            return round(rng.uniform(0.0, 5000.0), 3)
        return rng.choice(["arps25may.bin", "wrfinput_d01", "initial.grb", ".true."])

    # ------------------------------------------------------------------
    # Definitions
    # ------------------------------------------------------------------
    def register_definitions(self, catalog) -> None:
        """Register every dynamic definition this generator can emit, so
        corpora shred without warnings (value types per parameter kind).
        Safe to call once per catalog."""
        from ..core.schema import ValueType

        kind_types = {"int": ValueType.INTEGER, "float": ValueType.FLOAT,
                      "str": ValueType.STRING}
        for model in self.config.models:
            for group_name, pool in MODELS[model].items():
                attr_def = catalog.define_attribute(group_name, model, host="detailed")
                for param, kind in pool:
                    catalog.define_element(attr_def, param, model, kind_types[kind])
                # Nesting chain definitions (E3 sweeps reuse them).
                parent = attr_def
                for level in range(1, self.config.dynamic_depth):
                    sub = catalog.define_attribute(
                        f"{group_name}-section-l{level}", model,
                        host="detailed", parent=parent,
                    )
                    catalog.define_element(
                        sub, f"{group_name}-param-l{level}", model, ValueType.FLOAT
                    )
                    parent = sub
