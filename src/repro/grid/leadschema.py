"""The LEAD metadata schema of the paper's Figure 2, annotated.

The LEAD schema is FGDC-derived.  Figure 2 shows a partial tree with
metadata attributes bolded, metadata elements italicized, and the
schema-level global ordering as circled numbers.  This module encodes
that tree with the paper's annotations:

* ``resourceID`` — a leaf directly under the root, hence itself a
  metadata attribute ("both a metadata attribute and a metadata
  element").
* ``status`` (progress, update), ``citation`` (origin, pubdate, title),
  ``timeperd`` — structural attributes under ``idinfo``.
* ``keywords`` — structural node containing the repeatable keyword
  attributes ``theme`` (themekt, themekey*), ``place``, ``stratum``,
  ``temporal``.
* ``accconst``, ``useconst`` — leaf attributes for access/use
  constraints.
* ``geospatial`` — structural, containing ``spdom`` (bounding,
  dsgpoly), ``spattemp``, ``vertdom`` and ``eainfo``.
* ``eainfo/detailed`` — the **dynamic** attribute section: repeatable,
  recursive (``attr`` within ``attr``), resolved by name/source from
  ``enttypl``/``enttypds`` and ``attrlabl``/``attrdefs`` (§3).
* ``eainfo/overview`` — entity overview (eaover, eadetcit).

The computed global ordering numbers the 23 at-or-above-attribute nodes
exactly as the algorithm of §2 prescribes; see
``tests/figures/test_fig2_lead_schema.py`` for the assertions and
EXPERIMENTS.md (F2) for the one node whose published circled number the
paper's text renders ambiguously.
"""

from __future__ import annotations

from ..core.schema import (
    AnnotatedSchema,
    DynamicSpec,
    ValueType,
    attribute,
    melement,
    structural,
)


def lead_schema() -> AnnotatedSchema:
    """Build the annotated LEAD schema of Figure 2 (fresh instance)."""
    root = structural(
        "LEADresource",
        attribute("resourceID", required=True),
        structural(
            "data",
            structural(
                "idinfo",
                attribute(
                    "status",
                    melement("progress"),
                    melement("update"),
                ),
                attribute(
                    "citation",
                    melement("origin", repeatable=True),
                    melement("pubdate", value_type=ValueType.DATE),
                    melement("title"),
                ),
                attribute(
                    "timeperd",
                    melement("begdate", value_type=ValueType.DATE),
                    melement("enddate", value_type=ValueType.DATE),
                ),
                structural(
                    "keywords",
                    attribute(
                        "theme",
                        melement("themekt"),
                        melement("themekey", repeatable=True),
                        repeatable=True,
                    ),
                    attribute(
                        "place",
                        melement("placekt"),
                        melement("placekey", repeatable=True),
                        repeatable=True,
                    ),
                    attribute(
                        "stratum",
                        melement("stratkt"),
                        melement("stratkey", repeatable=True),
                        repeatable=True,
                    ),
                    attribute(
                        "temporal",
                        melement("tempkt"),
                        melement("tempkey", repeatable=True),
                        repeatable=True,
                    ),
                ),
                attribute("accconst"),
                attribute("useconst"),
            ),
            structural(
                "geospatial",
                structural(
                    "spdom",
                    attribute(
                        "bounding",
                        melement("westbc", value_type=ValueType.FLOAT),
                        melement("eastbc", value_type=ValueType.FLOAT),
                        melement("northbc", value_type=ValueType.FLOAT),
                        melement("southbc", value_type=ValueType.FLOAT),
                    ),
                    attribute(
                        "dsgpoly",
                        melement("dsgpolyx", value_type=ValueType.FLOAT, repeatable=True),
                        melement("dsgpolyy", value_type=ValueType.FLOAT, repeatable=True),
                        repeatable=True,
                    ),
                ),
                attribute(
                    "spattemp",
                    melement("sptbegin", value_type=ValueType.DATE),
                    melement("sptend", value_type=ValueType.DATE),
                ),
                attribute(
                    "vertdom",
                    melement("vertmin", value_type=ValueType.FLOAT),
                    melement("vertmax", value_type=ValueType.FLOAT),
                ),
                structural(
                    "eainfo",
                    attribute(
                        "detailed",
                        repeatable=True,
                        dynamic=DynamicSpec(
                            entity_tag="enttyp",
                            name_tag="enttypl",
                            source_tag="enttypds",
                            item_tag="attr",
                            label_tag="attrlabl",
                            defs_tag="attrdefs",
                            value_tag="attrv",
                        ),
                    ),
                    attribute(
                        "overview",
                        melement("eaover"),
                        melement("eadetcit", repeatable=True),
                        repeatable=True,
                    ),
                ),
            ),
        ),
    )
    return AnnotatedSchema(root, name="LEAD")


#: The paper's Figure 3 example document (verbatim structure; the
#: ``. . .`` elisions of the figure are omitted).
FIG3_DOCUMENT = """\
<LEADresource>
    <resourceID>lead:ARPS-forecast-001</resourceID>
    <data>
        <idinfo>
            <keywords>
                <theme>
                    <themekt>CF NetCDF</themekt>
                    <themekey>convective_precipitation_amount</themekey>
                    <themekey>convective_precipitation_flux</themekey>
                </theme>
                <theme>
                    <themekt>CF NetCDF</themekt>
                    <themekey>air_pressure_at_cloud_base</themekey>
                    <themekey>air_pressure_at_cloud_top</themekey>
                </theme>
            </keywords>
        </idinfo>
        <geospatial>
            <eainfo>
                <detailed>
                    <enttyp>
                        <enttypl>grid</enttypl>
                        <enttypds>ARPS</enttypds>
                    </enttyp>
                    <attr>
                        <attrlabl>grid-stretching</attrlabl>
                        <attrdefs>ARPS</attrdefs>
                        <attr>
                            <attrlabl>dzmin</attrlabl>
                            <attrdefs>ARPS</attrdefs>
                            <attrv>100.000</attrv>
                        </attr>
                        <attr>
                            <attrlabl>reference-height</attrlabl>
                            <attrdefs>ARPS</attrdefs>
                            <attrv>0</attrv>
                        </attr>
                    </attr>
                    <attr>
                        <attrlabl>dx</attrlabl>
                        <attrdefs>ARPS</attrdefs>
                        <attrv>1000.000</attrv>
                    </attr>
                    <attr>
                        <attrlabl>dz</attrlabl>
                        <attrdefs>ARPS</attrdefs>
                        <attrv>500.000</attrv>
                    </attr>
                </detailed>
            </eainfo>
        </geospatial>
    </data>
</LEADresource>
"""


def define_fig3_attributes(catalog) -> None:
    """Register the dynamic definitions the Figure 3 document uses, at
    administrator scope: the ("grid", "ARPS") attribute with elements
    dx/dz, and its ("grid-stretching", "ARPS") sub-attribute with
    elements dzmin/reference-height."""
    grid = catalog.define_attribute("grid", "ARPS", host="detailed")
    catalog.define_element(grid, "dx", "ARPS", ValueType.FLOAT)
    catalog.define_element(grid, "dz", "ARPS", ValueType.FLOAT)
    stretching = catalog.define_attribute(
        "grid-stretching", "ARPS", host="detailed", parent=grid
    )
    catalog.define_element(stretching, "dzmin", "ARPS", ValueType.FLOAT)
    catalog.define_element(stretching, "reference-height", "ARPS", ValueType.FLOAT)
