"""The Figure-2 LEAD schema as an *annotated XML Schema* document.

This is the §7 "framework" form of :func:`repro.grid.lead_schema`: the
same community schema, with catalog annotations carried in standard
``xs:annotation/xs:appinfo`` hooks instead of Python constructors.
``lead_schema_from_xsd()`` loads it through :mod:`repro.core.xsd`; the
test suite asserts it is node-for-node equivalent to the hand-built
schema (same partition, same global ordering).
"""

from __future__ import annotations

from ..core.xsd import load_xsd

_ATTR = '<xs:annotation><xs:appinfo><catalog:attribute/></xs:appinfo></xs:annotation>'

LEAD_XSD = f"""\
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"
           xmlns:catalog="urn:repro:catalog">

  <xs:complexType name="keywordListType">
    <xs:sequence>
      <xs:element name="placeholder" type="xs:string" minOccurs="0"/>
    </xs:sequence>
  </xs:complexType>

  <xs:element name="LEADresource">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="resourceID" type="xs:string">
          {_ATTR}
        </xs:element>
        <xs:element name="data" minOccurs="0">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="idinfo" minOccurs="0">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="status" minOccurs="0">
                      {_ATTR}
                      <xs:complexType>
                        <xs:sequence>
                          <xs:element name="progress" type="xs:string" minOccurs="0"/>
                          <xs:element name="update" type="xs:string" minOccurs="0"/>
                        </xs:sequence>
                      </xs:complexType>
                    </xs:element>
                    <xs:element name="citation" minOccurs="0">
                      {_ATTR}
                      <xs:complexType>
                        <xs:sequence>
                          <xs:element name="origin" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
                          <xs:element name="pubdate" type="xs:date" minOccurs="0"/>
                          <xs:element name="title" type="xs:string" minOccurs="0"/>
                        </xs:sequence>
                      </xs:complexType>
                    </xs:element>
                    <xs:element name="timeperd" minOccurs="0">
                      {_ATTR}
                      <xs:complexType>
                        <xs:sequence>
                          <xs:element name="begdate" type="xs:date" minOccurs="0"/>
                          <xs:element name="enddate" type="xs:date" minOccurs="0"/>
                        </xs:sequence>
                      </xs:complexType>
                    </xs:element>
                    <xs:element name="keywords" minOccurs="0">
                      <xs:complexType>
                        <xs:sequence>
                          <xs:element name="theme" minOccurs="0" maxOccurs="unbounded">
                            {_ATTR}
                            <xs:complexType>
                              <xs:sequence>
                                <xs:element name="themekt" type="xs:string" minOccurs="0"/>
                                <xs:element name="themekey" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
                              </xs:sequence>
                            </xs:complexType>
                          </xs:element>
                          <xs:element name="place" minOccurs="0" maxOccurs="unbounded">
                            {_ATTR}
                            <xs:complexType>
                              <xs:sequence>
                                <xs:element name="placekt" type="xs:string" minOccurs="0"/>
                                <xs:element name="placekey" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
                              </xs:sequence>
                            </xs:complexType>
                          </xs:element>
                          <xs:element name="stratum" minOccurs="0" maxOccurs="unbounded">
                            {_ATTR}
                            <xs:complexType>
                              <xs:sequence>
                                <xs:element name="stratkt" type="xs:string" minOccurs="0"/>
                                <xs:element name="stratkey" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
                              </xs:sequence>
                            </xs:complexType>
                          </xs:element>
                          <xs:element name="temporal" minOccurs="0" maxOccurs="unbounded">
                            {_ATTR}
                            <xs:complexType>
                              <xs:sequence>
                                <xs:element name="tempkt" type="xs:string" minOccurs="0"/>
                                <xs:element name="tempkey" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
                              </xs:sequence>
                            </xs:complexType>
                          </xs:element>
                        </xs:sequence>
                      </xs:complexType>
                    </xs:element>
                    <xs:element name="accconst" type="xs:string" minOccurs="0">
                      {_ATTR}
                    </xs:element>
                    <xs:element name="useconst" type="xs:string" minOccurs="0">
                      {_ATTR}
                    </xs:element>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
              <xs:element name="geospatial" minOccurs="0">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="spdom" minOccurs="0">
                      <xs:complexType>
                        <xs:sequence>
                          <xs:element name="bounding" minOccurs="0">
                            {_ATTR}
                            <xs:complexType>
                              <xs:sequence>
                                <xs:element name="westbc" type="xs:double" minOccurs="0"/>
                                <xs:element name="eastbc" type="xs:double" minOccurs="0"/>
                                <xs:element name="northbc" type="xs:double" minOccurs="0"/>
                                <xs:element name="southbc" type="xs:double" minOccurs="0"/>
                              </xs:sequence>
                            </xs:complexType>
                          </xs:element>
                          <xs:element name="dsgpoly" minOccurs="0" maxOccurs="unbounded">
                            {_ATTR}
                            <xs:complexType>
                              <xs:sequence>
                                <xs:element name="dsgpolyx" type="xs:double" minOccurs="0" maxOccurs="unbounded"/>
                                <xs:element name="dsgpolyy" type="xs:double" minOccurs="0" maxOccurs="unbounded"/>
                              </xs:sequence>
                            </xs:complexType>
                          </xs:element>
                        </xs:sequence>
                      </xs:complexType>
                    </xs:element>
                    <xs:element name="spattemp" minOccurs="0">
                      {_ATTR}
                      <xs:complexType>
                        <xs:sequence>
                          <xs:element name="sptbegin" type="xs:date" minOccurs="0"/>
                          <xs:element name="sptend" type="xs:date" minOccurs="0"/>
                        </xs:sequence>
                      </xs:complexType>
                    </xs:element>
                    <xs:element name="vertdom" minOccurs="0">
                      {_ATTR}
                      <xs:complexType>
                        <xs:sequence>
                          <xs:element name="vertmin" type="xs:double" minOccurs="0"/>
                          <xs:element name="vertmax" type="xs:double" minOccurs="0"/>
                        </xs:sequence>
                      </xs:complexType>
                    </xs:element>
                    <xs:element name="eainfo" minOccurs="0">
                      <xs:complexType>
                        <xs:sequence>
                          <xs:element name="detailed" minOccurs="0" maxOccurs="unbounded">
                            <xs:annotation><xs:appinfo>
                              <catalog:dynamic entity="enttyp" name="enttypl"
                                               source="enttypds" item="attr"
                                               label="attrlabl" defs="attrdefs"
                                               value="attrv"/>
                            </xs:appinfo></xs:annotation>
                          </xs:element>
                          <xs:element name="overview" minOccurs="0" maxOccurs="unbounded">
                            {_ATTR}
                            <xs:complexType>
                              <xs:sequence>
                                <xs:element name="eaover" type="xs:string" minOccurs="0"/>
                                <xs:element name="eadetcit" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
                              </xs:sequence>
                            </xs:complexType>
                          </xs:element>
                        </xs:sequence>
                      </xs:complexType>
                    </xs:element>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
"""


def lead_schema_from_xsd():
    """Load the LEAD schema from its annotated-XSD form."""
    return load_xsd(LEAD_XSD, name="LEAD")
