"""Fortran namelist files → dynamic metadata attributes (paper §3).

The paper motivates dynamic attributes with the ARPS and WRF weather
models, whose detailed parameters live in Fortran *namelist* files —
"which cannot be built into the structure of the schema because
scientists must be able to define new parameters as they continue to
enhance the models".

This module provides the ingestion path a LEAD workflow would use:

* :func:`parse_namelist` — a parser for the namelist subset the models
  use: ``&group ... /`` blocks, scalar and array values, integers,
  reals (including ``1.0e-3`` and Fortran's ``1.0d-3``), quoted
  strings, logicals (``.true.``/``.false.``), repeat counts (``3*0.5``)
  and ``!`` comments.
* :func:`namelist_to_detailed` — render one group as a ``detailed``
  dynamic-attribute element (``enttypl`` = group name, ``enttypds`` =
  model name, one ``attr`` item per parameter; array values become
  repeated items under the same label).
* :func:`register_namelist_definitions` — bulk-register the attribute
  and element definitions a namelist implies, with value types inferred
  per parameter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..errors import ReproError
from ..xmlkit import Element, element

Scalar = Union[int, float, str, bool]


class NamelistError(ReproError):
    """Malformed namelist input."""


class NamelistGroup:
    """One ``&name ... /`` group: an ordered parameter mapping."""

    __slots__ = ("name", "parameters")

    def __init__(self, name: str) -> None:
        self.name = name
        self.parameters: Dict[str, List[Scalar]] = {}

    def set(self, key: str, values: List[Scalar]) -> None:
        self.parameters[key] = values

    def scalars(self) -> Dict[str, Scalar]:
        """Parameters with exactly one value."""
        return {k: v[0] for k, v in self.parameters.items() if len(v) == 1}

    def __len__(self) -> int:
        return len(self.parameters)

    def __repr__(self) -> str:  # pragma: no cover
        return f"NamelistGroup({self.name!r}, parameters={len(self.parameters)})"


def parse_namelist(text: str) -> List[NamelistGroup]:
    """Parse namelist ``text`` into its groups, in file order."""
    groups: List[NamelistGroup] = []
    current: Optional[NamelistGroup] = None
    pending_key: Optional[str] = None
    pending_values: List[Scalar] = []

    def flush() -> None:
        nonlocal pending_key, pending_values
        if pending_key is not None:
            assert current is not None
            if not pending_values:
                raise NamelistError(f"parameter {pending_key!r} has no value")
            current.set(pending_key, pending_values)
        pending_key = None
        pending_values = []

    for raw_line in text.splitlines():
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if line in ("/", "&end", "$end"):
            if current is None:
                raise NamelistError("group terminator outside a group")
            flush()
            groups.append(current)
            current = None
            continue
        if line.startswith("&"):
            if current is not None:
                raise NamelistError(
                    f"group &{current.name} not terminated before &{line[1:]}"
                )
            name = line[1:].strip()
            if not name:
                raise NamelistError("group with empty name")
            current = NamelistGroup(name.lower())
            continue
        if current is None:
            raise NamelistError(f"content outside any group: {line!r}")
        # One line may hold several comma-separated assignments and/or a
        # continuation of the previous parameter's array values.
        for chunk in _split_assignments(line):
            if "=" in chunk:
                flush()
                key, _, value_part = chunk.partition("=")
                pending_key = key.strip().lower()
                if not pending_key.replace("_", "").replace("%", "").isalnum():
                    raise NamelistError(f"invalid parameter name {key.strip()!r}")
                pending_values = _parse_values(value_part)
            else:
                if pending_key is None:
                    raise NamelistError(f"value without parameter: {chunk!r}")
                pending_values.extend(_parse_values(chunk))
    if current is not None:
        raise NamelistError(f"group &{current.name} not terminated")
    return groups


def _strip_comment(line: str) -> str:
    """Remove a trailing ``!`` comment, respecting quoted strings."""
    out = []
    in_quote: Optional[str] = None
    for ch in line:
        if in_quote:
            out.append(ch)
            if ch == in_quote:
                in_quote = None
            continue
        if ch in ("'", '"'):
            in_quote = ch
            out.append(ch)
            continue
        if ch == "!":
            break
        out.append(ch)
    return "".join(out)


def _split_assignments(line: str) -> List[str]:
    """Split ``a = 1, b = 2`` into assignment chunks; array values stay
    with their key (split only at commas that precede ``name =``)."""
    tokens = [t.strip() for t in _split_respecting_quotes(line, ",")]
    chunks: List[str] = []
    for token in tokens:
        if not token:
            continue
        if "=" in token or not chunks:
            chunks.append(token)
        else:
            chunks[-1] += ", " + token
    # Re-split: values merged above should be separate "continuation"
    # chunks so _parse_values handles each; simplest is to keep the
    # merged form — _parse_values splits on commas itself.
    return chunks


def _split_respecting_quotes(text: str, sep: str) -> List[str]:
    parts: List[str] = []
    buf: List[str] = []
    in_quote: Optional[str] = None
    for ch in text:
        if in_quote:
            buf.append(ch)
            if ch == in_quote:
                in_quote = None
            continue
        if ch in ("'", '"'):
            in_quote = ch
            buf.append(ch)
            continue
        if ch == sep:
            parts.append("".join(buf))
            buf = []
            continue
        buf.append(ch)
    parts.append("".join(buf))
    return parts


def _parse_values(text: str) -> List[Scalar]:
    values: List[Scalar] = []
    for token in _split_respecting_quotes(text, ","):
        token = token.strip()
        if not token:
            continue
        # Repeat syntax: 3*0.5
        if "*" in token and not token.startswith(("'", '"')):
            count_part, _, value_part = token.partition("*")
            try:
                repeat = int(count_part.strip())
            except ValueError:
                raise NamelistError(f"bad repeat count in {token!r}") from None
            value = _parse_scalar(value_part.strip())
            values.extend([value] * repeat)
        else:
            values.append(_parse_scalar(token))
    return values


def _parse_scalar(token: str) -> Scalar:
    if not token:
        raise NamelistError("empty value")
    if token[0] in ("'", '"'):
        if len(token) < 2 or token[-1] != token[0]:
            raise NamelistError(f"unterminated string {token!r}")
        return token[1:-1]
    low = token.lower()
    if low in (".true.", ".t.", "t"):
        return True
    if low in (".false.", ".f.", "f"):
        return False
    try:
        return int(token)
    except ValueError:
        pass
    # Fortran double-precision exponent: 1.0d-3
    normalized = low.replace("d", "e")
    try:
        return float(normalized)
    except ValueError:
        raise NamelistError(f"cannot parse value {token!r}") from None


# ---------------------------------------------------------------------------
# Rendering as dynamic metadata attributes
# ---------------------------------------------------------------------------

def _scalar_text(value: Scalar) -> str:
    if isinstance(value, bool):
        return ".true." if value else ".false."
    return str(value)


def namelist_to_detailed(
    group: NamelistGroup,
    source: str,
    entity_tag: str = "enttyp",
    name_tag: str = "enttypl",
    source_tag: str = "enttypds",
    item_tag: str = "attr",
    label_tag: str = "attrlabl",
    defs_tag: str = "attrdefs",
    value_tag: str = "attrv",
) -> Element:
    """Render ``group`` as a ``detailed`` dynamic-attribute element.

    Array-valued parameters become repeated items under the same label,
    which shred into repeated element rows (queryable with any-match
    semantics).
    """
    detailed = element(
        "detailed",
        element(entity_tag, element(name_tag, group.name), element(source_tag, source)),
    )
    for key, values in group.parameters.items():
        for value in values:
            detailed.append(
                element(
                    item_tag,
                    element(label_tag, key),
                    element(defs_tag, source),
                    element(value_tag, _scalar_text(value)),
                )
            )
    return detailed


def register_namelist_definitions(catalog, groups: List[NamelistGroup], source: str,
                                  user: Optional[str] = None) -> Dict[str, object]:
    """Register attribute/element definitions for every group, with
    value types inferred from the first value of each parameter.
    Returns the created attribute definitions by group name."""
    from ..core.schema import ValueType

    defs: Dict[str, object] = {}
    for group in groups:
        attr_def = catalog.define_attribute(group.name, source, host="detailed", user=user)
        defs[group.name] = attr_def
        for key, values in group.parameters.items():
            sample = values[0]
            if isinstance(sample, bool) or isinstance(sample, str):
                vtype = ValueType.STRING
            elif isinstance(sample, int):
                vtype = ValueType.INTEGER
            else:
                vtype = ValueType.FLOAT
            catalog.define_element(attr_def, key, source, vtype, user=user)
    return defs
