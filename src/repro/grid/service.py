"""A myLEAD-like personal metadata catalog service (substrate S17).

The paper situates the hybrid store inside **myLEAD** — a *personal*
metadata catalog: scientists capture metadata as experiments run, keep
unpublished data private, and organize files under experiments.  This
facade provides that context on top of :class:`HybridCatalog`:

* users, experiments (aggregations) and files;
* per-object visibility (private until published) enforced on query
  and fetch;
* per-user private dynamic attribute definitions (delegated to the
  registry's user scopes).

The service is deliberately thin: all storage and matching behaviour is
the catalog's; the service adds ownership and containment, which is the
part of the grid environment the paper treats as given.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set

from ..core.catalog import HybridCatalog, IngestReceipt
from ..core.query import ObjectQuery
from ..core.schema import AnnotatedSchema
from ..errors import CatalogError
from ..xmlkit import element, pretty_print


class User:
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover
        return f"User({self.name!r})"


class Experiment:
    """An aggregation of files owned by one user."""

    __slots__ = ("experiment_id", "name", "owner", "object_id", "file_ids")

    def __init__(self, experiment_id: int, name: str, owner: str, object_id: int) -> None:
        self.experiment_id = experiment_id
        self.name = name
        self.owner = owner
        self.object_id = object_id
        self.file_ids: List[int] = []

    def __repr__(self) -> str:  # pragma: no cover
        return f"Experiment({self.name!r}, files={len(self.file_ids)})"


class MyLeadService:
    """Users + experiments + visibility on top of one hybrid catalog."""

    def __init__(self, schema: AnnotatedSchema, catalog: Optional[HybridCatalog] = None) -> None:
        self.catalog = catalog if catalog is not None else HybridCatalog(schema)
        # Service-level accounting (AMGA-style per-operation counters)
        # lands in the owning catalog's registry.
        self._ops = self.catalog.metrics.counter(
            "service_ops_total",
            "myLEAD service operations by kind and user",
            labels=("op", "user"),
        )
        self._denied = self.catalog.metrics.counter(
            "service_visibility_denied_total",
            "objects withheld from a user by the visibility check",
        )
        self._users: Dict[str, User] = {}
        self._experiments: Dict[int, Experiment] = {}
        self._experiment_ids = itertools.count(1)
        self._owner_of: Dict[int, str] = {}
        self._public: Set[int] = set()
        self._experiment_of_object: Dict[int, int] = {}
        # Provenance links: derived object -> source objects (the LEAD
        # lineage motif — which process inputs produced this product).
        self._derived_from: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Users
    # ------------------------------------------------------------------
    def create_user(self, name: str) -> User:
        if name in self._users:
            raise CatalogError(f"user {name!r} already exists")
        if not name:
            raise CatalogError("user name cannot be empty")
        user = User(name)
        self._users[name] = user
        return user

    def _require_user(self, name: str) -> User:
        try:
            return self._users[name]
        except KeyError:
            raise CatalogError(f"no user {name!r}") from None

    def users(self) -> List[str]:
        return sorted(self._users)

    # ------------------------------------------------------------------
    # Experiments and files
    # ------------------------------------------------------------------
    def create_experiment(self, user: str, name: str) -> Experiment:
        """Create an experiment aggregation; it is cataloged as an object
        itself with minimal metadata so it is searchable."""
        self._require_user(user)
        self._ops.labels(op="create_experiment", user=user).inc()
        experiment_id = next(self._experiment_ids)
        document = self._experiment_record(user, name, experiment_id)
        receipt = self.catalog.ingest(document, name=name, owner=user, user=user)
        experiment = Experiment(experiment_id, name, user, receipt.object_id)
        self._experiments[experiment_id] = experiment
        self._owner_of[receipt.object_id] = user
        return experiment

    def _experiment_record(self, user: str, name: str, experiment_id: int) -> str:
        """The minimal schema-valid document cataloging an experiment:
        the schema's root plus its identifier leaf attribute.  Works for
        any annotated schema whose root carries a leaf attribute (both
        LEAD's ``resourceID`` and CLRC's ``studyID`` do); subclasses may
        override to produce richer experiment metadata."""
        schema = self.catalog.schema
        id_leaf = next(
            (
                child
                for child in schema.root.children
                if child.is_attribute and child.is_element
            ),
            None,
        )
        if id_leaf is None:
            raise CatalogError(
                f"schema {schema.name!r} has no identifier leaf attribute "
                "under the root; override _experiment_record to catalog "
                "experiments"
            )
        doc = element(
            schema.root.tag,
            element(id_leaf.tag, f"experiment:{user}:{experiment_id}"),
        )
        return pretty_print(doc)

    def experiment(self, experiment_id: int) -> Experiment:
        try:
            return self._experiments[experiment_id]
        except KeyError:
            raise CatalogError(f"no experiment {experiment_id}") from None

    def add_file(
        self,
        user: str,
        experiment: Experiment,
        document: str,
        name: str = "",
        public: bool = False,
    ) -> IngestReceipt:
        """Catalog a file's metadata under ``experiment``."""
        self._require_user(user)
        self._ops.labels(op="add_file", user=user).inc()
        if experiment.owner != user:
            raise CatalogError(
                f"experiment {experiment.name!r} belongs to {experiment.owner!r}"
            )
        receipt = self.catalog.ingest(document, name=name, owner=user, user=user)
        experiment.file_ids.append(receipt.object_id)
        self._owner_of[receipt.object_id] = user
        self._experiment_of_object[receipt.object_id] = experiment.experiment_id
        if public:
            self._public.add(receipt.object_id)
        return receipt

    def publish(self, user: str, object_id: int) -> None:
        """Make an object visible to every user."""
        self._require_owner(user, object_id)
        self._ops.labels(op="publish", user=user).inc()
        self._public.add(object_id)

    def unpublish(self, user: str, object_id: int) -> None:
        self._require_owner(user, object_id)
        self._ops.labels(op="unpublish", user=user).inc()
        self._public.discard(object_id)

    def _require_owner(self, user: str, object_id: int) -> None:
        self._require_user(user)
        owner = self._owner_of.get(object_id)
        if owner is None:
            raise CatalogError(f"no object {object_id}")
        if owner != user:
            raise CatalogError(f"object {object_id} belongs to {owner!r}")

    def is_visible(self, user: str, object_id: int) -> bool:
        return self._owner_of.get(object_id) == user or object_id in self._public

    # ------------------------------------------------------------------
    # Provenance (the LEAD lineage motif)
    # ------------------------------------------------------------------
    def record_derivation(self, user: str, derived_id: int, source_id: int) -> None:
        """Record that ``derived_id`` was produced from ``source_id``
        (e.g. a forecast product derived from an initialization file).
        The derived object must belong to ``user``; the source must at
        least be visible to them.  Cycles are rejected."""
        self._require_owner(user, derived_id)
        if not self.is_visible(user, source_id):
            raise CatalogError(f"object {source_id} is not visible to {user!r}")
        if derived_id == source_id:
            raise CatalogError("an object cannot derive from itself")
        if derived_id in self.provenance_closure(source_id):
            raise CatalogError(
                f"derivation {derived_id} <- {source_id} would create a cycle"
            )
        self._derived_from.setdefault(derived_id, []).append(source_id)

    def sources_of(self, user: str, object_id: int) -> List[int]:
        """Direct provenance sources visible to ``user``."""
        self._require_user(user)
        return [
            oid
            for oid in self._derived_from.get(object_id, [])
            if self.is_visible(user, oid)
        ]

    def provenance_closure(self, object_id: int) -> Set[int]:
        """All transitive sources of ``object_id`` (unfiltered)."""
        out: Set[int] = set()
        frontier = list(self._derived_from.get(object_id, []))
        while frontier:
            current = frontier.pop()
            if current in out:
                continue
            out.add(current)
            frontier.extend(self._derived_from.get(current, []))
        return out

    def derived_products(self, user: str, object_id: int) -> List[int]:
        """Objects visible to ``user`` that derive (directly) from
        ``object_id``."""
        self._require_user(user)
        return sorted(
            derived
            for derived, sources in self._derived_from.items()
            if object_id in sources and self.is_visible(user, derived)
        )

    def query_derived_from_matching(self, user: str, query: ObjectQuery) -> List[int]:
        """Objects whose provenance chain includes a match for ``query``
        — 'products computed from data like this'."""
        matches = set(self.query(user, query))
        out = []
        for derived in self._derived_from:
            if not self.is_visible(user, derived):
                continue
            if self.provenance_closure(derived) & matches:
                out.append(derived)
        return sorted(out)

    # ------------------------------------------------------------------
    # Definitions
    # ------------------------------------------------------------------
    def define_private_attribute(self, user: str, name: str, source: str,
                                 host: str = "detailed"):
        """A dynamic attribute definition private to ``user`` (paper §3:
        user-level definitions)."""
        self._require_user(user)
        return self.catalog.define_attribute(name, source, host=host, user=user)

    # ------------------------------------------------------------------
    # Query / fetch with visibility
    # ------------------------------------------------------------------
    def query(self, user: str, query: ObjectQuery) -> List[int]:
        """Objects matching ``query`` that ``user`` may see (their own
        plus published ones)."""
        self._require_user(user)
        self._ops.labels(op="query", user=user).inc()
        ids = self.catalog.query(query, user=user)
        visible = [i for i in ids if self.is_visible(user, i)]
        if len(visible) < len(ids):
            self._denied.inc(len(ids) - len(visible))
        return visible

    def fetch(self, user: str, object_ids: List[int]) -> Dict[int, str]:
        self._require_user(user)
        self._ops.labels(op="fetch", user=user).inc()
        for object_id in object_ids:
            if not self.is_visible(user, object_id):
                self._denied.inc()
                raise CatalogError(
                    f"object {object_id} is not visible to {user!r}"
                )
        return self.catalog.fetch(object_ids)

    def search(self, user: str, query: ObjectQuery) -> List[str]:
        self._require_user(user)
        self._ops.labels(op="search", user=user).inc()
        ids = self.query(user, query)
        responses = self.fetch(user, ids)
        return [responses[i] for i in ids]

    def experiment_contents(self, user: str, experiment: Experiment) -> List[int]:
        """File object ids of an experiment visible to ``user``."""
        self._require_user(user)
        return [i for i in experiment.file_ids if self.is_visible(user, i)]
