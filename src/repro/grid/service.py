"""A myLEAD-like personal metadata catalog service (substrate S17).

The paper situates the hybrid store inside **myLEAD** — a *personal*
metadata catalog: scientists capture metadata as experiments run, keep
unpublished data private, and organize files under experiments.  This
facade provides that context on top of :class:`HybridCatalog`:

* users, experiments (aggregations) and files;
* per-object visibility (private until published) enforced on query
  and fetch;
* per-user private dynamic attribute definitions (delegated to the
  registry's user scopes).

The service is deliberately thin: all storage and matching behaviour is
the catalog's; the service adds ownership and containment, which is the
part of the grid environment the paper treats as given.

Concurrency contract (the part the HTTP front-end in
:mod:`repro.server` depends on): the service bookkeeping — users,
experiments, ownership, the published set, and provenance links — is
guarded by its own write-preferring :class:`~repro.core.concurrency.RWLock`.
Mutators hold the write side; multi-step reads (the visibility filter,
provenance walks) hold the read side so they never observe a
half-applied publish or derivation.  The service lock is never held
across a catalog call: catalog ingest/query takes the store's own
RWLock, and nesting the two would couple the service's bookkeeping
critical sections to storage latency (and create lock-order edges for
no benefit).  The LCK01/GRD01 lint rules pin this protocol statically.

Metering contract: every *public operation* increments
``service_ops_total`` exactly once, with its own ``op`` label —
``search`` does **not** additionally count the query and fetch it is
composed of (they run through the unmetered ``_query_visible`` /
``_fetch_visible`` helpers), so one client request is one op.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.catalog import HybridCatalog, IngestReceipt
from ..core.concurrency import RWLock
from ..core.query import ObjectQuery
from ..core.schema import AnnotatedSchema
from ..errors import CatalogError
from ..xmlkit import element, pretty_print


class User:
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover
        return f"User({self.name!r})"


class Experiment:
    """An aggregation of files owned by one user.

    ``file_ids`` is mutated only by the owning service under its write
    lock; treat it as read-only outside the service.
    """

    __slots__ = ("experiment_id", "name", "owner", "object_id", "file_ids")

    def __init__(self, experiment_id: int, name: str, owner: str, object_id: int) -> None:
        self.experiment_id = experiment_id
        self.name = name
        self.owner = owner
        self.object_id = object_id
        self.file_ids: List[int] = []

    def __repr__(self) -> str:  # pragma: no cover
        return f"Experiment({self.name!r}, files={len(self.file_ids)})"


class MyLeadService:
    """Users + experiments + visibility on top of one hybrid catalog."""

    def __init__(self, schema: AnnotatedSchema, catalog: Optional[HybridCatalog] = None) -> None:
        self.catalog = catalog if catalog is not None else HybridCatalog(schema)
        # Service-level accounting (AMGA-style per-operation counters)
        # lands in the owning catalog's registry.
        self._ops = self.catalog.metrics.counter(
            "service_ops_total",
            "myLEAD service operations by kind and user",
            labels=("op", "user"),
        )
        self._denied = self.catalog.metrics.counter(
            "service_visibility_denied_total",
            "objects withheld from a user by the visibility check",
        )
        # Guards every bookkeeping structure below (write-preferring,
        # reentrant; see the module docstring for the protocol).
        self._lock = RWLock()
        self._users: Dict[str, User] = {}
        self._experiments: Dict[int, Experiment] = {}
        self._experiment_ids = itertools.count(1)
        self._owner_of: Dict[int, str] = {}
        self._public: Set[int] = set()
        self._experiment_of_object: Dict[int, int] = {}
        # Provenance links: derived object -> source objects (the LEAD
        # lineage motif — which process inputs produced this product).
        self._derived_from: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Users
    # ------------------------------------------------------------------
    def create_user(self, name: str) -> User:
        if not name:
            raise CatalogError("user name cannot be empty")
        self._count_op("create_user", name)
        user = User(name)
        with self._lock.write_locked():
            # Check-and-insert under one lock: two racing creates of
            # the same name cannot both succeed.
            if name in self._users:
                raise CatalogError(f"user {name!r} already exists")
            self._users[name] = user
        return user

    def _count_op(self, op: str, user: str) -> None:
        self._ops.labels(op=op, user=user).inc()

    def _require_user(self, name: str) -> User:
        with self._lock.read_locked():
            try:
                return self._users[name]
            except KeyError:
                raise CatalogError(f"no user {name!r}") from None

    def has_user(self, name: str) -> bool:
        with self._lock.read_locked():
            return name in self._users

    def users(self) -> List[str]:
        with self._lock.read_locked():
            return sorted(self._users)

    # ------------------------------------------------------------------
    # Experiments and files
    # ------------------------------------------------------------------
    def create_experiment(self, user: str, name: str) -> Experiment:
        """Create an experiment aggregation; it is cataloged as an object
        itself with minimal metadata so it is searchable."""
        self._require_user(user)
        self._count_op("create_experiment", user)
        with self._lock.write_locked():
            experiment_id = next(self._experiment_ids)
        document = self._experiment_record(user, name, experiment_id)
        # The catalog takes its own store lock; the service lock is
        # deliberately not held across the ingest.
        receipt = self.catalog.ingest(document, name=name, owner=user, user=user)
        experiment = Experiment(experiment_id, name, user, receipt.object_id)
        with self._lock.write_locked():
            self._experiments[experiment_id] = experiment
            self._owner_of[receipt.object_id] = user
        return experiment

    def _experiment_record(self, user: str, name: str, experiment_id: int) -> str:
        """The minimal schema-valid document cataloging an experiment:
        the schema's root plus its identifier leaf attribute.  Works for
        any annotated schema whose root carries a leaf attribute (both
        LEAD's ``resourceID`` and CLRC's ``studyID`` do); subclasses may
        override to produce richer experiment metadata."""
        schema = self.catalog.schema
        id_leaf = next(
            (
                child
                for child in schema.root.children
                if child.is_attribute and child.is_element
            ),
            None,
        )
        if id_leaf is None:
            raise CatalogError(
                f"schema {schema.name!r} has no identifier leaf attribute "
                "under the root; override _experiment_record to catalog "
                "experiments"
            )
        doc = element(
            schema.root.tag,
            element(id_leaf.tag, f"experiment:{user}:{experiment_id}"),
        )
        return pretty_print(doc)

    def experiment(self, experiment_id: int) -> Experiment:
        with self._lock.read_locked():
            try:
                return self._experiments[experiment_id]
            except KeyError:
                raise CatalogError(f"no experiment {experiment_id}") from None

    def experiments_of(self, user: str) -> List[Experiment]:
        """The experiments ``user`` owns, in creation order."""
        self._require_user(user)
        with self._lock.read_locked():
            return [
                exp for _eid, exp in sorted(self._experiments.items())
                if exp.owner == user
            ]

    def add_file(
        self,
        user: str,
        experiment: Experiment,
        document: str,
        name: str = "",
        public: bool = False,
    ) -> IngestReceipt:
        """Catalog a file's metadata under ``experiment``."""
        self._require_user(user)
        self._count_op("add_file", user)
        if experiment.owner != user:
            raise CatalogError(
                f"experiment {experiment.name!r} belongs to {experiment.owner!r}"
            )
        receipt = self.catalog.ingest(document, name=name, owner=user, user=user)
        with self._lock.write_locked():
            experiment.file_ids.append(receipt.object_id)
            self._owner_of[receipt.object_id] = user
            self._experiment_of_object[receipt.object_id] = experiment.experiment_id
            if public:
                self._public.add(receipt.object_id)
        return receipt

    def publish(self, user: str, object_id: int) -> None:
        """Make an object visible to every user."""
        self._count_op("publish", user)
        with self._lock.write_locked():
            self._require_owner(user, object_id)
            self._public.add(object_id)

    def unpublish(self, user: str, object_id: int) -> None:
        self._count_op("unpublish", user)
        with self._lock.write_locked():
            self._require_owner(user, object_id)
            self._public.discard(object_id)

    def _require_owner(self, user: str, object_id: int) -> None:
        self._require_user(user)
        with self._lock.read_locked():
            owner = self._owner_of.get(object_id)
        if owner is None:
            raise CatalogError(f"no object {object_id}")
        if owner != user:
            raise CatalogError(f"object {object_id} belongs to {owner!r}")

    def is_visible(self, user: str, object_id: int) -> bool:
        with self._lock.read_locked():
            return self._is_visible(user, object_id)

    def _is_visible(self, user: str, object_id: int) -> bool:
        """Visibility predicate; caller holds (at least) the read lock."""
        return self._owner_of.get(object_id) == user or object_id in self._public

    # ------------------------------------------------------------------
    # Provenance (the LEAD lineage motif)
    # ------------------------------------------------------------------
    def record_derivation(self, user: str, derived_id: int, source_id: int) -> None:
        """Record that ``derived_id`` was produced from ``source_id``
        (e.g. a forecast product derived from an initialization file).
        The derived object must belong to ``user``; the source must at
        least be visible to them.  Cycles are rejected."""
        self._count_op("record_derivation", user)
        with self._lock.write_locked():
            # Cycle check and insert are one critical section: two
            # racing derivations cannot close a loop between them.
            self._require_owner(user, derived_id)
            if not self._is_visible(user, source_id):
                raise CatalogError(f"object {source_id} is not visible to {user!r}")
            if derived_id == source_id:
                raise CatalogError("an object cannot derive from itself")
            if derived_id in self._closure(source_id):
                raise CatalogError(
                    f"derivation {derived_id} <- {source_id} would create a cycle"
                )
            self._derived_from.setdefault(derived_id, []).append(source_id)

    def sources_of(self, user: str, object_id: int) -> List[int]:
        """Direct provenance sources visible to ``user``."""
        self._require_user(user)
        with self._lock.read_locked():
            return [
                oid
                for oid in self._derived_from.get(object_id, [])
                if self._is_visible(user, oid)
            ]

    def provenance_closure(self, object_id: int) -> Set[int]:
        """All transitive sources of ``object_id`` (unfiltered)."""
        with self._lock.read_locked():
            return self._closure(object_id)

    def _closure(self, object_id: int) -> Set[int]:
        """Transitive sources; caller holds (at least) the read lock."""
        out: Set[int] = set()
        frontier = list(self._derived_from.get(object_id, []))
        while frontier:
            current = frontier.pop()
            if current in out:
                continue
            out.add(current)
            frontier.extend(self._derived_from.get(current, []))
        return out

    def derived_products(self, user: str, object_id: int) -> List[int]:
        """Objects visible to ``user`` that derive (directly) from
        ``object_id``."""
        self._require_user(user)
        with self._lock.read_locked():
            return sorted(
                derived
                for derived, sources in self._derived_from.items()
                if object_id in sources and self._is_visible(user, derived)
            )

    def query_derived_from_matching(self, user: str, query: ObjectQuery) -> List[int]:
        """Objects whose provenance chain includes a match for ``query``
        — 'products computed from data like this'."""
        self._count_op("query", user)
        matches = set(self._query_visible(user, query))
        with self._lock.read_locked():
            out = [
                derived
                for derived in self._derived_from
                if self._is_visible(user, derived)
                and self._closure(derived) & matches
            ]
        return sorted(out)

    # ------------------------------------------------------------------
    # Definitions
    # ------------------------------------------------------------------
    def define_private_attribute(self, user: str, name: str, source: str,
                                 host: str = "detailed"):
        """A dynamic attribute definition private to ``user`` (paper §3:
        user-level definitions)."""
        self._require_user(user)
        return self.catalog.define_attribute(name, source, host=host, user=user)

    # ------------------------------------------------------------------
    # Query / fetch with visibility
    # ------------------------------------------------------------------
    def query(self, user: str, query: ObjectQuery) -> List[int]:
        """Objects matching ``query`` that ``user`` may see (their own
        plus published ones)."""
        self._count_op("query", user)
        return self._query_visible(user, query)

    def _query_visible(self, user: str, query: ObjectQuery) -> List[int]:
        """The visibility-filtered match list (unmetered)."""
        self._require_user(user)
        ids = self.catalog.query(query, user=user)
        # One read-locked pass: a publish/unpublish landing mid-filter
        # is either entirely visible to this query or not at all.
        with self._lock.read_locked():
            visible = [i for i in ids if self._is_visible(user, i)]
        if len(visible) < len(ids):
            self._denied.inc(len(ids) - len(visible))
        return visible

    def fetch(self, user: str, object_ids: Sequence[int]) -> Dict[int, str]:
        self._count_op("fetch", user)
        return self._fetch_visible(user, object_ids)

    def _fetch_visible(self, user: str, object_ids: Sequence[int]) -> Dict[int, str]:
        """Visibility-checked response fetch (unmetered).  The whole id
        list is checked before any response is built, and *every*
        invisible id is counted in ``service_visibility_denied_total``
        (not just the first), so the counter stays consistent for mixed
        visible/invisible requests."""
        self._require_user(user)
        with self._lock.read_locked():
            hidden = [i for i in object_ids if not self._is_visible(user, i)]
        if hidden:
            self._denied.inc(len(hidden))
            listed = ", ".join(str(i) for i in hidden)
            phrase = "object" if len(hidden) == 1 else "objects"
            verb = "is" if len(hidden) == 1 else "are"
            raise CatalogError(f"{phrase} {listed} {verb} not visible to {user!r}")
        return self.catalog.fetch(object_ids)

    def search(self, user: str, query: ObjectQuery) -> List[str]:
        """Query and fetch in one metered operation: one search call is
        **one** ``service_ops_total`` increment (op=search), and the
        visibility filter runs exactly once — the fetch leg trusts the
        filtered id list instead of re-checking it."""
        _total, _ids, documents = self.search_slice(user, query)
        return documents

    def search_slice(
        self,
        user: str,
        query: ObjectQuery,
        offset: int = 0,
        limit: Optional[int] = None,
    ) -> Tuple[int, List[int], List[str]]:
        """One metered search over a page of the result set: returns
        ``(total_matches, page_ids, page_documents)``.  This is the
        server's pagination surface — responses are built only for the
        requested page, in id order, and the page is byte-identical to
        the corresponding slice of :meth:`search`."""
        if offset < 0:
            raise CatalogError("search offset cannot be negative")
        if limit is not None and limit < 0:
            raise CatalogError("search limit cannot be negative")
        self._count_op("search", user)
        ids = self._query_visible(user, query)
        page = ids[offset:] if limit is None else ids[offset:offset + limit]
        responses = self.catalog.fetch(page)
        return len(ids), page, [responses[i] for i in page]

    def experiment_contents(self, user: str, experiment: Experiment) -> List[int]:
        """File object ids of an experiment visible to ``user``."""
        self._require_user(user)
        with self._lock.read_locked():
            return [i for i in experiment.file_ids if self._is_visible(user, i)]
