"""Query workloads over generated corpora (substrate S16).

Produces :class:`~repro.core.query.ObjectQuery` mixes that exercise the
catalog the way the paper's scientists would:

* **keyword queries** — themes/places by keyword (CONTAINS/EQ);
* **model-parameter queries** — dynamic attributes with numeric range
  criteria on namelist parameters;
* **nested queries** — dynamic sub-attribute chains of configurable
  depth (the E3 shape);
* **planted-marker queries** — exact-selectivity theme lookups for E8.

Workloads are deterministic for a given seed so baseline comparisons
run the identical query sequence.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.query import AttributeCriteria, ObjectQuery, Op
from .generator import CF_STANDARD_NAMES, MODELS, CorpusConfig, PlantedMarker


class WorkloadGenerator:
    """Deterministic query mixes matched to a :class:`CorpusConfig`."""

    def __init__(self, config: CorpusConfig, seed: int = 42) -> None:
        self.config = config
        self.seed = seed

    def _rng(self, index: int) -> random.Random:
        return random.Random(self.seed * 7_368_787 + index)

    # ------------------------------------------------------------------
    # Individual query shapes
    # ------------------------------------------------------------------
    def keyword_query(self, index: int) -> ObjectQuery:
        """Theme-keyword lookup (structural, repeatable attribute)."""
        rng = self._rng(index)
        keyword = rng.choice(CF_STANDARD_NAMES)
        theme = AttributeCriteria("theme").add_element("themekey", "", keyword, Op.EQ)
        return ObjectQuery().add_attribute(theme)

    def parameter_query(self, index: int, model: Optional[str] = None) -> ObjectQuery:
        """Numeric range criterion on one dynamic namelist parameter."""
        rng = self._rng(index)
        model = model or rng.choice(self.config.models)
        pools = MODELS[model]
        group_name = rng.choice(list(pools))
        numeric = [(p, k) for p, k in pools[group_name][: self.config.params_per_group]
                   if k in ("int", "float")]
        if not numeric:
            return self.keyword_query(index)
        param, kind = rng.choice(numeric)
        threshold = rng.randint(0, 100) if kind == "int" else round(rng.uniform(0.0, 5000.0), 3)
        attr = AttributeCriteria(group_name, model).add_element(
            param, model, threshold, rng.choice([Op.LE, Op.GE])
        )
        return ObjectQuery().add_attribute(attr)

    def nested_query(self, index: int, depth: Optional[int] = None,
                     model: Optional[str] = None) -> ObjectQuery:
        """A dynamic sub-attribute chain of the corpus's nesting depth,
        anchored at the group attribute, with a numeric criterion on the
        deepest level's parameter."""
        rng = self._rng(index)
        model = model or rng.choice(self.config.models)
        pools = MODELS[model]
        group_name = rng.choice(list(pools))
        depth = depth if depth is not None else self.config.dynamic_depth - 1
        top = AttributeCriteria(group_name, model)
        current = top
        for level in range(1, depth + 1):
            sub = AttributeCriteria(f"{group_name}-section-l{level}", model)
            if level == depth:
                sub.add_element(f"{group_name}-param-l{level}", model, 0.0, Op.GE)
            current.add_attribute(sub)
            current = sub
        return ObjectQuery().add_attribute(top)

    def marker_query(self, marker: PlantedMarker) -> ObjectQuery:
        """Exact-selectivity lookup of a planted theme keyword."""
        theme = AttributeCriteria("theme").add_element(
            "themekey", "", marker.keyword, Op.EQ
        )
        return ObjectQuery().add_attribute(theme)

    def conjunctive_query(self, index: int) -> ObjectQuery:
        """Keyword AND parameter criteria together (multi-attribute AND)."""
        rng = self._rng(index)
        query = self.keyword_query(index)
        model = rng.choice(self.config.models)
        pools = MODELS[model]
        group_name = rng.choice(list(pools))
        numeric = [(p, k) for p, k in pools[group_name][: self.config.params_per_group]
                   if k in ("int", "float")]
        if numeric:
            param, _kind = rng.choice(numeric)
            attr = AttributeCriteria(group_name, model).add_element(
                param, model, 0, Op.GE
            )
            query.add_attribute(attr)
        return query

    # ------------------------------------------------------------------
    # Mixes
    # ------------------------------------------------------------------
    def mixed(self, count: int) -> List[ObjectQuery]:
        """The standard E2 mix: 40% keyword, 30% parameter, 20% nested,
        10% conjunctive."""
        queries: List[ObjectQuery] = []
        for i in range(count):
            bucket = i % 10
            if bucket < 4:
                queries.append(self.keyword_query(i))
            elif bucket < 7:
                queries.append(self.parameter_query(i))
            elif bucket < 9:
                queries.append(self.nested_query(i))
            else:
                queries.append(self.conjunctive_query(i))
        return queries

    def keyword_only(self, count: int) -> List[ObjectQuery]:
        return [self.keyword_query(i) for i in range(count)]

    def nested_only(self, count: int, depth: int) -> List[ObjectQuery]:
        return [self.nested_query(i, depth=depth) for i in range(count)]
