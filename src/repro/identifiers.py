"""The single audited interpolation point for SQL identifiers.

SQL01 forbids interpolating anything into SQL text except through
:func:`quote_identifier` — table and index names that cannot be bound
as ``?`` parameters.  The helper *validates* rather than escapes: every
identifier this codebase builds is machine-generated from a fixed
alphabet (``q_matches_<n>``, ``elem_values``, …), so anything outside
``[A-Za-z_][A-Za-z0-9_]*`` is a logic error worth failing loudly on,
not something to quote around.  Valid names pass through byte-for-byte,
which keeps every existing SQL statement — and therefore every
statement-count-keyed fault sweep — identical to what it was before
the audit.
"""

from __future__ import annotations

import re

from .errors import CatalogError

__all__ = ["quote_identifier"]

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*\Z")


def quote_identifier(name: str) -> str:
    """Validate ``name`` as a SQL identifier and return it unchanged.

    Raises :class:`~repro.errors.CatalogError` on anything that is not
    a plain identifier — quote characters, spaces, dots, empty strings
    — so an attacker-influenced (or just buggy) name can never reach
    ``execute()`` as SQL text.  Idempotent by construction."""
    if not isinstance(name, str) or not _IDENTIFIER_RE.match(name):
        raise CatalogError(f"invalid SQL identifier: {name!r}")
    return name
