"""``repro.obs`` — zero-dependency observability for the hybrid catalog.

Six pieces, threaded through every pipeline layer:

* :mod:`.metrics` — thread-safe counters, gauges, and histograms in a
  :class:`MetricsRegistry` (process-global default, per-catalog
  override);
* :mod:`.tracing` — nested wall-time spans feeding the registry and a
  ring buffer of recent traces;
* :mod:`.profile` — per-stage query execution profiles (``repro
  explain --analyze``), collected identically by both backends;
* :mod:`.events` — the versioned JSON-lines event log (query audit,
  slow queries with embedded profiles, rollbacks, fault injections);
* :mod:`.series` — windowed ring-buffer time series (QPS, error rate,
  p95, lock/pool waits) differenced from the registry for ``repro top``;
* :mod:`.export` — JSON snapshots and Prometheus text exposition.

See the "Observability" sections of README.md and DESIGN.md for metric
names and label conventions, and :mod:`.names` for the declared
metric/event/series registries OBS01 lints against.
"""

from .events import EventLog, read_events, tail_events
from .export import (
    load_snapshot,
    registry_snapshot,
    render_json,
    render_prometheus,
    render_table,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from .profile import QueryProfile, StageProfile, collecting, current_profile
from .series import RingSeries, SeriesCollector
from .tracing import (
    Span,
    SpanEvent,
    Tracer,
    current_span,
    default_tracer,
    set_default_tracer,
    span,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "QueryProfile",
    "RingSeries",
    "SeriesCollector",
    "Span",
    "SpanEvent",
    "StageProfile",
    "Tracer",
    "collecting",
    "current_profile",
    "current_span",
    "default_registry",
    "default_tracer",
    "load_snapshot",
    "read_events",
    "registry_snapshot",
    "render_json",
    "render_prometheus",
    "render_table",
    "set_default_registry",
    "set_default_tracer",
    "span",
    "tail_events",
]
