"""``repro.obs`` — zero-dependency observability for the hybrid catalog.

Three pieces, threaded through every pipeline layer:

* :mod:`.metrics` — thread-safe counters, gauges, and histograms in a
  :class:`MetricsRegistry` (process-global default, per-catalog
  override);
* :mod:`.tracing` — nested wall-time spans feeding the registry and a
  ring buffer of recent traces;
* :mod:`.export` — JSON snapshots and Prometheus text exposition.

See the "Observability" sections of README.md and DESIGN.md for metric
names and label conventions.
"""

from .export import (
    load_snapshot,
    registry_snapshot,
    render_json,
    render_prometheus,
    render_table,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from .tracing import (
    Span,
    SpanEvent,
    Tracer,
    current_span,
    default_tracer,
    set_default_tracer,
    span,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Span",
    "SpanEvent",
    "Tracer",
    "current_span",
    "default_registry",
    "default_tracer",
    "load_snapshot",
    "registry_snapshot",
    "render_json",
    "render_prometheus",
    "render_table",
    "set_default_registry",
    "set_default_tracer",
    "span",
]
