"""Structured JSON-lines event log (the catalog's operational journal).

Counters say *how much*; the event log says *what happened*.  Each
record is one JSON object on one line, wrapped in a versioned
``repro.events/v1`` envelope so readers can evolve independently of
writers::

    {"schema": "repro.events/v1", "ts": 1754650000.123, "seq": 7,
     "event": "slow_query", "fields": {"seconds": 0.31, "profile": {...}}}

Event *types* are declared in :data:`repro.obs.names.EVENTS` exactly
like metrics are declared in ``METRICS`` — :meth:`EventLog.emit`
rejects undeclared event names and undeclared field names, and the
OBS01 lint rule enforces the same registry statically.

The log is built to be left on in production:

* **sampling** — ``sample={"query": 10}`` keeps every 10th ``query``
  record (deterministic, counter-based, so tests don't need a seeded
  RNG); unlisted events keep everything;
* **rate cap** — at most ``rate_cap`` records written per wall-clock
  second across all event types, protecting the disk under load spikes;
* **drop accounting** — every record *not* written increments
  ``events_dropped_total{reason}`` in the bound metrics registry, and
  every record written increments ``events_emitted_total{event}``, so
  the counters always tell you whether the log is complete.

A per-catalog sidecar (``<db>.events.jsonl``) is the normal home; with
``path=None`` the log is memory-only (the ``recent`` ring still fills),
which is what unit tests and short-lived tools use.
"""

from __future__ import annotations

import io
import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, Iterator, List, Optional, Union

from . import names as metric_names
from .metrics import MetricsRegistry

__all__ = ["EventLog", "SCHEMA", "read_events", "tail_events"]

#: Envelope version stamped on every record.
SCHEMA = "repro.events/v1"

#: How many recent records the in-memory ring keeps (``repro top`` and
#: tests read these without touching the file).
RECENT_CAP = 256


class EventLog:
    """Thread-safe, sampled, rate-capped JSON-lines event writer.

    ``sample`` maps event name → keep-one-in-N (an int ≥ 1); ``rate_cap``
    is the max records written per second (``None`` = unlimited).  Bind
    a :class:`~repro.obs.metrics.MetricsRegistry` to surface the
    emitted/dropped counters next to everything else.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        *,
        sample: Optional[Dict[str, int]] = None,
        rate_cap: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        for event, keep in (sample or {}).items():
            metric_names.event_spec(event)  # undeclared -> ValueError
            if keep < 1:
                raise ValueError(f"sample rate for {event!r} must be >= 1")
        if rate_cap is not None and rate_cap < 1:
            raise ValueError("rate_cap must be >= 1")
        self.path = Path(path) if path is not None else None
        self.sample = dict(sample or {})
        self.rate_cap = rate_cap
        self._lock = threading.Lock()
        self._file: Optional[io.TextIOWrapper] = None
        self._seq = 0
        self._seen: Dict[str, int] = {}
        self._cap_window = 0
        self._cap_used = 0
        self._closed = False
        self.recent: Deque[dict] = deque(maxlen=RECENT_CAP)
        self._registry = registry
        self._emitted = None
        self._dropped = None
        if registry is not None:
            self.bind_metrics(registry)

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Count writes/drops into ``registry`` from now on."""
        self._registry = registry
        self._emitted = registry.counter(
            "events_emitted_total",
            metric_names.spec("events_emitted_total").help,
            labels=("event",),
        )
        self._dropped = registry.counter(
            "events_dropped_total",
            metric_names.spec("events_dropped_total").help,
            labels=("reason",),
        )

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def emit(self, event: str, **fields) -> bool:
        """Record one event; returns True if it was written (False when
        sampled out, rate-capped, or the log is closed).

        ``event`` must be declared in :data:`repro.obs.names.EVENTS`
        and every keyword must be one of that event's declared fields —
        the runtime counterpart of the OBS01 lint rule.
        """
        spec = metric_names.event_spec(event)
        unknown = set(fields) - set(spec.fields)
        if unknown:
            raise ValueError(
                f"undeclared field(s) {sorted(unknown)} for event "
                f"{event!r}; declared: {list(spec.fields)}"
            )
        with self._lock:
            if self._closed:
                self._drop("closed")
                return False
            seen = self._seen.get(event, 0)
            self._seen[event] = seen + 1
            keep = self.sample.get(event, 1)
            if keep > 1 and seen % keep != 0:
                self._drop("sampled")
                return False
            now = time.time()
            if self.rate_cap is not None:
                window = int(now)
                if window != self._cap_window:
                    self._cap_window = window
                    self._cap_used = 0
                if self._cap_used >= self.rate_cap:
                    self._drop("rate_cap")
                    return False
                self._cap_used += 1
            self._seq += 1
            record = {
                "schema": SCHEMA,
                "ts": now,
                "seq": self._seq,
                "event": event,
                "fields": fields,
            }
            self.recent.append(record)
            if self.path is not None:
                if self._file is None:
                    self._file = self.path.open("a", encoding="utf-8")
                self._file.write(
                    json.dumps(record, separators=(",", ":"), sort_keys=True)
                    + "\n"
                )
                self._file.flush()
            if self._emitted is not None:
                self._emitted.labels(event=event).inc()
            return True

    def _drop(self, reason: str) -> None:
        # Caller holds the lock; the counter has its own.
        if self._dropped is not None:
            self._dropped.labels(reason=reason).inc()

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def emitted(self, event: Optional[str] = None) -> int:
        """Records offered (pre-sampling) for ``event``, or in total."""
        with self._lock:
            if event is not None:
                return self._seen.get(event, 0)
            return sum(self._seen.values())

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Reading (the ``repro events`` side)
# ----------------------------------------------------------------------
def read_events(path: Union[str, Path]) -> Iterator[dict]:
    """Stream every record in a sidecar, skipping lines that don't
    parse or don't carry the ``repro.events/v1`` envelope (a torn final
    line after a crash must not poison the tail)."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("schema") == SCHEMA:
                yield record


def tail_events(
    path: Union[str, Path],
    count: int = 10,
    event: Optional[str] = None,
) -> List[dict]:
    """The last ``count`` records (optionally of one event type)."""
    ring: Deque[dict] = deque(maxlen=count)
    for record in read_events(path):
        if event is not None and record.get("event") != event:
            continue
        ring.append(record)
    return list(ring)
