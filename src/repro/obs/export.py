"""Registry exporters: JSON snapshots and Prometheus text exposition.

The JSON form is the persistence/diff format (CLI ``--metrics-json``,
benchmark snapshots, the per-catalog sidecar); the Prometheus text form
follows the exposition format scraped by a Prometheus server —
``# HELP`` / ``# TYPE`` headers, one ``name{labels} value`` sample per
line, histograms rendered as cumulative ``_bucket{le=...}`` series plus
``_sum`` and ``_count`` (the shape ``tiled``'s ``/api/v1/metrics``
endpoint exposes).
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List

from .metrics import Histogram, MetricsRegistry

__all__ = [
    "registry_snapshot",
    "render_json",
    "render_prometheus",
    "render_table",
    "load_snapshot",
]


def registry_snapshot(registry: MetricsRegistry) -> dict:
    """The registry as a plain JSON-serializable dict."""
    return registry.as_dict()


def render_json(registry: MetricsRegistry, indent: int = 2) -> str:
    return json.dumps(registry_snapshot(registry), indent=indent, sort_keys=True)


def load_snapshot(registry: MetricsRegistry, text: str) -> None:
    """Fold a JSON snapshot (``render_json`` output) into ``registry``."""
    registry.load(json.loads(text))


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP text escaping per the exposition format: backslash and
    newline only (quotes are legal verbatim in HELP, unlike labels)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize_metric_name(name: str) -> str:
    """Coerce a name into the exposition grammar
    ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (invalid characters become ``_``).
    Registry-created families are valid by construction; this guards
    snapshots loaded from external JSON."""
    sanitized = _INVALID_NAME_CHARS.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _label_string(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.collect():
        name = _sanitize_metric_name(family.name)
        if family.help:
            lines.append(f"# HELP {name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {name} {family.kind}")
        for labels, metric in family.series():
            if isinstance(metric, Histogram):
                for bound, cumulative in metric.cumulative_buckets():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    lines.append(
                        f"{name}_bucket{_label_string(bucket_labels)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_label_string(labels)} "
                    f"{_format_value(metric.sum)}"
                )
                lines.append(
                    f"{name}_count{_label_string(labels)} "
                    f"{metric.count}"
                )
            else:
                lines.append(
                    f"{name}{_label_string(labels)} "
                    f"{_format_value(metric.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Human-readable console table (the `repro stats` default)
# ---------------------------------------------------------------------------

def render_table(registry: MetricsRegistry) -> str:
    """A compact console rendering: one line per series; histograms show
    count and the p50/p95/p99 summary."""
    lines: List[str] = []
    for family in registry.collect():
        for labels, metric in family.series():
            name = family.name + _label_string(labels)
            if isinstance(metric, Histogram):
                s = metric.summary()
                if not s["count"]:
                    lines.append(f"{name}  count=0")
                    continue
                lines.append(
                    f"{name}  count={s['count']}  sum={s['sum']:.6f}  "
                    f"p50={s['p50']:.6f}  p95={s['p95']:.6f}  "
                    f"p99={s['p99']:.6f}"
                )
            else:
                lines.append(f"{name}  {_format_value(metric.value)}")
    return "\n".join(lines)
