"""Thread-safe in-process metrics: counters, gauges, histograms.

The registry follows the Prometheus data model (families, label sets,
cumulative buckets — see ``tiled/server/metrics.py`` for the convention
this mirrors) but is pure standard library: the catalog must stay
zero-dependency, and the numbers are consumed in-process (exported by
:mod:`repro.obs.export` as JSON or Prometheus text exposition).

Naming convention: ``<subsystem>_<noun>_<unit-or-total>`` —
``catalog_ingest_seconds``, ``shredder_clobs_total``,
``planner_stage_rows``.  Label names are static and low-cardinality
(``stage``, ``op``, ``kind``, ``user``); free-form values such as
object names belong on spans, never on labels.

There is one process-global default registry
(:func:`default_registry`); every instrumented component also accepts
an explicit :class:`MetricsRegistry` so catalogs can be observed in
isolation (per-catalog override).
"""

from __future__ import annotations

import math
import re
import threading
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "default_registry",
    "set_default_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds, tuned for the latencies this
#: catalog sees (sub-millisecond shreds up to multi-second bulk loads).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, float("inf"),
)

#: How many raw observations a histogram retains for percentile math.
SAMPLE_CAP = 1024


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> dict:
        return {"value": self._value}

    def merge_dict(self, data: dict) -> None:
        self.inc(float(data.get("value", 0.0)))


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> dict:
        return {"value": self._value}

    def merge_dict(self, data: dict) -> None:
        # A merged gauge takes the most recent snapshot's value.
        self.set(float(data.get("value", 0.0)))


class Histogram:
    """Observations bucketed against fixed bounds, plus a bounded
    reservoir of recent raw samples for percentile summaries.

    Bucket counts are *per-bucket* internally; the exporter renders
    them cumulatively (Prometheus ``le`` semantics).
    """

    kind = "histogram"
    __slots__ = ("bounds", "_bucket_counts", "_sum", "_count",
                 "_min", "_max", "_samples", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = sorted(set(float(b) for b in buckets))
        if not bounds or bounds[-1] != math.inf:
            bounds.append(math.inf)
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._bucket_counts = [0] * len(self.bounds)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._samples: deque = deque(maxlen=SAMPLE_CAP)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            # NaN compares false against every bound, so it would land
            # in no bucket and break the bucket-total == count invariant
            # (and poison sum/min/max).  Refuse it at the door.
            raise ValueError("cannot observe NaN")
        with self._lock:
            # Linear scan is fine: bound lists are short and the common
            # case exits in the first few comparisons.
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    break
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._samples.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style."""
        out = []
        running = 0
        with self._lock:
            for bound, n in zip(self.bounds, self._bucket_counts):
                running += n
                out.append((bound, running))
        return out

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) of the retained samples,
        by linear interpolation; ``nan`` when empty."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            data = sorted(self._samples)
        if not data:
            return math.nan
        if len(data) == 1:
            return data[0]
        rank = (q / 100.0) * (len(data) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return data[lo]
        frac = rank - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def summary(self) -> dict:
        """count/sum/min/max plus the p50/p95/p99 summary.

        count/sum/min/max are read under the lock so the snapshot is
        internally consistent even with concurrent ``observe()`` calls
        (percentiles take the lock separately — the reservoir may run
        slightly ahead, but each number is coherent).
        """
        with self._lock:
            head = {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else math.nan,
                "max": self._max if self._count else math.nan,
            }
        head["p50"] = self.percentile(50)
        head["p95"] = self.percentile(95)
        head["p99"] = self.percentile(99)
        return head

    def as_dict(self) -> dict:
        with self._lock:
            data = {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "buckets": {
                    _bound_key(b): n
                    for b, n in zip(self.bounds, self._bucket_counts)
                },
                "samples": list(self._samples)[-256:],
            }
        data["p50"] = self.percentile(50)
        data["p95"] = self.percentile(95)
        data["p99"] = self.percentile(99)
        return _sanitize(data)

    def merge_dict(self, data: dict) -> None:
        """Fold a snapshot produced by :meth:`as_dict` into this
        histogram (used to accumulate across CLI invocations)."""
        buckets = data.get("buckets", {})
        with self._lock:
            matched = False
            if set(buckets) == {_bound_key(b) for b in self.bounds}:
                for i, bound in enumerate(self.bounds):
                    self._bucket_counts[i] += int(buckets[_bound_key(bound)])
                matched = True
            self._count += int(data.get("count", 0))
            self._sum += float(data.get("sum", 0.0))
            if data.get("min") is not None:
                self._min = min(self._min, float(data["min"]))
            if data.get("max") is not None:
                self._max = max(self._max, float(data["max"]))
            rebucketed = 0
            for sample in data.get("samples", ()):
                value = float(sample)
                self._samples.append(value)
                if not matched:
                    for i, bound in enumerate(self.bounds):
                        if value <= bound:
                            self._bucket_counts[i] += 1
                            rebucketed += 1
                            break
            if not matched:
                # Observations beyond the retained samples can't be
                # re-bucketed; park them in +Inf so the cumulative
                # bucket total still equals the count.
                remainder = int(data.get("count", 0)) - rebucketed
                if remainder > 0:
                    self._bucket_counts[-1] += remainder


def _bound_key(bound: float) -> str:
    return "+Inf" if bound == math.inf else repr(bound)


def _sanitize(value):
    """Replace non-JSON floats (nan/inf) with None, recursively."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_sanitize(v) for v in value]
    return value


_METRIC_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric plus its labeled children.

    With no label names the family proxies straight to a single
    anonymous child, so ``registry.counter("x").inc()`` works.
    """

    __slots__ = ("name", "help", "kind", "label_names", "_children",
                 "_lock", "_kwargs")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        **kwargs,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()
        self._kwargs = kwargs

    def labels(self, **labels: str):
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        try:
            return self._children[key]
        except KeyError:
            pass
        with self._lock:
            if key not in self._children:
                self._children[key] = _METRIC_CLASSES[self.kind](**self._kwargs)
            return self._children[key]

    def series(self) -> List[Tuple[Dict[str, str], object]]:
        """``(labels-dict, metric)`` pairs, sorted by label values."""
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.label_names, key)), metric)
            for key, metric in items
        ]

    # -- anonymous-child proxies ---------------------------------------
    def _solo(self):
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "series": [
                {"labels": labels, **metric.as_dict()}
                for labels, metric in self.series()
            ],
        }


class MetricsRegistry:
    """A named collection of metric families with get-or-create
    accessors (repeat calls with the same name return the same family;
    a type conflict raises)."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # -- accessors ------------------------------------------------------
    def _family(self, name: str, kind: str, help: str,
                labels: Sequence[str], **kwargs) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(name, kind, help, labels, **kwargs)
                    self._families[name] = family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> MetricFamily:
        return self._family(name, "histogram", help, labels, buckets=buckets)

    # -- introspection --------------------------------------------------
    def collect(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def reset(self) -> None:
        with self._lock:
            self._families.clear()

    # -- snapshot / restore ---------------------------------------------
    def as_dict(self) -> dict:
        return {
            "schema": "repro.obs/v1",
            "metrics": [family.as_dict() for family in self.collect()],
        }

    def load(self, snapshot: dict) -> None:
        """Fold a snapshot produced by :meth:`as_dict` into this
        registry: counters and histograms accumulate, gauges take the
        snapshot value.  Unknown families are created."""
        for entry in snapshot.get("metrics", ()):
            kind = entry.get("type")
            if kind not in _METRIC_CLASSES:
                continue
            family = self._family(
                entry["name"], kind, entry.get("help", ""),
                entry.get("label_names", ()),
            )
            for series in entry.get("series", ()):
                labels = series.get("labels", {})
                metric = family.labels(**labels)
                metric.merge_dict(series)


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-global registry instrumented code falls back to."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
