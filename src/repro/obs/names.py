"""The central metric-name registry (enforced by ``repro lint`` OBS01).

Every metric the catalog emits is declared here — name, kind, help
text, and label names — so the naming convention
(``*_total`` counters, ``*_seconds``/``*_rows`` histograms, bare-noun
gauges; see :mod:`repro.obs.metrics`) is checked in one place and a
dashboard can be built from this module alone.

The OBS01 rule statically verifies that every metric created anywhere
in ``src/`` (outside the :mod:`repro.obs` infrastructure itself, whose
span histograms derive their names from span names) uses a name
declared here, with the declared kind, at exactly one creation call
site.  :func:`spec` is the runtime half: helpers that create metrics
from a name variable resolve the declaration through it, so the help
text and label tuple cannot drift from the registry.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["MetricSpec", "METRICS", "spec"]


class MetricSpec:
    """One declared metric: kind, help text, and label names."""

    __slots__ = ("name", "kind", "help", "labels")

    def __init__(self, name: str, kind: str, help: str,
                 labels: Tuple[str, ...] = ()) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labels = labels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricSpec({self.name!r}, {self.kind!r}, labels={self.labels})"


def _declare(*specs: MetricSpec) -> Dict[str, MetricSpec]:
    out: Dict[str, MetricSpec] = {}
    for s in specs:
        if s.name in out:
            raise ValueError(f"metric {s.name!r} declared twice")
        _check_suffix(s)
        out[s.name] = s
    return out


def _check_suffix(s: MetricSpec) -> None:
    """The naming convention OBS01 enforces, applied to the registry
    itself at import time so a bad declaration cannot land."""
    if s.kind == "counter" and not s.name.endswith("_total"):
        raise ValueError(f"counter {s.name!r} must end in _total")
    if s.kind == "histogram" and not (
        s.name.endswith("_seconds") or s.name.endswith("_rows")
    ):
        raise ValueError(f"histogram {s.name!r} must end in _seconds or _rows")
    if s.kind == "gauge" and (
        s.name.endswith("_total") or s.name.endswith("_seconds")
    ):
        raise ValueError(
            f"gauge {s.name!r} must not use a counter/histogram suffix"
        )


#: Every metric the catalog emits, by name.
METRICS: Dict[str, MetricSpec] = _declare(
    # -- catalog facade -------------------------------------------------
    MetricSpec("catalog_ingests_total", "counter", "documents ingested"),
    MetricSpec("catalog_deletes_total", "counter", "objects deleted"),
    MetricSpec("catalog_queries_total", "counter", "queries executed"),
    MetricSpec("catalog_objects", "gauge", "objects currently cataloged"),
    # -- query planning -------------------------------------------------
    MetricSpec("plan_cache_hits_total", "counter",
               "logical plans served from the cache"),
    MetricSpec("plan_cache_misses_total", "counter",
               "logical plans built by the optimizer"),
    MetricSpec("plan_cache_size", "gauge", "logical plans currently cached"),
    MetricSpec("query_cache_hits_total", "counter",
               "query results served from the result cache"),
    MetricSpec("query_cache_misses_total", "counter",
               "query results computed fresh (result-cache miss)"),
    MetricSpec("query_cache_evictions_total", "counter",
               "query results evicted from the result cache (LRU)"),
    MetricSpec("query_cache_size", "gauge",
               "query results currently cached"),
    MetricSpec("planner_queries_total", "counter", "query plans executed"),
    MetricSpec("planner_stage_rows", "histogram",
               "row count produced by each query-plan stage", ("stage",)),
    # -- shredder -------------------------------------------------------
    MetricSpec("shredder_shred_seconds", "histogram",
               "wall time of one document/fragment shred"),
    MetricSpec("shredder_documents_total", "counter",
               "documents and fragments shredded"),
    MetricSpec("shredder_clobs_total", "counter",
               "CLOB rows produced by shredding"),
    MetricSpec("shredder_attribute_rows_total", "counter",
               "attribute-instance rows produced"),
    MetricSpec("shredder_element_rows_total", "counter",
               "element-value rows produced"),
    MetricSpec("shredder_inverted_rows_total", "counter",
               "inverted-list rows produced"),
    MetricSpec("shredder_warnings_total", "counter",
               "validation warnings recorded"),
    # -- responses ------------------------------------------------------
    MetricSpec("response_documents_total", "counter",
               "tagged XML responses built"),
    MetricSpec("response_bytes_total", "counter",
               "bytes of tagged XML serialized"),
    # -- transactions / crash safety ------------------------------------
    MetricSpec("txn_commits_total", "counter",
               "transactions committed", ("site",)),
    MetricSpec("txn_rollbacks_total", "counter",
               "transactions rolled back", ("site",)),
    MetricSpec("txn_retries_total", "counter",
               "transactions retried after a transient failure", ("site",)),
    MetricSpec("fault_injected_total", "counter",
               "write faults injected by a FaultPlan", ("site",)),
    # -- sqlite backend -------------------------------------------------
    MetricSpec("sqlite_statements_total", "counter",
               "SQL statements issued against the sqlite backend", ("kind",)),
    MetricSpec("sqlite_rows_fetched_total", "counter",
               "rows fetched from sqlite cursors"),
    MetricSpec("sqlite_txn_seconds", "histogram",
               "sqlite transaction commit wall time"),
    MetricSpec("sqlite_pool_connections", "gauge",
               "reader connections currently open in the pool"),
    # -- integrity ------------------------------------------------------
    MetricSpec("fsck_soft_errors_total", "counter",
               "recoverable errors tolerated while checking integrity",
               ("kind",)),
    # -- myLEAD service -------------------------------------------------
    MetricSpec("service_ops_total", "counter",
               "myLEAD service operations by kind and user", ("op", "user")),
    MetricSpec("service_visibility_denied_total", "counter",
               "objects withheld from a user by the visibility check"),
)


def spec(name: str) -> MetricSpec:
    """The declaration for ``name``; raises for undeclared metrics so
    dynamic creation helpers stay inside the registry."""
    try:
        return METRICS[name]
    except KeyError:
        raise ValueError(
            f"metric {name!r} is not declared in repro.obs.names"
        ) from None
