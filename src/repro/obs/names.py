"""The central name registry (enforced by ``repro lint`` OBS01).

Every metric the catalog emits is declared here — name, kind, help
text, and label names — so the naming convention
(``*_total`` counters, ``*_seconds``/``*_rows`` histograms, bare-noun
gauges; see :mod:`repro.obs.metrics`) is checked in one place and a
dashboard can be built from this module alone.  The second-generation
observability layer extends the same discipline to the other two
name-keyed surfaces: structured *event* types written to the
JSON-lines event log (:mod:`repro.obs.events`) and windowed *series*
computed over the registry (:mod:`repro.obs.series`) are declared in
:data:`EVENTS` and :data:`SERIES` below.

The OBS01 rule statically verifies that every metric created anywhere
in ``src/`` (outside the :mod:`repro.obs` infrastructure itself, whose
span histograms derive their names from span names) uses a name
declared here, with the declared kind, at exactly one creation call
site — and that every event emitted and every series referenced uses a
declared name.  :func:`spec` / :func:`event_spec` / :func:`series_spec`
are the runtime half: helpers that work from a name variable resolve
the declaration through them, so help text, label tuples, and field
lists cannot drift from the registry.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "MetricSpec", "METRICS", "spec",
    "EventSpec", "EVENTS", "event_spec",
    "SeriesSpec", "SERIES", "series_spec",
]


class MetricSpec:
    """One declared metric: kind, help text, and label names."""

    __slots__ = ("name", "kind", "help", "labels")

    def __init__(self, name: str, kind: str, help: str,
                 labels: Tuple[str, ...] = ()) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labels = labels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricSpec({self.name!r}, {self.kind!r}, labels={self.labels})"


def _declare(*specs: MetricSpec) -> Dict[str, MetricSpec]:
    out: Dict[str, MetricSpec] = {}
    for s in specs:
        if s.name in out:
            raise ValueError(f"metric {s.name!r} declared twice")
        _check_suffix(s)
        out[s.name] = s
    return out


def _check_suffix(s: MetricSpec) -> None:
    """The naming convention OBS01 enforces, applied to the registry
    itself at import time so a bad declaration cannot land."""
    if s.kind == "counter" and not s.name.endswith("_total"):
        raise ValueError(f"counter {s.name!r} must end in _total")
    if s.kind == "histogram" and not (
        s.name.endswith("_seconds") or s.name.endswith("_rows")
    ):
        raise ValueError(f"histogram {s.name!r} must end in _seconds or _rows")
    if s.kind == "gauge" and (
        s.name.endswith("_total") or s.name.endswith("_seconds")
    ):
        raise ValueError(
            f"gauge {s.name!r} must not use a counter/histogram suffix"
        )


#: Every metric the catalog emits, by name.
METRICS: Dict[str, MetricSpec] = _declare(
    # -- catalog facade -------------------------------------------------
    MetricSpec("catalog_ingests_total", "counter", "documents ingested"),
    MetricSpec("catalog_deletes_total", "counter", "objects deleted"),
    MetricSpec("catalog_queries_total", "counter", "queries executed"),
    MetricSpec("catalog_objects", "gauge", "objects currently cataloged"),
    # -- query planning -------------------------------------------------
    MetricSpec("plan_cache_hits_total", "counter",
               "logical plans served from the cache"),
    MetricSpec("plan_cache_misses_total", "counter",
               "logical plans built by the optimizer"),
    MetricSpec("plan_cache_size", "gauge", "logical plans currently cached"),
    MetricSpec("query_cache_hits_total", "counter",
               "query results served from the result cache"),
    MetricSpec("query_cache_misses_total", "counter",
               "query results computed fresh (result-cache miss)"),
    MetricSpec("query_cache_evictions_total", "counter",
               "query results evicted from the result cache (LRU)"),
    MetricSpec("query_cache_size", "gauge",
               "query results currently cached"),
    MetricSpec("planner_queries_total", "counter", "query plans executed"),
    MetricSpec("planner_stage_rows", "histogram",
               "row count produced by each query-plan stage", ("stage",)),
    # -- shredder -------------------------------------------------------
    MetricSpec("shredder_shred_seconds", "histogram",
               "wall time of one document/fragment shred"),
    MetricSpec("shredder_documents_total", "counter",
               "documents and fragments shredded"),
    MetricSpec("shredder_clobs_total", "counter",
               "CLOB rows produced by shredding"),
    MetricSpec("shredder_attribute_rows_total", "counter",
               "attribute-instance rows produced"),
    MetricSpec("shredder_element_rows_total", "counter",
               "element-value rows produced"),
    MetricSpec("shredder_inverted_rows_total", "counter",
               "inverted-list rows produced"),
    MetricSpec("shredder_warnings_total", "counter",
               "validation warnings recorded"),
    # -- responses ------------------------------------------------------
    MetricSpec("response_documents_total", "counter",
               "tagged XML responses built"),
    MetricSpec("response_bytes_total", "counter",
               "bytes of tagged XML serialized"),
    # -- transactions / crash safety ------------------------------------
    MetricSpec("txn_commits_total", "counter",
               "transactions committed", ("site",)),
    MetricSpec("txn_rollbacks_total", "counter",
               "transactions rolled back", ("site",)),
    MetricSpec("txn_retries_total", "counter",
               "transactions retried after a transient failure", ("site",)),
    MetricSpec("fault_injected_total", "counter",
               "write faults injected by a FaultPlan", ("site",)),
    # -- sqlite backend -------------------------------------------------
    MetricSpec("sqlite_statements_total", "counter",
               "SQL statements issued against the sqlite backend", ("kind",)),
    MetricSpec("sqlite_rows_fetched_total", "counter",
               "rows fetched from sqlite cursors"),
    MetricSpec("sqlite_txn_seconds", "histogram",
               "sqlite transaction commit wall time"),
    MetricSpec("sqlite_pool_connections", "gauge",
               "reader connections currently open in the pool"),
    # -- contention (PR 6 windowed telemetry inputs) --------------------
    MetricSpec("rwlock_reader_wait_seconds", "histogram",
               "time readers spent blocked acquiring the store RWLock "
               "(contended acquisitions only)"),
    MetricSpec("rwlock_writer_wait_seconds", "histogram",
               "time writers spent blocked acquiring the store RWLock "
               "(contended acquisitions only)"),
    MetricSpec("pool_acquire_wait_seconds", "histogram",
               "time readers spent queued for a pooled connection "
               "(at-capacity checkouts only)"),
    MetricSpec("pool_queue_depth", "gauge",
               "reader threads currently queued for a pooled connection"),
    MetricSpec("query_cache_invalidations_total", "counter",
               "result-cache wipes by what moved the token", ("cause",)),
    # -- sharded catalog ------------------------------------------------
    MetricSpec("shard_queries_total", "counter",
               "scatter-gather query legs executed, per shard", ("shard",)),
    MetricSpec("shard_objects", "gauge",
               "objects currently held by each shard", ("shard",)),
    MetricSpec("shard_fanout_seconds", "histogram",
               "wall time of one scatter-gather fan-out "
               "(dispatch through k-way merge)"),
    # -- event log ------------------------------------------------------
    MetricSpec("events_emitted_total", "counter",
               "structured events written to the event log", ("event",)),
    MetricSpec("events_dropped_total", "counter",
               "structured events dropped before writing", ("reason",)),
    # -- integrity ------------------------------------------------------
    MetricSpec("fsck_soft_errors_total", "counter",
               "recoverable errors tolerated while checking integrity",
               ("kind",)),
    # -- myLEAD service -------------------------------------------------
    MetricSpec("service_ops_total", "counter",
               "myLEAD service operations by kind and user", ("op", "user")),
    MetricSpec("service_visibility_denied_total", "counter",
               "objects withheld from a user by the visibility check"),
    # -- HTTP server ----------------------------------------------------
    MetricSpec("server_requests_total", "counter",
               "HTTP requests served, by endpoint and status class",
               ("endpoint", "status")),
    MetricSpec("server_request_seconds", "histogram",
               "HTTP request wall time by endpoint", ("endpoint",)),
    MetricSpec("server_rate_limited_total", "counter",
               "requests rejected by the per-user rate limiter"),
    MetricSpec("server_auth_failures_total", "counter",
               "requests rejected for a missing or invalid session token"),
    MetricSpec("server_sessions", "gauge",
               "session tokens currently active"),
    MetricSpec("server_streamed_objects_total", "counter",
               "XML objects written through streamed search responses"),
)


def spec(name: str) -> MetricSpec:
    """The declaration for ``name``; raises for undeclared metrics so
    dynamic creation helpers stay inside the registry."""
    try:
        return METRICS[name]
    except KeyError:
        raise ValueError(
            f"metric {name!r} is not declared in repro.obs.names"
        ) from None


# ---------------------------------------------------------------------------
# Structured event types (the repro.events/v1 JSON-lines stream)
# ---------------------------------------------------------------------------

class EventSpec:
    """One declared event type: help text plus its well-known fields
    (emitters may add more; these are the ones consumers can rely on)."""

    __slots__ = ("name", "help", "fields")

    def __init__(self, name: str, help: str,
                 fields: Tuple[str, ...] = ()) -> None:
        self.name = name
        self.help = help
        self.fields = fields

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventSpec({self.name!r}, fields={self.fields})"


def _declare_events(*specs: EventSpec) -> Dict[str, EventSpec]:
    out: Dict[str, EventSpec] = {}
    for s in specs:
        if s.name in out:
            raise ValueError(f"event {s.name!r} declared twice")
        out[s.name] = s
    return out


#: Every event type the catalog writes to its event-log sidecar.
EVENTS: Dict[str, EventSpec] = _declare_events(
    EventSpec("query", "one query audit record",
              ("attrs", "elems", "matches", "seconds", "cache")),
    EventSpec("slow_query",
              "a query above the slow threshold, full profile embedded",
              ("attrs", "elems", "matches", "seconds", "threshold",
               "profile")),
    EventSpec("txn_rollback", "a transaction rolled back", ("site",)),
    EventSpec("txn_retry",
              "a transaction retried after a transient failure", ("site",)),
    EventSpec("fault_injected", "a FaultPlan fired at a write site",
              ("site",)),
    EventSpec("cache_invalidated",
              "the result cache dropped every entry", ("cause",)),
    EventSpec("slow_request",
              "an HTTP request above the server's slow threshold",
              ("endpoint", "user", "status", "seconds", "threshold")),
)


def event_spec(name: str) -> EventSpec:
    """The declaration for event ``name``; raises for undeclared events
    so dynamic emit helpers stay inside the registry."""
    try:
        return EVENTS[name]
    except KeyError:
        raise ValueError(
            f"event {name!r} is not declared in repro.obs.names"
        ) from None


# ---------------------------------------------------------------------------
# Windowed time series (ring-buffer telemetry over the registry)
# ---------------------------------------------------------------------------

class SeriesSpec:
    """One declared windowed series: how it is derived (``rate`` of a
    counter delta per second, ``p95`` from histogram bucket deltas, or a
    ``gauge`` read) and the source metric names it consumes."""

    __slots__ = ("name", "mode", "help", "sources")

    def __init__(self, name: str, mode: str, help: str,
                 sources: Tuple[str, ...]) -> None:
        if mode not in ("rate", "p95", "gauge"):
            raise ValueError(f"series {name!r}: unknown mode {mode!r}")
        self.name = name
        self.mode = mode
        self.help = help
        self.sources = sources

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeriesSpec({self.name!r}, {self.mode!r}, {self.sources})"


def _declare_series(*specs: SeriesSpec) -> Dict[str, SeriesSpec]:
    out: Dict[str, SeriesSpec] = {}
    for s in specs:
        if s.name in out:
            raise ValueError(f"series {s.name!r} declared twice")
        for source in s.sources:
            # Span-derived histograms (``catalog_query_seconds``) are
            # not in METRICS; anything else must be declared above.
            if source not in METRICS and not source.endswith("_seconds"):
                raise ValueError(
                    f"series {s.name!r} sources unknown metric {source!r}"
                )
        out[s.name] = s
    return out


#: Every windowed series ``repro top`` renders.  Span-derived
#: histograms (``catalog_query_seconds``) are not in METRICS — their
#: names derive from span names — but are stable API all the same.
SERIES: Dict[str, SeriesSpec] = _declare_series(
    SeriesSpec("qps", "rate", "queries per second",
               ("catalog_queries_total",)),
    SeriesSpec("error_rate", "rate",
               "transaction rollbacks per second (all sites)",
               ("txn_rollbacks_total",)),
    SeriesSpec("query_p95", "p95",
               "p95 query latency over the interval, seconds",
               ("catalog_query_seconds",)),
    SeriesSpec("lock_wait_p95", "p95",
               "p95 RWLock wait over the interval (readers and writers), "
               "seconds",
               ("rwlock_reader_wait_seconds", "rwlock_writer_wait_seconds")),
    SeriesSpec("pool_wait_p95", "p95",
               "p95 pooled-connection acquire wait over the interval, "
               "seconds",
               ("pool_acquire_wait_seconds",)),
    SeriesSpec("pool_queue_depth", "gauge",
               "reader threads currently queued for a pooled connection",
               ("pool_queue_depth",)),
)


def series_spec(name: str) -> SeriesSpec:
    """The declaration for series ``name``; raises for undeclared
    series so windowed-telemetry consumers stay inside the registry."""
    try:
        return SERIES[name]
    except KeyError:
        raise ValueError(
            f"series {name!r} is not declared in repro.obs.names"
        ) from None
