"""Per-stage query execution profiles (the catalog's ``EXPLAIN ANALYZE``).

A :class:`QueryProfile` rides one plan execution: the backend times
each IR stage as it runs, and when the plan finishes
:meth:`QueryProfile.record_plan` derives the per-stage row flow —
rows-in, rows-out, and the optimizer's estimate — from the plan's
``actuals`` map.  Because *both* backends fill ``actuals`` identically
(the PAR01 parity property), the row columns of a profile are computed
by one shared function here rather than once per backend, so profile
parity is structural: only the timings are backend-specific.

Profiles travel on a context variable (mirroring
:mod:`repro.obs.tracing`), so no ``match_objects`` signature changes
and the deep contention hooks — RWLock waits, reader-pool queue waits —
can attribute their blocked time to whichever query is running::

    profile = QueryProfile()
    with collecting(profile):
        catalog.query(query, trace=PlanTrace())
    print(profile.describe())

The disabled cost is one ``ContextVar.get`` per instrumentation point:
every hook checks ``current_profile() is None`` before touching a
clock (measured by bench E13 — the ≤1 % budget of the acceptance
criteria).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, List, Optional, Tuple

__all__ = [
    "StageProfile",
    "QueryProfile",
    "activate",
    "collecting",
    "current_profile",
    "deactivate",
]

_current: ContextVar[Optional["QueryProfile"]] = ContextVar(
    "repro_obs_profile", default=None
)

#: The wait-breakdown buckets a profile tracks.
WAIT_KINDS = ("lock", "pool")


class StageProfile:
    """One executed IR stage: row flow plus wall time."""

    __slots__ = ("kind", "key", "detail", "rows_in", "rows_out",
                 "est_rows", "seconds")

    def __init__(
        self,
        kind: str,
        key: Tuple,
        detail: str,
        rows_in: int,
        rows_out: int,
        est_rows: Optional[float],
        seconds: float,
    ) -> None:
        self.kind = kind
        self.key = key
        self.detail = detail
        self.rows_in = rows_in
        self.rows_out = rows_out
        self.est_rows = est_rows
        self.seconds = seconds

    def est_delta(self) -> Optional[float]:
        """Actual minus estimated rows-out (``None`` without an
        estimate) — positive when the optimizer undercounted."""
        if self.est_rows is None:
            return None
        return self.rows_out - self.est_rows

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "key": list(self.key),
            "detail": self.detail,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "est_rows": self.est_rows,
            "seconds": self.seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StageProfile({self.kind}, {self.key}, "
            f"rows={self.rows_in}->{self.rows_out})"
        )


class QueryProfile:
    """Everything one plan run did: per-stage rows and timings, the
    cache/lock/pool wait breakdown, and total wall time.

    Backends fill ``stage_seconds`` (stage key → seconds) while
    executing and call :meth:`record_plan` once at the end; the
    contention hooks call :meth:`add_wait` from wherever the query
    blocked.  A result-cache hit leaves the stage list empty with
    ``result_cache_hit`` set — no plan ran.
    """

    __slots__ = ("backend", "stage_seconds", "waits",
                 "total_seconds", "result_cache_hit", "plan_cache_hit",
                 "simple", "trace_stages", "_t0",
                 "_plan", "_actuals", "_stages", "_short_circuited")

    def __init__(self) -> None:
        self.backend: Optional[str] = None
        self.stage_seconds: Dict[Tuple, float] = {}
        self.waits: Dict[str, float] = {kind: 0.0 for kind in WAIT_KINDS}
        self.total_seconds: Optional[float] = None
        self.result_cache_hit = False
        self.plan_cache_hit: Optional[bool] = None
        self.simple: Optional[bool] = None
        self.trace_stages: List[str] = []
        self._t0 = time.perf_counter()
        # Stage rows are derived lazily (first access of ``stages``):
        # ``record_plan`` on the query hot path only snapshots the
        # executed plan and its actuals — bench E13's enabled budget.
        self._plan = None
        self._actuals: Dict[Tuple, int] = {}
        self._stages: Optional[List[StageProfile]] = None
        self._short_circuited = False

    # ------------------------------------------------------------------
    # Collection API (called by the backends and contention hooks)
    # ------------------------------------------------------------------
    def add_wait(self, kind: str, seconds: float) -> None:
        """Attribute blocked time to this query (``lock`` or ``pool``)."""
        self.waits[kind] = self.waits.get(kind, 0.0) + seconds

    def finish(self) -> None:
        """Stamp the total wall time (idempotent — keeps the first)."""
        if self.total_seconds is None:
            self.total_seconds = time.perf_counter() - self._t0

    def record_plan(self, plan, backend: str, trace=None) -> None:
        """Snapshot an executed plan so the stage rows can be derived.

        The row flow is a pure function of the plan, so both backends
        produce identical stage names, order, and row counts by
        construction; ``stage_seconds`` (filled during execution) is
        the only backend-specific column.  Only the snapshot happens
        here — ``plan.actuals`` is copied because cached plans are
        re-executed and overwrite it — and the :class:`StageProfile`
        list is built on first access of :attr:`stages`, keeping the
        per-query profiling cost to a few assignments.
        """
        self.backend = backend
        self.simple = plan.simple
        if trace is not None:
            self.trace_stages = trace.stage_names()
        self._plan = plan
        self._actuals = dict(plan.actuals)
        self._stages = None

    @property
    def stages(self) -> List[StageProfile]:
        """The derived per-stage rows (built lazily from the snapshot)."""
        if self._stages is None:
            self._stages = (
                self._build_stages() if self._plan is not None else []
            )
        return self._stages

    @stages.setter
    def stages(self, value: List[StageProfile]) -> None:
        # Synthetic profiles (the sharded scatter-gather merge) build
        # their stage list directly instead of from a plan snapshot.
        self._stages = value

    @property
    def short_circuited(self) -> bool:
        if self._plan is not None and self._stages is None:
            self.stages  # force derivation
        return self._short_circuited

    @short_circuited.setter
    def short_circuited(self, value: bool) -> None:
        self._short_circuited = value

    def _build_stages(self) -> List[StageProfile]:
        plan = self._plan
        actuals = self._actuals
        seconds = self.stage_seconds
        stages: List[StageProfile] = []

        for seek in plan.seeks:
            key = seek.key()
            stages.append(StageProfile(
                seek.kind, key,
                f"qelem {seek.qelem_id} (elem_def {seek.elem_def_id} "
                f"{seek.op.value})",
                0, actuals.get(key, 0), seek.est_rows,
                seconds.get(key, 0.0),
            ))
        # A seek that matched nothing short-circuits the plan; the
        # remaining stages ran over empty inputs (rows stay 0).
        self._short_circuited = any(
            actuals.get(seek.key(), 0) == 0 for seek in plan.seeks
        )

        # Rows flowing into each count stage: that criterion's seek
        # outputs.  ``current`` then tracks each criterion's surviving
        # instance count as containment edges whittle it down.
        seek_rows_by_qattr: Dict[int, int] = {}
        for seek in plan.seeks:
            seek_rows_by_qattr[seek.qattr_id] = (
                seek_rows_by_qattr.get(seek.qattr_id, 0)
                + actuals.get(seek.key(), 0)
            )
        current: Dict[int, int] = {}
        for count in plan.counts:
            key = count.key()
            rows_out = actuals.get(key, 0)
            current[count.qattr_id] = rows_out
            need = ("exists" if count.required == 0
                    else f"need {count.required} distinct")
            stages.append(StageProfile(
                count.kind, key,
                f"qattr {count.qattr_id} (def {count.attr_def_id}, {need})",
                seek_rows_by_qattr.get(count.qattr_id, 0), rows_out,
                count.est_rows, seconds.get(key, 0.0),
            ))

        for edge in plan.containments:
            key = edge.key()
            rows_in = (current.get(edge.parent_qattr_id, 0)
                       + current.get(edge.child_qattr_id, 0))
            rows_out = actuals.get(key, 0)
            current[edge.parent_qattr_id] = rows_out
            stages.append(StageProfile(
                edge.kind, key,
                f"qattr {edge.parent_qattr_id} contains "
                f"qattr {edge.child_qattr_id}",
                rows_in, rows_out, None, seconds.get(key, 0.0),
            ))

        key = plan.intersect.key()
        tops = plan.intersect.top_qattr_ids
        stages.append(StageProfile(
            plan.intersect.kind, key,
            f"tops {list(tops)}",
            sum(current.get(t, 0) for t in tops),
            actuals.get(key, 0), plan.intersect.est_rows,
            seconds.get(key, 0.0),
        ))
        return stages

    # ------------------------------------------------------------------
    # Export / rendering
    # ------------------------------------------------------------------
    def stage_names(self) -> List[str]:
        """``kind`` per stage, execution order (the parity property)."""
        return [stage.kind for stage in self.stages]

    def rows_out(self) -> List[int]:
        return [stage.rows_out for stage in self.stages]

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "total_seconds": self.total_seconds,
            "waits": dict(self.waits),
            "result_cache_hit": self.result_cache_hit,
            "plan_cache_hit": self.plan_cache_hit,
            "short_circuited": self.short_circuited,
            "simple": self.simple,
            "stages": [stage.as_dict() for stage in self.stages],
        }

    def describe(self) -> str:
        """The ``EXPLAIN ANALYZE`` table: one row per executed stage
        with actual rows, wall time, and estimated-vs-actual delta."""
        header = f"profile ({self.backend or 'unbound'}"
        if self.total_seconds is not None:
            header += f", total {self.total_seconds * 1e3:.3f} ms"
        header += ")"
        if self.result_cache_hit:
            return header + "\n  served from the result cache (no plan run)"
        lines = [header]
        width = max((len(s.kind) for s in self.stages), default=0)
        for stage in self.stages:
            est = "est=?" if stage.est_rows is None else f"est~{stage.est_rows:.1f}"
            delta = stage.est_delta()
            if delta is None:
                delta_text = ""
            else:
                delta_text = f"  Δ{delta:+.1f}"
            lines.append(
                f"  {stage.kind:<{width}}  "
                f"in={stage.rows_in:>6}  out={stage.rows_out:>6}  "
                f"{est:<12}{delta_text:<10}  "
                f"{stage.seconds * 1e3:8.3f} ms  {stage.detail}"
            )
        waits = "  ".join(
            f"{kind}={self.waits.get(kind, 0.0) * 1e3:.3f} ms"
            for kind in WAIT_KINDS
        )
        lines.append(f"  waits: {waits}")
        if self.short_circuited:
            lines.append("  short-circuited: a criterion matched nothing")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryProfile(backend={self.backend!r}, "
            f"stages={len(self.stages)})"
        )


def current_profile() -> Optional[QueryProfile]:
    """The profile collecting on this thread/context, if any — the one
    ``ContextVar.get`` that is the whole disabled-path cost."""
    return _current.get()


@contextmanager
def collecting(profile: QueryProfile):
    """Make ``profile`` the active collector for the block; stamps the
    total wall time on exit."""
    token = activate(profile)
    try:
        yield profile
    finally:
        deactivate(profile, token)


def activate(profile: QueryProfile):
    """Install ``profile`` as the active collector; returns the reset
    token.  The raw set/reset pair that :func:`collecting` wraps — the
    catalog's per-query hot path uses it directly to skip the
    generator-contextmanager overhead (bench E13's enabled budget)."""
    return _current.set(profile)


def deactivate(profile: QueryProfile, token) -> None:
    """Undo :func:`activate` and stamp the profile's total wall time."""
    _current.reset(token)
    profile.finish()


def stage_clock(profile: Optional[QueryProfile]):
    """The per-stage clock for a backend's execution loop: a real
    ``perf_counter`` when profiling, ``None`` otherwise (so the
    disabled path never touches a clock)."""
    return time.perf_counter if profile is not None else None
