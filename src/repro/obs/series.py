"""Windowed telemetry: ring-buffer time series over the metrics registry.

Counters and histograms are cumulative — good for totals, useless for
"what is the QPS *right now*".  A :class:`SeriesCollector` turns the
cumulative registry into live, windowed numbers by sampling it on a
cadence and differencing consecutive snapshots:

* ``rate`` series (QPS, error rate): counter delta ÷ interval;
* ``p95`` series (query latency, lock wait, pool wait): the 95th
  percentile of *this interval's* observations, recovered from
  cumulative histogram bucket deltas the same way PromQL's
  ``histogram_quantile(0.95, rate(..._bucket[1m]))`` does;
* ``gauge`` series (pool queue depth): the instantaneous value.

Which series exist — and which metric families feed each — is declared
in :data:`repro.obs.names.SERIES`, the same registry discipline OBS01
enforces for metrics and events.  Each series keeps its last
``capacity`` points in a :class:`RingSeries`; ``repro top`` samples a
collector on an interval and renders the rings.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from . import names as metric_names
from .metrics import MetricsRegistry

__all__ = ["RingSeries", "SeriesCollector"]

#: Points kept per series by default (at a 1 s cadence: two minutes).
DEFAULT_CAPACITY = 120


class RingSeries:
    """A fixed-capacity ring of ``(timestamp, value)`` points."""

    __slots__ = ("name", "mode", "_points")

    def __init__(self, name: str, mode: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("series capacity must be >= 1")
        self.name = name
        self.mode = mode
        self._points: Deque[Tuple[float, float]] = deque(maxlen=capacity)

    def append(self, ts: float, value: float) -> None:
        self._points.append((ts, value))

    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    def values(self) -> List[float]:
        return [v for _, v in self._points]

    def last(self) -> Optional[float]:
        """The newest value, or ``None`` before the first point."""
        return self._points[-1][1] if self._points else None

    def __len__(self) -> int:
        return len(self._points)


def _counter_total(registry: MetricsRegistry, source: str) -> float:
    """Sum of a counter family across all its label sets (0 when the
    family hasn't been created yet)."""
    family = registry.get(source)
    if family is None:
        return 0.0
    return sum(metric.value for _, metric in family.series())


def _histogram_buckets(registry: MetricsRegistry, source: str) -> Dict[float, int]:
    """Merged cumulative buckets of a histogram family across all its
    label sets: upper bound → cumulative count."""
    family = registry.get(source)
    merged: Dict[float, int] = {}
    if family is None:
        return merged
    for _, metric in family.series():
        for bound, cumulative in metric.cumulative_buckets():
            merged[bound] = merged.get(bound, 0) + cumulative
    return merged


def _bucket_delta_percentile(
    previous: Dict[float, int], current: Dict[float, int], q: float
) -> float:
    """The ``q``-th percentile (0–100) of the observations that landed
    between two cumulative-bucket snapshots, by linear interpolation
    within the target bucket (PromQL ``histogram_quantile`` semantics).
    ``nan`` when the interval saw no observations."""
    bounds = sorted(set(previous) | set(current))
    deltas = [
        (bound, current.get(bound, 0) - previous.get(bound, 0))
        for bound in bounds
    ]
    total = deltas[-1][1] if deltas else 0
    if total <= 0:
        return math.nan
    rank = (q / 100.0) * total
    lower = 0.0
    prev_cum = 0
    for bound, cumulative in deltas:
        if cumulative >= rank and cumulative > prev_cum:
            if not math.isfinite(bound):
                # Everything above the largest finite bound: the best
                # honest answer is that bound (PromQL does the same).
                return lower
            in_bucket = cumulative - prev_cum
            frac = (rank - prev_cum) / in_bucket
            return lower + (bound - lower) * frac
        prev_cum = max(prev_cum, cumulative)
        if math.isfinite(bound):
            lower = bound
    return lower


class SeriesCollector:
    """Samples a registry on demand and maintains one
    :class:`RingSeries` per spec in :data:`repro.obs.names.SERIES`.

    The first :meth:`sample` establishes the delta baseline, so rate
    and p95 series start producing values from the second sample on
    (gauge series produce immediately).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.registry = registry
        self.series: Dict[str, RingSeries] = {
            name: RingSeries(name, spec.mode, capacity)
            for name, spec in metric_names.SERIES.items()
        }
        self._last_ts: Optional[float] = None
        self._last_counters: Dict[str, float] = {}
        self._last_buckets: Dict[str, Dict[float, int]] = {}

    def sample(self, now: Optional[float] = None) -> Dict[str, float]:
        """Take one snapshot; returns the values appended this round
        (rate/p95 series are absent on the baseline sample)."""
        ts = time.monotonic() if now is None else now
        counters: Dict[str, float] = {}
        buckets: Dict[str, Dict[float, int]] = {}
        produced: Dict[str, float] = {}

        for name, spec in metric_names.SERIES.items():
            ring = self.series[name]
            if spec.mode == "gauge":
                value = 0.0
                for source in spec.sources:
                    family = self.registry.get(source)
                    if family is not None:
                        value += sum(m.value for _, m in family.series())
                ring.append(ts, value)
                produced[name] = value
            elif spec.mode == "rate":
                total = sum(_counter_total(self.registry, s) for s in spec.sources)
                counters[name] = total
                if self._last_ts is not None and ts > self._last_ts:
                    rate = (total - self._last_counters.get(name, 0.0)) / (
                        ts - self._last_ts
                    )
                    ring.append(ts, rate)
                    produced[name] = rate
            elif spec.mode == "p95":
                merged: Dict[float, int] = {}
                for source in spec.sources:
                    for bound, cumulative in _histogram_buckets(
                        self.registry, source
                    ).items():
                        merged[bound] = merged.get(bound, 0) + cumulative
                buckets[name] = merged
                if self._last_ts is not None:
                    value = _bucket_delta_percentile(
                        self._last_buckets.get(name, {}), merged, 95
                    )
                    ring.append(ts, value)
                    produced[name] = value

        self._last_ts = ts
        self._last_counters = counters
        self._last_buckets = buckets
        return produced

    def latest(self) -> Dict[str, Optional[float]]:
        """Newest point per series (``None`` before the first)."""
        return {name: ring.last() for name, ring in self.series.items()}
