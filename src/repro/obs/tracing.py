"""Lightweight nested spans over the hybrid pipeline.

A span measures one operation's wall time and carries free-form
attributes (object names, criteria counts) that would be too high
cardinality for metric labels.  Spans nest via a context variable, so
``catalog.search`` naturally contains ``catalog.query`` which contains
the planner stages, and each completed *root* span is kept in a small
ring buffer for post-hoc inspection::

    with span("catalog.ingest", object_name="forecast-001"):
        ...
    default_tracer().recent()[-1].describe()

Every span also feeds the metrics registry: a span named ``a.b``
observes its duration into the histogram ``a_b_seconds``, so the same
instrumentation yields both traces and latency distributions.  Plan
stages recorded by the planner attach to the active span as events
(this folds the Fig-4 ``PlanTrace`` into the one tracing mechanism).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, List, Optional

from .metrics import MetricsRegistry, default_registry

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "current_span",
    "default_tracer",
    "set_default_tracer",
    "span",
]

#: Completed root spans kept per tracer.
RING_SIZE = 64

_current: ContextVar[Optional["Span"]] = ContextVar("repro_obs_span", default=None)


class SpanEvent:
    """A point-in-time annotation inside a span (e.g. one plan stage)."""

    __slots__ = ("name", "fields")

    def __init__(self, name: str, fields: Dict[str, object]) -> None:
        self.name = name
        self.fields = fields

    def __repr__(self) -> str:  # pragma: no cover
        return f"SpanEvent({self.name!r}, {self.fields!r})"


class Span:
    """One timed operation; may contain child spans and events."""

    __slots__ = ("name", "attrs", "start_time", "duration", "children",
                 "events", "status", "error", "_t0")

    def __init__(self, name: str, attrs: Dict[str, object]) -> None:
        self.name = name
        self.attrs = attrs
        self.start_time = time.time()
        self.duration: Optional[float] = None
        self.children: List[Span] = []
        self.events: List[SpanEvent] = []
        self.status = "ok"
        self.error: Optional[str] = None
        self._t0 = time.perf_counter()

    def set(self, **attrs: object) -> None:
        """Attach attributes after the span has started."""
        self.attrs.update(attrs)

    def event(self, name: str, **fields: object) -> None:
        self.events.append(SpanEvent(name, fields))

    def metric_name(self) -> str:
        return self.name.replace(".", "_").replace("-", "_") + "_seconds"

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start_time": self.start_time,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "events": [{"name": e.name, **e.fields} for e in self.events],
            "children": [child.as_dict() for child in self.children],
        }

    def describe(self, indent: int = 0) -> str:
        """A readable one-line-per-span tree rendering."""
        pad = "  " * indent
        duration = (
            f"{self.duration * 1e3:9.3f} ms" if self.duration is not None
            else "  (open)  "
        )
        attrs = "".join(f" {k}={v}" for k, v in self.attrs.items())
        status = "" if self.status == "ok" else f" [{self.status}: {self.error}]"
        lines = [f"{pad}{duration}  {self.name}{attrs}{status}"]
        for event in self.events:
            fields = "".join(f" {k}={v}" for k, v in event.fields.items())
            lines.append(f"{pad}    · {event.name}{fields}")
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for a descendant span (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return f"Span({self.name!r}, duration={self.duration})"


class Tracer:
    """Creates spans, feeds their durations to a metrics registry, and
    keeps a ring buffer of recently completed root spans."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 keep: int = RING_SIZE) -> None:
        self._metrics = metrics
        self._recent: deque = deque(maxlen=keep)
        self._lock = threading.Lock()

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics if self._metrics is not None else default_registry()

    @contextmanager
    def span(self, name: str, **attrs: object):
        current = Span(name, attrs)
        parent = _current.get()
        if parent is not None:
            parent.children.append(current)
        token = _current.set(current)
        try:
            yield current
        except BaseException as exc:
            current.status = "error"
            current.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            current.duration = time.perf_counter() - current._t0
            _current.reset(token)
            self.metrics.histogram(
                current.metric_name(), f"duration of {name} spans"
            ).observe(current.duration)
            if parent is None:
                with self._lock:
                    self._recent.append(current)

    def recent(self) -> List[Span]:
        """Completed root spans, oldest first."""
        with self._lock:
            return list(self._recent)

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()


def current_span() -> Optional[Span]:
    """The innermost open span on this thread/context, if any."""
    return _current.get()


_default_tracer = Tracer()
_default_lock = threading.Lock()


def default_tracer() -> Tracer:
    """The process-global tracer (feeds the default metrics registry)."""
    return _default_tracer


def set_default_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer; returns the previous one."""
    global _default_tracer
    with _default_lock:
        previous = _default_tracer
        _default_tracer = tracer
    return previous


def span(name: str, **attrs: object):
    """``with span("catalog.ingest", object_name=...):`` on the default
    tracer."""
    return _default_tracer.span(name, **attrs)
