"""Columnar batches and selection-vector kernels.

The engine's execution unit is a :class:`ColumnBatch` — a set of named,
parallel value columns (plain Python lists, one slot per row) — paired
with *selection vectors* (sorted lists of positions) and validity
bitmaps (``bytearray``, one byte per slot, ``1`` = live).  Operators
and the IR interpreter pass these around instead of per-row tuples:
a predicate evaluates to a bitmap over a whole batch in one pass, a
semijoin intersects sorted id vectors, and rows are only materialized
as tuples at the edges (responses, debugging, the legacy row API).

Everything here is deliberately dependency-free and kernel-shaped: flat
functions over lists, no per-row Python method dispatch inside loops —
the HPC guideline the row-at-a-time engine violated on every scan.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Sequence, Tuple

from .errors import TableError

#: A selection vector: sorted, duplicate-free positions into a batch.
SelectionVector = List[int]


class ColumnBatch:
    """Named parallel columns — the unit flowing between batch kernels.

    ``data[i]`` is the value column for ``columns[i]``; all columns have
    equal length.  A batch is a *view* by default: kernels that take one
    must not mutate the column lists.
    """

    __slots__ = ("columns", "data", "_positions")

    def __init__(self, columns: Sequence[str], data: Sequence[List[Any]]) -> None:
        if len(columns) != len(data):
            raise TableError(
                f"batch needs one column list per name: {len(columns)} names, "
                f"{len(data)} columns"
            )
        self.columns: Tuple[str, ...] = tuple(columns)
        self.data: Tuple[List[Any], ...] = tuple(data)
        self._positions: Dict[str, int] = {n: i for i, n in enumerate(self.columns)}

    def __len__(self) -> int:
        return len(self.data[0]) if self.data else 0

    def position(self, column: str) -> int:
        try:
            return self._positions[column]
        except KeyError:
            raise TableError(
                f"batch has no column {column!r} (has {list(self.columns)})"
            ) from None

    def column(self, name: str) -> List[Any]:
        return self.data[self.position(name)]

    def row(self, position: int) -> tuple:
        return tuple(col[position] for col in self.data)

    def take(self, selection: Sequence[int]) -> "ColumnBatch":
        """Materialize the selected positions into a new batch."""
        return ColumnBatch(
            self.columns, [[col[i] for i in selection] for col in self.data]
        )

    def iter_rows(self) -> Iterator[tuple]:
        return zip(*self.data) if self.data else iter(())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnBatch({list(self.columns)}, rows={len(self)})"


# ---------------------------------------------------------------------------
# Bitmap / selection-vector kernels
# ---------------------------------------------------------------------------

def mask_and(a: bytearray, b: bytearray) -> bytearray:
    return bytearray(x & y for x, y in zip(a, b))


def mask_or(a: bytearray, b: bytearray) -> bytearray:
    return bytearray(x | y for x, y in zip(a, b))


def mask_not(a: bytearray) -> bytearray:
    return bytearray(1 - x for x in a)


def mask_to_selection(mask: bytearray) -> SelectionVector:
    """Positions of the set bits, ascending."""
    return [i for i, bit in enumerate(mask) if bit]


def selection_to_mask(selection: Sequence[int], length: int) -> bytearray:
    mask = bytearray(length)
    for i in selection:
        mask[i] = 1
    return mask


def intersect_sorted(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Merge-intersect two sorted, duplicate-free id vectors."""
    # Probe the smaller side against the larger when sizes are skewed:
    # the merge walk is O(n+m), the probe walk O(n log m)-ish via the
    # hash; for id vectors the set probe wins once the skew is real.
    if len(a) > len(b):
        a, b = b, a
    if not a:
        return []
    if len(b) > 8 * len(a):
        bs = set(b)
        return [x for x in a if x in bs]
    out: List[int] = []
    i = j = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out


def intersect_many(vectors: Sequence[Sequence[int]]) -> List[int]:
    """k-way sorted intersection, smallest vector first so an empty
    running result exits early."""
    if not vectors:
        return []
    ordered = sorted(vectors, key=len)
    result = list(ordered[0])
    for vector in ordered[1:]:
        if not result:
            break
        result = intersect_sorted(result, vector)
    return result
