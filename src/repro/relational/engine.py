"""The Database object: a registry of named tables plus temp tables.

The catalog and baselines each create their tables through one
:class:`Database`, so storage accounting (bench E5) and debugging have a
single place to enumerate everything a scheme stores.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .errors import TableError
from .table import Table
from .types import Column


class Database:
    """Named tables, temp-table lifecycle, and storage accounting."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}
        self._temp_counter = itertools.count(1)
        self._journal: Optional[list] = None

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[Sequence[str]] = None,
    ) -> Table:
        if name in self._tables:
            raise TableError(f"table {name!r} already exists")
        table = Table(name, columns, primary_key)
        table.journal = self._journal
        self._tables[name] = table
        return table

    def create_temp_table(self, prefix: str, columns: Sequence[Column]) -> Table:
        """A uniquely named table for per-query scratch data (paper §4:
        query criteria are inserted into temporary tables)."""
        name = f"{prefix}_{next(self._temp_counter)}"
        return self.create_table(name, columns)

    def drop_table(self, name: str) -> None:
        try:
            del self._tables[name]
        except KeyError:
            raise TableError(f"no table {name!r}") from None

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise TableError(f"no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    # ------------------------------------------------------------------
    # Transactions (undo-journal based; one level, no savepoints)
    # ------------------------------------------------------------------
    def in_transaction(self) -> bool:
        return self._journal is not None

    def begin(self) -> None:
        """Start journaling mutations so they can be rolled back."""
        if self._journal is not None:
            raise TableError("a transaction is already active")
        self._journal = []
        for table in self._tables.values():
            table.journal = self._journal

    def _end(self) -> list:
        journal = self._journal
        if journal is None:
            raise TableError("no active transaction")
        self._journal = None
        for table in self._tables.values():
            table.journal = None
        return journal

    def commit(self) -> None:
        """Discard the journal; mutations since ``begin`` are final."""
        self._end()

    def rollback(self) -> None:
        """Undo every mutation since ``begin``, in reverse order."""
        for table, rowid, row in reversed(self._end()):
            if row is None:
                table._undo_insert(rowid)
            else:
                table._undo_delete(rowid, row)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def row_counts(self) -> Dict[str, int]:
        return {name: len(t) for name, t in self._tables.items()}

    def total_rows(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def estimated_bytes(self) -> int:
        return sum(t.estimated_bytes() for t in self._tables.values())

    def storage_report(self) -> List[Tuple[str, int, int]]:
        """Per-table ``(name, rows, bytes)`` sorted by size, for E5."""
        report = [
            (name, len(t), t.estimated_bytes()) for name, t in self._tables.items()
        ]
        report.sort(key=lambda item: item[2], reverse=True)
        return report

    def storage_breakdown(self) -> Dict[str, Dict[str, int]]:
        """Per-table, per-column byte accounting (columnar layout)."""
        return {
            name: t.storage_breakdown() for name, t in self._tables.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.name!r}, tables={len(self._tables)})"
