"""Errors raised by the relational engine."""

from __future__ import annotations

from ..errors import ReproError


class RelationalError(ReproError):
    """Base class for engine errors."""


class TableError(RelationalError):
    """Unknown/duplicate table, or schema mismatch on insert."""


class ConstraintError(RelationalError):
    """Primary-key or NOT NULL violation."""


class PlanError(RelationalError):
    """A query-plan operator was combined with incompatible inputs."""
