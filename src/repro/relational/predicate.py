"""Predicate expressions over named-column rows and column batches.

Predicates form a tiny AST (comparisons, boolean combinators, IN, NULL
tests) with two compiled evaluation paths:

* :meth:`Predicate.compile` — a Python closure over positional row
  tuples (the legacy per-row API, kept for callers that genuinely
  iterate rows); per the HPC guideline of hoisting work out of inner
  loops, no per-row name lookups or isinstance dispatch happen during
  a scan.
* :meth:`Predicate.compile_batch` — a *vectorized* closure taking a
  :class:`~repro.relational.batch.ColumnBatch` and returning a
  validity-style bitmap (``bytearray``, one byte per batch slot).
  Each AST node evaluates over whole columns in a single comprehension
  and combinators fold bitmaps, so a scan costs one pass per referenced
  column instead of one closure call per row.

The two paths are property-tested to agree bit-for-bit (hypothesis:
vectorized == scalar on random batches).  The same AST also renders to
a SQL ``WHERE`` fragment so the sqlite backend can execute identical
logical plans (used by the backend-equivalence property tests and
bench E9).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

from .batch import ColumnBatch, mask_and, mask_not, mask_or

RowPredicate = Callable[[tuple], bool]
#: Vectorized form: a batch in, one 0/1 byte per batch slot out.
BatchPredicate = Callable[[ColumnBatch], bytearray]


class Predicate:
    """Base class; combinators build trees with ``&``, ``|``, ``~``."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or([self, other])

    def __invert__(self) -> "Predicate":
        return Not(self)

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        """Compile into a closure over rows with the given column order."""
        raise NotImplementedError

    def compile_batch(self, columns: Sequence[str]) -> BatchPredicate:
        """Compile into a vectorized closure: batch in, bitmap out."""
        raise NotImplementedError

    def matching_positions(self, batch: ColumnBatch) -> List[int]:
        """Selection vector of the batch positions this predicate keeps."""
        mask = self.compile_batch(batch.columns)(batch)
        return [i for i, bit in enumerate(mask) if bit]

    def to_sql(self) -> Tuple[str, List[Any]]:
        """Render as a parameterized SQL fragment ``(sql, params)``."""
        raise NotImplementedError

    def referenced_columns(self) -> List[str]:
        raise NotImplementedError


_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Comparison(Predicate):
    """``column <op> constant``.  NULLs never match (SQL semantics)."""

    __slots__ = ("column", "op", "value")

    def __init__(self, column: str, op: str, value: Any) -> None:
        if op not in _OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.column = column
        self.op = op
        self.value = value

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        idx = list(columns).index(self.column)
        fn = _OPS[self.op]
        value = self.value
        return lambda row: row[idx] is not None and fn(row[idx], value)

    def compile_batch(self, columns: Sequence[str]) -> BatchPredicate:
        idx = list(columns).index(self.column)
        fn = _OPS[self.op]
        value = self.value
        if self.op == "=":
            if value is None:
                # NULL never matches, so ``col = NULL`` is all-zeros —
                # and the == kernel below would wrongly hit NULL slots.
                return lambda batch: bytearray(len(batch))
            # The dominant kernel; `v == value` is False for None
            # without a guard, saving one test per slot.
            return lambda batch: bytearray(
                v == value for v in batch.data[idx]
            )
        return lambda batch: bytearray(
            v is not None and fn(v, value) for v in batch.data[idx]
        )

    def to_sql(self) -> Tuple[str, List[Any]]:
        # The engine's predicates are two-valued ("NULL never matches",
        # classical negation above); the NULL guard keeps the SQL
        # rendering equivalent even under NOT, where SQL's three-valued
        # logic would otherwise diverge.
        return (
            f"({self.column} IS NOT NULL AND {self.column} {self.op} ?)",
            [self.value],
        )

    def referenced_columns(self) -> List[str]:
        return [self.column]

    def __repr__(self) -> str:  # pragma: no cover
        return f"({self.column} {self.op} {self.value!r})"


class In(Predicate):
    """``column IN (values)`` with hash-set membership."""

    __slots__ = ("column", "values")

    def __init__(self, column: str, values) -> None:
        self.column = column
        self.values = frozenset(values)

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        idx = list(columns).index(self.column)
        values = self.values
        return lambda row: row[idx] in values

    def compile_batch(self, columns: Sequence[str]) -> BatchPredicate:
        idx = list(columns).index(self.column)
        values = self.values
        return lambda batch: bytearray(v in values for v in batch.data[idx])

    def to_sql(self) -> Tuple[str, List[Any]]:
        ordered = sorted(self.values, key=repr)
        marks = ", ".join("?" for _ in ordered)
        # NULL guard: see Comparison.to_sql.
        return (
            f"({self.column} IS NOT NULL AND {self.column} IN ({marks}))",
            list(ordered),
        )

    def referenced_columns(self) -> List[str]:
        return [self.column]


class IsNull(Predicate):
    __slots__ = ("column", "negated")

    def __init__(self, column: str, negated: bool = False) -> None:
        self.column = column
        self.negated = negated

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        idx = list(columns).index(self.column)
        if self.negated:
            return lambda row: row[idx] is not None
        return lambda row: row[idx] is None

    def compile_batch(self, columns: Sequence[str]) -> BatchPredicate:
        idx = list(columns).index(self.column)
        if self.negated:
            return lambda batch: bytearray(
                v is not None for v in batch.data[idx]
            )
        return lambda batch: bytearray(v is None for v in batch.data[idx])

    def to_sql(self) -> Tuple[str, List[Any]]:
        return f"{self.column} IS {'NOT ' if self.negated else ''}NULL", []

    def referenced_columns(self) -> List[str]:
        return [self.column]


class And(Predicate):
    __slots__ = ("parts",)

    def __init__(self, parts: List[Predicate]) -> None:
        flat: List[Predicate] = []
        for p in parts:
            if isinstance(p, And):
                flat.extend(p.parts)
            else:
                flat.append(p)
        self.parts = flat

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        fns = [p.compile(columns) for p in self.parts]
        if len(fns) == 2:
            f0, f1 = fns
            return lambda row: f0(row) and f1(row)
        return lambda row: all(fn(row) for fn in fns)

    def compile_batch(self, columns: Sequence[str]) -> BatchPredicate:
        fns = [p.compile_batch(columns) for p in self.parts]
        if not fns:  # vacuous AND, like all() over no parts
            return lambda batch: bytearray(b"\x01") * len(batch)

        def run(batch: ColumnBatch) -> bytearray:
            mask = fns[0](batch)
            for fn in fns[1:]:
                mask = mask_and(mask, fn(batch))
            return mask

        return run

    def to_sql(self) -> Tuple[str, List[Any]]:
        frags, params = [], []
        for p in self.parts:
            sql, ps = p.to_sql()
            frags.append(f"({sql})")
            params.extend(ps)
        return " AND ".join(frags), params

    def referenced_columns(self) -> List[str]:
        out: List[str] = []
        for p in self.parts:
            out.extend(p.referenced_columns())
        return out


class Or(Predicate):
    __slots__ = ("parts",)

    def __init__(self, parts: List[Predicate]) -> None:
        flat: List[Predicate] = []
        for p in parts:
            if isinstance(p, Or):
                flat.extend(p.parts)
            else:
                flat.append(p)
        self.parts = flat

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        fns = [p.compile(columns) for p in self.parts]
        return lambda row: any(fn(row) for fn in fns)

    def compile_batch(self, columns: Sequence[str]) -> BatchPredicate:
        fns = [p.compile_batch(columns) for p in self.parts]
        if not fns:  # vacuous OR, like any() over no parts
            return lambda batch: bytearray(len(batch))

        def run(batch: ColumnBatch) -> bytearray:
            mask = fns[0](batch)
            for fn in fns[1:]:
                mask = mask_or(mask, fn(batch))
            return mask

        return run

    def to_sql(self) -> Tuple[str, List[Any]]:
        frags, params = [], []
        for p in self.parts:
            sql, ps = p.to_sql()
            frags.append(f"({sql})")
            params.extend(ps)
        return " OR ".join(frags), params

    def referenced_columns(self) -> List[str]:
        out: List[str] = []
        for p in self.parts:
            out.extend(p.referenced_columns())
        return out


class Not(Predicate):
    __slots__ = ("inner",)

    def __init__(self, inner: Predicate) -> None:
        self.inner = inner

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        fn = self.inner.compile(columns)
        return lambda row: not fn(row)

    def compile_batch(self, columns: Sequence[str]) -> BatchPredicate:
        fn = self.inner.compile_batch(columns)
        return lambda batch: mask_not(fn(batch))

    def to_sql(self) -> Tuple[str, List[Any]]:
        sql, params = self.inner.to_sql()
        return f"NOT ({sql})", params

    def referenced_columns(self) -> List[str]:
        return self.inner.referenced_columns()


class TruePredicate(Predicate):
    """Matches every row; the identity for AND chains built in loops."""

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        return lambda row: True

    def compile_batch(self, columns: Sequence[str]) -> BatchPredicate:
        return lambda batch: bytearray(b"\x01") * len(batch)

    def to_sql(self) -> Tuple[str, List[Any]]:
        return "1 = 1", []

    def referenced_columns(self) -> List[str]:
        return []


# Terse constructors -----------------------------------------------------

def eq(column: str, value: Any) -> Comparison:
    return Comparison(column, "=", value)


def ne(column: str, value: Any) -> Comparison:
    return Comparison(column, "!=", value)


def lt(column: str, value: Any) -> Comparison:
    return Comparison(column, "<", value)


def le(column: str, value: Any) -> Comparison:
    return Comparison(column, "<=", value)


def gt(column: str, value: Any) -> Comparison:
    return Comparison(column, ">", value)


def ge(column: str, value: Any) -> Comparison:
    return Comparison(column, ">=", value)


def in_(column: str, values) -> In:
    return In(column, values)


def is_null(column: str) -> IsNull:
    return IsNull(column)


def not_null(column: str) -> IsNull:
    return IsNull(column, negated=True)
