"""Predicate expressions over named-column rows.

Predicates form a tiny AST (comparisons, boolean combinators, IN, NULL
tests) that is *compiled once* into a Python closure over positional
rows — per the HPC guideline of hoisting work out of inner loops, no
per-row name lookups or isinstance dispatch happen during a scan.

The same AST renders to a SQL ``WHERE`` fragment so the sqlite backend
can execute identical logical plans (used by the backend-equivalence
property tests and bench E9).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

RowPredicate = Callable[[tuple], bool]


class Predicate:
    """Base class; combinators build trees with ``&``, ``|``, ``~``."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or([self, other])

    def __invert__(self) -> "Predicate":
        return Not(self)

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        """Compile into a closure over rows with the given column order."""
        raise NotImplementedError

    def to_sql(self) -> Tuple[str, List[Any]]:
        """Render as a parameterized SQL fragment ``(sql, params)``."""
        raise NotImplementedError

    def referenced_columns(self) -> List[str]:
        raise NotImplementedError


_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Comparison(Predicate):
    """``column <op> constant``.  NULLs never match (SQL semantics)."""

    __slots__ = ("column", "op", "value")

    def __init__(self, column: str, op: str, value: Any) -> None:
        if op not in _OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.column = column
        self.op = op
        self.value = value

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        idx = list(columns).index(self.column)
        fn = _OPS[self.op]
        value = self.value
        return lambda row: row[idx] is not None and fn(row[idx], value)

    def to_sql(self) -> Tuple[str, List[Any]]:
        # The engine's predicates are two-valued ("NULL never matches",
        # classical negation above); the NULL guard keeps the SQL
        # rendering equivalent even under NOT, where SQL's three-valued
        # logic would otherwise diverge.
        return (
            f"({self.column} IS NOT NULL AND {self.column} {self.op} ?)",
            [self.value],
        )

    def referenced_columns(self) -> List[str]:
        return [self.column]

    def __repr__(self) -> str:  # pragma: no cover
        return f"({self.column} {self.op} {self.value!r})"


class In(Predicate):
    """``column IN (values)`` with hash-set membership."""

    __slots__ = ("column", "values")

    def __init__(self, column: str, values) -> None:
        self.column = column
        self.values = frozenset(values)

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        idx = list(columns).index(self.column)
        values = self.values
        return lambda row: row[idx] in values

    def to_sql(self) -> Tuple[str, List[Any]]:
        ordered = sorted(self.values, key=repr)
        marks = ", ".join("?" for _ in ordered)
        # NULL guard: see Comparison.to_sql.
        return (
            f"({self.column} IS NOT NULL AND {self.column} IN ({marks}))",
            list(ordered),
        )

    def referenced_columns(self) -> List[str]:
        return [self.column]


class IsNull(Predicate):
    __slots__ = ("column", "negated")

    def __init__(self, column: str, negated: bool = False) -> None:
        self.column = column
        self.negated = negated

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        idx = list(columns).index(self.column)
        if self.negated:
            return lambda row: row[idx] is not None
        return lambda row: row[idx] is None

    def to_sql(self) -> Tuple[str, List[Any]]:
        return f"{self.column} IS {'NOT ' if self.negated else ''}NULL", []

    def referenced_columns(self) -> List[str]:
        return [self.column]


class And(Predicate):
    __slots__ = ("parts",)

    def __init__(self, parts: List[Predicate]) -> None:
        flat: List[Predicate] = []
        for p in parts:
            if isinstance(p, And):
                flat.extend(p.parts)
            else:
                flat.append(p)
        self.parts = flat

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        fns = [p.compile(columns) for p in self.parts]
        if len(fns) == 2:
            f0, f1 = fns
            return lambda row: f0(row) and f1(row)
        return lambda row: all(fn(row) for fn in fns)

    def to_sql(self) -> Tuple[str, List[Any]]:
        frags, params = [], []
        for p in self.parts:
            sql, ps = p.to_sql()
            frags.append(f"({sql})")
            params.extend(ps)
        return " AND ".join(frags), params

    def referenced_columns(self) -> List[str]:
        out: List[str] = []
        for p in self.parts:
            out.extend(p.referenced_columns())
        return out


class Or(Predicate):
    __slots__ = ("parts",)

    def __init__(self, parts: List[Predicate]) -> None:
        flat: List[Predicate] = []
        for p in parts:
            if isinstance(p, Or):
                flat.extend(p.parts)
            else:
                flat.append(p)
        self.parts = flat

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        fns = [p.compile(columns) for p in self.parts]
        return lambda row: any(fn(row) for fn in fns)

    def to_sql(self) -> Tuple[str, List[Any]]:
        frags, params = [], []
        for p in self.parts:
            sql, ps = p.to_sql()
            frags.append(f"({sql})")
            params.extend(ps)
        return " OR ".join(frags), params

    def referenced_columns(self) -> List[str]:
        out: List[str] = []
        for p in self.parts:
            out.extend(p.referenced_columns())
        return out


class Not(Predicate):
    __slots__ = ("inner",)

    def __init__(self, inner: Predicate) -> None:
        self.inner = inner

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        fn = self.inner.compile(columns)
        return lambda row: not fn(row)

    def to_sql(self) -> Tuple[str, List[Any]]:
        sql, params = self.inner.to_sql()
        return f"NOT ({sql})", params

    def referenced_columns(self) -> List[str]:
        return self.inner.referenced_columns()


class TruePredicate(Predicate):
    """Matches every row; the identity for AND chains built in loops."""

    def compile(self, columns: Sequence[str]) -> RowPredicate:
        return lambda row: True

    def to_sql(self) -> Tuple[str, List[Any]]:
        return "1 = 1", []

    def referenced_columns(self) -> List[str]:
        return []


# Terse constructors -----------------------------------------------------

def eq(column: str, value: Any) -> Comparison:
    return Comparison(column, "=", value)


def ne(column: str, value: Any) -> Comparison:
    return Comparison(column, "!=", value)


def lt(column: str, value: Any) -> Comparison:
    return Comparison(column, "<", value)


def le(column: str, value: Any) -> Comparison:
    return Comparison(column, "<=", value)


def gt(column: str, value: Any) -> Comparison:
    return Comparison(column, ">", value)


def ge(column: str, value: Any) -> Comparison:
    return Comparison(column, ">=", value)


def in_(column: str, values) -> In:
    return In(column, values)


def is_null(column: str) -> IsNull:
    return IsNull(column)


def not_null(column: str) -> IsNull:
    return IsNull(column, negated=True)
