"""Materialized relations and the relational-algebra operators.

A :class:`Relation` is an immutable set of named columns — internally a
tuple of parallel value lists, the same layout as
:class:`~repro.relational.batch.ColumnBatch` — with row tuples
materialized lazily only when a consumer asks for them.  Operators are
free functions so plans compose as plain Python expressions; each one
materializes its output, which keeps the cost model transparent for the
benchmarks (every operator's work is visible, nothing is deferred).

Columnar operators (``select``/``project``/``rename``/``order_by``/
``limit``) never touch row tuples: selection is a vectorized predicate
producing a bitmap that is applied per column, projection and rename
share the input's column lists outright, and ordering is an argsort
over the key columns.  Row-shaped operators (joins, aggregation,
``distinct``) stream tuples via :meth:`Relation.iter_rows`.

Join strategy: equi-joins are hash joins (build on the smaller input),
the only join the catalog's plans need.  Grouped aggregation is
one-pass hash aggregation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .batch import ColumnBatch
from .errors import PlanError
from .predicate import Predicate
from .table import Table


class Relation:
    """An ordered bag of tuples with named columns, stored columnar."""

    __slots__ = ("columns", "_data", "_rows")

    def __init__(self, columns: Sequence[str], rows: Sequence[tuple]) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        self._rows: Optional[List[tuple]] = list(rows)
        self._data: Optional[Tuple[List[Any], ...]] = None

    @classmethod
    def from_columns(cls, columns: Sequence[str], data: Sequence[List[Any]]) -> "Relation":
        """Build directly from parallel column lists (no row tuples).

        The lists are adopted, not copied — callers hand over ownership.
        """
        if len(columns) != len(data):
            raise PlanError(
                f"need one column list per name: {len(columns)} names, "
                f"{len(data)} columns"
            )
        rel = cls.__new__(cls)
        rel.columns = tuple(columns)
        rel._data = tuple(data)
        rel._rows = None
        return rel

    @classmethod
    def from_table(cls, table: Table) -> "Relation":
        return cls.from_columns(table.column_names, table.live_columns())

    @property
    def data(self) -> Tuple[List[Any], ...]:
        """Parallel column lists (treat as read-only)."""
        if self._data is None:
            rows = self._rows or []
            self._data = tuple(
                [row[i] for row in rows] for i in range(len(self.columns))
            )
        return self._data

    @property
    def rows(self) -> List[tuple]:
        """Row tuples, materialized (and cached) on first access."""
        if self._rows is None:
            data = self._data
            self._rows = list(zip(*data)) if data else []
        return self._rows

    def iter_rows(self) -> Iterator[tuple]:
        """Stream row tuples without caching the materialized list."""
        if self._rows is not None:
            return iter(self._rows)
        data = self._data
        return zip(*data) if data else iter(())

    def position(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise PlanError(f"relation has no column {column!r} (has {self.columns})") from None

    def positions(self, columns: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.position(c) for c in columns)

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        data = self._data
        return len(data[0]) if data else 0

    def __iter__(self):
        return self.iter_rows()

    def column_values(self, column: str) -> List[Any]:
        if self._data is not None:
            return list(self._data[self.position(column)])
        p = self.position(column)
        return [row[p] for row in self.rows]

    def to_dicts(self) -> List[Dict[str, Any]]:
        cols = self.columns
        return [dict(zip(cols, row)) for row in self.iter_rows()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({list(self.columns)}, rows={len(self)})"


def scan(table: Table) -> Relation:
    """Full scan of a table into a relation (columnar copy-out)."""
    return Relation.from_table(table)


def select(relation: Relation, predicate: Predicate) -> Relation:
    """Filter rows by a predicate, evaluated vectorized per column."""
    data = relation.data
    mask = predicate.compile_batch(relation.columns)(
        ColumnBatch(relation.columns, data)
    )
    out = [
        [value for value, bit in zip(col, mask) if bit] for col in data
    ]
    return Relation.from_columns(relation.columns, out)


def project(relation: Relation, columns: Sequence[str]) -> Relation:
    """Keep only ``columns`` (in the given order) — a column pick that
    shares the input's value lists, no per-row work at all."""
    positions = relation.positions(columns)
    data = relation.data
    return Relation.from_columns(columns, [data[p] for p in positions])


def rename(relation: Relation, mapping: Dict[str, str]) -> Relation:
    """Rename columns; unmentioned columns keep their names."""
    columns = [mapping.get(c, c) for c in relation.columns]
    if len(set(columns)) != len(columns):
        raise PlanError(f"rename produced duplicate columns: {columns}")
    return Relation.from_columns(columns, relation.data)


def distinct(relation: Relation) -> Relation:
    """Remove duplicate rows, preserving first-seen order."""
    seen = set()
    rows = []
    for row in relation.iter_rows():
        if row not in seen:
            seen.add(row)
            rows.append(row)
    return Relation(relation.columns, rows)


def extend(relation: Relation, column: str, fn: Callable[[tuple], Any]) -> Relation:
    """Append a computed column."""
    data = relation.data
    computed = [fn(row) for row in relation.iter_rows()]
    return Relation.from_columns(
        list(relation.columns) + [column], list(data) + [computed]
    )


def constant_column(relation: Relation, column: str, value: Any) -> Relation:
    data = relation.data
    return Relation.from_columns(
        list(relation.columns) + [column], list(data) + [[value] * len(relation)]
    )


def union_all(a: Relation, b: Relation) -> Relation:
    if a.columns != b.columns:
        raise PlanError(f"union of incompatible relations: {a.columns} vs {b.columns}")
    return Relation.from_columns(
        a.columns, [ca + cb for ca, cb in zip(a.data, b.data)]
    )


def order_by(relation: Relation, columns: Sequence[str], descending: bool = False) -> Relation:
    """Sort by key columns via argsort: order the positions once, then
    gather every column along the permutation."""
    positions = relation.positions(columns)
    data = relation.data
    key_cols = [data[p] for p in positions]
    order = sorted(
        range(len(relation)),
        key=lambda i: tuple(col[i] for col in key_cols),
        reverse=descending,
    )
    return Relation.from_columns(
        relation.columns, [[col[i] for i in order] for col in data]
    )


def limit(relation: Relation, n: int) -> Relation:
    return Relation.from_columns(
        relation.columns, [col[:n] for col in relation.data]
    )


def hash_join(
    left: Relation,
    right: Relation,
    on: Sequence[Tuple[str, str]],
    right_prefix: str = "",
) -> Relation:
    """Equi-join: ``on`` is a list of ``(left_column, right_column)``.

    Output columns are all of ``left`` followed by the non-join columns
    of ``right`` (join columns would be duplicates).  ``right_prefix``
    disambiguates remaining collisions.  Builds the hash table on the
    smaller input.
    """
    left_keys = [l for l, _ in on]
    right_keys = [r for _, r in on]
    lpos = left.positions(left_keys)
    rpos = right.positions(right_keys)

    right_keep = [i for i, c in enumerate(right.columns) if c not in right_keys]
    right_out_names = []
    for i in right_keep:
        name = right_prefix + right.columns[i]
        if name in left.columns:
            raise PlanError(
                f"join output column collision on {name!r}; pass right_prefix"
            )
        right_out_names.append(name)
    out_columns = list(left.columns) + right_out_names

    rows: List[tuple] = []
    if len(left) <= len(right):
        # Build on left, probe right.
        buckets: Dict[tuple, List[tuple]] = {}
        for row in left.iter_rows():
            key = tuple(row[p] for p in lpos)
            if None in key:
                continue
            buckets.setdefault(key, []).append(row)
        for rrow in right.iter_rows():
            key = tuple(rrow[p] for p in rpos)
            matches = buckets.get(key)
            if matches:
                tail = tuple(rrow[i] for i in right_keep)
                for lrow in matches:
                    rows.append(lrow + tail)
    else:
        buckets = {}
        for rrow in right.iter_rows():
            key = tuple(rrow[p] for p in rpos)
            if None in key:
                continue
            buckets.setdefault(key, []).append(tuple(rrow[i] for i in right_keep))
        for lrow in left.iter_rows():
            key = tuple(lrow[p] for p in lpos)
            tails = buckets.get(key)
            if tails:
                for tail in tails:
                    rows.append(lrow + tail)
    return Relation(out_columns, rows)


def semi_join(left: Relation, right: Relation, on: Sequence[Tuple[str, str]]) -> Relation:
    """Rows of ``left`` with at least one match in ``right``."""
    lpos = left.positions([l for l, _ in on])
    rpos = right.positions([r for _, r in on])
    keys = {tuple(row[p] for p in rpos) for row in right.iter_rows()}
    rows = [row for row in left.iter_rows() if tuple(row[p] for p in lpos) in keys]
    return Relation(left.columns, rows)


def anti_join(left: Relation, right: Relation, on: Sequence[Tuple[str, str]]) -> Relation:
    """Rows of ``left`` with no match in ``right``."""
    lpos = left.positions([l for l, _ in on])
    rpos = right.positions([r for _, r in on])
    keys = {tuple(row[p] for p in rpos) for row in right.iter_rows()}
    rows = [row for row in left.iter_rows() if tuple(row[p] for p in lpos) not in keys]
    return Relation(left.columns, rows)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

class Aggregate:
    """Specification of one aggregate output column."""

    __slots__ = ("kind", "column", "alias")

    KINDS = ("count", "count_distinct", "sum", "min", "max")

    def __init__(self, kind: str, column: Optional[str], alias: str) -> None:
        if kind not in self.KINDS:
            raise PlanError(f"unknown aggregate {kind!r}")
        if kind != "count" and column is None:
            raise PlanError(f"aggregate {kind!r} requires a column")
        self.kind = kind
        self.column = column
        self.alias = alias


def count(alias: str = "count") -> Aggregate:
    return Aggregate("count", None, alias)


def count_distinct(column: str, alias: str) -> Aggregate:
    return Aggregate("count_distinct", column, alias)


def agg_sum(column: str, alias: str) -> Aggregate:
    return Aggregate("sum", column, alias)


def agg_min(column: str, alias: str) -> Aggregate:
    return Aggregate("min", column, alias)


def agg_max(column: str, alias: str) -> Aggregate:
    return Aggregate("max", column, alias)


def group_by(
    relation: Relation,
    keys: Sequence[str],
    aggregates: Sequence[Aggregate],
) -> Relation:
    """Hash aggregation: one output row per distinct key combination.

    With an empty ``keys`` a single row is produced (even for empty
    input, matching SQL's global-aggregate semantics).
    """
    key_pos = relation.positions(keys)
    agg_pos = [
        relation.position(a.column) if a.column is not None else -1 for a in aggregates
    ]

    groups: Dict[tuple, List[Any]] = {}

    def fresh_state() -> List[Any]:
        state: List[Any] = []
        for a in aggregates:
            if a.kind == "count":
                state.append(0)
            elif a.kind == "count_distinct":
                state.append(set())
            elif a.kind == "sum":
                state.append(0)
            else:  # min / max
                state.append(None)
        return state

    for row in relation.iter_rows():
        key = tuple(row[p] for p in key_pos)
        state = groups.get(key)
        if state is None:
            state = fresh_state()
            groups[key] = state
        for i, a in enumerate(aggregates):
            if a.kind == "count":
                state[i] += 1
                continue
            value = row[agg_pos[i]]
            if value is None:
                continue
            if a.kind == "count_distinct":
                state[i].add(value)
            elif a.kind == "sum":
                state[i] += value
            elif a.kind == "min":
                state[i] = value if state[i] is None or value < state[i] else state[i]
            elif a.kind == "max":
                state[i] = value if state[i] is None or value > state[i] else state[i]

    if not keys and not groups:
        groups[()] = fresh_state()

    out_columns = list(keys) + [a.alias for a in aggregates]
    rows: List[tuple] = []
    for key, state in groups.items():
        finals = [
            len(s) if isinstance(s, set) else s for s in state
        ]
        rows.append(key + tuple(finals))
    return Relation(out_columns, rows)
