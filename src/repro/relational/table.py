"""Columnar tables with hash and sorted secondary indexes.

Storage is column-oriented: one parallel Python list per column plus a
validity bitmap (``bytearray``, ``1`` = live, ``0`` = tombstone).  A row
id is a position shared by every column list, so rows are materialized
as tuples only at the edges (``fetch``/``scan``/``lookup``); scans,
predicate evaluation (:meth:`Table.matching_rowids`), and bulk deletes
run as single passes over whole columns.  Indexes map key tuples to
lists of row ids, as before.  The relative costs the benchmarks measure
(scans vs index lookups vs joins) still mirror the RDBMS the paper ran
on; the columnar layout removes the per-row interpretation overhead the
old heap-of-tuples design paid on every cold scan (ROADMAP item 3).
"""

from __future__ import annotations

import bisect
import sys
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..identifiers import quote_identifier
from .batch import ColumnBatch
from .errors import ConstraintError, TableError
from .predicate import Predicate
from .types import Column


class HashIndex:
    """Equality index: key tuple -> list of row ids."""

    __slots__ = ("name", "columns", "positions", "unique", "buckets")

    def __init__(self, name: str, columns: Sequence[str], positions: Sequence[int], unique: bool) -> None:
        self.name = name
        self.columns = tuple(columns)
        self.positions = tuple(positions)
        self.unique = unique
        self.buckets: Dict[tuple, List[int]] = {}

    def key_of(self, row: tuple) -> tuple:
        positions = self.positions
        return tuple(row[p] for p in positions)

    def add(self, rowid: int, row: tuple) -> None:
        key = self.key_of(row)
        bucket = self.buckets.get(key)
        if bucket is None:
            self.buckets[key] = [rowid]
        else:
            if self.unique:
                raise ConstraintError(
                    f"unique index {self.name!r} violated for key {key!r}"
                )
            bucket.append(rowid)

    def remove(self, rowid: int, row: tuple) -> None:
        key = self.key_of(row)
        bucket = self.buckets.get(key)
        if bucket is not None:
            try:
                bucket.remove(rowid)
            except ValueError:
                pass
            if not bucket:
                del self.buckets[key]

    def lookup(self, key: tuple) -> List[int]:
        return self.buckets.get(key, [])


class SortedIndex:
    """Ordered index over a single column supporting range probes.

    Maintained as parallel sorted lists (keys, rowids) via ``bisect`` —
    adequate for the mostly-append workload of a metadata catalog.
    NULL keys are not indexed (matching SQL b-tree behaviour for range
    predicates, where NULL never matches).
    """

    __slots__ = ("name", "column", "position", "keys", "rowids")

    def __init__(self, name: str, column: str, position: int) -> None:
        self.name = name
        self.column = column
        self.position = position
        self.keys: List[Any] = []
        self.rowids: List[int] = []

    def add(self, rowid: int, row: tuple) -> None:
        key = row[self.position]
        if key is None:
            return
        i = bisect.bisect_right(self.keys, key)
        self.keys.insert(i, key)
        self.rowids.insert(i, rowid)

    def remove(self, rowid: int, row: tuple) -> None:
        key = row[self.position]
        if key is None:
            return
        i = bisect.bisect_left(self.keys, key)
        while i < len(self.keys) and self.keys[i] == key:
            if self.rowids[i] == rowid:
                del self.keys[i]
                del self.rowids[i]
                return
            i += 1

    def remove_many(self, rowids: Set[int]) -> None:
        """Drop every entry whose rowid is in ``rowids`` in one pass.

        Each rowid appears at most once, so a single filtering rebuild
        is O(n) total — versus O(n) *per victim* for repeated deletes
        from the parallel lists.
        """
        if not rowids:
            return
        new_keys: List[Any] = []
        new_rowids: List[int] = []
        for key, rid in zip(self.keys, self.rowids):
            if rid not in rowids:
                new_keys.append(key)
                new_rowids.append(rid)
        self.keys = new_keys
        self.rowids = new_rowids

    def range(self, low: Any = None, high: Any = None, low_inclusive: bool = True, high_inclusive: bool = True) -> List[int]:
        lo = 0
        hi = len(self.keys)
        if low is not None:
            lo = bisect.bisect_left(self.keys, low) if low_inclusive else bisect.bisect_right(self.keys, low)
        if high is not None:
            hi = bisect.bisect_right(self.keys, high) if high_inclusive else bisect.bisect_left(self.keys, high)
        return self.rowids[lo:hi]


class Table:
    """A columnar table with a schema, optional primary key, and indexes."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[Sequence[str]] = None,
    ) -> None:
        if not columns:
            raise TableError(f"table {name!r} needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise TableError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self.column_names: Tuple[str, ...] = tuple(names)
        self._positions: Dict[str, int] = {n: i for i, n in enumerate(names)}
        #: One value list per column; parallel, equal length.  A row id
        #: is a shared position.  Tombstoned slots hold None in every
        #: column and a 0 bit in the validity bitmap.
        self._cols: Tuple[List[Any], ...] = tuple([] for _ in names)
        self._valid = bytearray()
        self._live = 0
        #: Undo journal shared with the owning Database while a
        #: transaction is active; None otherwise (zero overhead).
        #: Entries are ``(table, rowid, row)`` — ``row is None`` marks
        #: an insert to undo, a tuple marks a delete to restore.
        self.journal: Optional[List[Tuple["Table", int, Optional[tuple]]]] = None
        self._hash_indexes: List[HashIndex] = []
        self._sorted_indexes: List[SortedIndex] = []
        self.primary_key: Optional[Tuple[str, ...]] = None
        if primary_key:
            self.primary_key = tuple(primary_key)
            self.create_index("pk_" + name, primary_key, unique=True)

    # ------------------------------------------------------------------
    # Schema helpers
    # ------------------------------------------------------------------
    def position(self, column: str) -> int:
        try:
            return self._positions[column]
        except KeyError:
            raise TableError(f"table {self.name!r} has no column {column!r}") from None

    def positions(self, columns: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.position(c) for c in columns)

    def ddl(self) -> str:
        """Render as SQL DDL (used by the sqlite backend)."""
        cols = ", ".join(c.ddl() for c in self.columns)
        pk = f", PRIMARY KEY ({', '.join(self.primary_key)})" if self.primary_key else ""
        # cols/pk render Column definitions fixed at schema build time;
        # the table name is the only externally-influenced identifier.
        return (  # reprolint: ignore[SQL01] cols/pk are Column DDL fragments
            f"CREATE TABLE {quote_identifier(self.name)} ({cols}{pk})"
        )

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def create_index(self, name: str, columns: Sequence[str], unique: bool = False) -> HashIndex:
        positions = self.positions(columns)
        index = HashIndex(name, columns, positions, unique)
        for rowid in self.live_rowids():
            index.add(rowid, self._row(rowid))
        self._hash_indexes.append(index)
        return index

    def create_sorted_index(self, name: str, column: str) -> SortedIndex:
        index = SortedIndex(name, column, self.position(column))
        for rowid in self.live_rowids():
            index.add(rowid, self._row(rowid))
        self._sorted_indexes.append(index)
        return index

    def find_hash_index(self, columns: Sequence[str]) -> Optional[HashIndex]:
        want = tuple(columns)
        for index in self._hash_indexes:
            if index.columns == want:
                return index
        return None

    def find_sorted_index(self, column: str) -> Optional[SortedIndex]:
        for index in self._sorted_indexes:
            if index.column == column:
                return index
        return None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, values: Sequence[Any]) -> int:
        """Insert a full row (positional); returns the row id."""
        if len(values) != len(self.columns):
            raise TableError(
                f"table {self.name!r} expects {len(self.columns)} values, got {len(values)}"
            )
        row = tuple(col.validate(v) for col, v in zip(self.columns, values))
        rowid = len(self._valid)
        # Validate unique indexes before touching any of them so a
        # constraint failure leaves the table unchanged.
        for index in self._hash_indexes:
            if index.unique and index.lookup(index.key_of(row)):
                raise ConstraintError(
                    f"unique index {index.name!r} violated for key {index.key_of(row)!r}"
                )
        for col, value in zip(self._cols, row):
            col.append(value)
        self._valid.append(1)
        self._live += 1
        for index in self._hash_indexes:
            index.add(rowid, row)
        for sindex in self._sorted_indexes:
            sindex.add(rowid, row)
        if self.journal is not None:
            self.journal.append((self, rowid, None))
        return rowid

    def insert_dict(self, **values: Any) -> int:
        """Insert by column name; omitted columns get NULL."""
        row = [None] * len(self.columns)
        for name, value in values.items():
            row[self.position(name)] = value
        return self.insert(row)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete_where(self, predicate: Predicate) -> int:
        """Tombstone every matching row in one batched pass.

        The predicate is evaluated vectorized over whole columns, then
        all victims are journalled / unindexed / cleared together —
        sorted indexes in particular rebuild once instead of paying a
        bisect-and-shift per row.
        """
        victims = self.matching_rowids(predicate)
        if victims:
            self._tombstone_many(victims)
        return len(victims)

    def clear(self) -> None:
        if self.journal is not None:
            for rowid in self.live_rowids():
                self.journal.append((self, rowid, self._row(rowid)))
        for col in self._cols:
            col.clear()
        self._valid = bytearray()
        self._live = 0
        for index in self._hash_indexes:
            index.buckets.clear()
        for sindex in self._sorted_indexes:
            sindex.keys.clear()
            sindex.rowids.clear()

    def _tombstone(self, rowid: int, row: tuple) -> None:
        self._valid[rowid] = 0
        for col in self._cols:
            col[rowid] = None
        self._live -= 1
        for index in self._hash_indexes:
            index.remove(rowid, row)
        for sindex in self._sorted_indexes:
            sindex.remove(rowid, row)
        if self.journal is not None:
            self.journal.append((self, rowid, row))

    def _tombstone_many(self, rowids: Sequence[int]) -> None:
        """Tombstone ``rowids`` (ascending, live) with batched index
        maintenance.  Journal entries stay per-row and in ascending
        order, so rollback replays identically to the per-row path."""
        rows = [self._row(rowid) for rowid in rowids]
        for index in self._hash_indexes:
            for rowid, row in zip(rowids, rows):
                index.remove(rowid, row)
        if self._sorted_indexes:
            gone = set(rowids)
            for sindex in self._sorted_indexes:
                sindex.remove_many(gone)
        valid = self._valid
        cols = self._cols
        for rowid in rowids:
            valid[rowid] = 0
            for col in cols:
                col[rowid] = None
        self._live -= len(rowids)
        if self.journal is not None:
            for rowid, row in zip(rowids, rows):
                self.journal.append((self, rowid, row))

    # ------------------------------------------------------------------
    # Undo (transaction rollback; journal entries replay in reverse so
    # the table returns to exactly its pre-transaction state)
    # ------------------------------------------------------------------
    def _undo_insert(self, rowid: int) -> None:
        if rowid >= len(self._valid) or not self._valid[rowid]:
            return
        row = self._row(rowid)
        for index in self._hash_indexes:
            index.remove(rowid, row)
        for sindex in self._sorted_indexes:
            sindex.remove(rowid, row)
        if rowid == len(self._valid) - 1:
            for col in self._cols:
                col.pop()
            self._valid.pop()
        else:
            self._valid[rowid] = 0
            for col in self._cols:
                col[rowid] = None
        self._live -= 1

    def _undo_delete(self, rowid: int, row: tuple) -> None:
        while len(self._valid) <= rowid:
            for col in self._cols:
                col.append(None)
            self._valid.append(0)
        for col, value in zip(self._cols, row):
            col[rowid] = value
        self._valid[rowid] = 1
        self._live += 1
        for index in self._hash_indexes:
            index.add(rowid, row)
        for sindex in self._sorted_indexes:
            sindex.add(rowid, row)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._live

    def _row(self, rowid: int) -> tuple:
        return tuple(col[rowid] for col in self._cols)

    @property
    def _compact(self) -> bool:
        """True when there are no tombstones (every slot is live)."""
        return self._live == len(self._valid)

    def live_rowids(self) -> Iterator[int]:
        """Row ids of live rows, ascending."""
        if self._compact:
            return iter(range(len(self._valid)))
        return (i for i, bit in enumerate(self._valid) if bit)

    def scan(self) -> Iterator[tuple]:
        """All live rows in insertion order."""
        if not self._cols:
            return iter(())
        if self._compact:
            return zip(*self._cols)
        valid = self._valid
        return (
            row for i, row in enumerate(zip(*self._cols)) if valid[i]
        )

    def rows(self) -> List[tuple]:
        return list(self.scan())

    def fetch(self, rowid: int) -> tuple:
        if rowid >= len(self._valid) or not self._valid[rowid]:
            raise TableError(f"row {rowid} of table {self.name!r} was deleted")
        return self._row(rowid)

    def lookup(self, columns: Sequence[str], key: Sequence[Any]) -> List[tuple]:
        """Equality lookup, via an index when one covers ``columns``."""
        index = self.find_hash_index(columns)
        key_t = tuple(key)
        if index is not None:
            return [self._row(rid) for rid in index.lookup(key_t)]
        positions = self.positions(columns)
        return [
            row
            for row in self.scan()
            if tuple(row[p] for p in positions) == key_t
        ]

    def lookup_rowids(self, columns: Sequence[str], key: Sequence[Any]) -> List[int]:
        """Row ids for an equality lookup — lets callers probe single
        columns (:meth:`column_data`) without materializing tuples."""
        index = self.find_hash_index(columns)
        key_t = tuple(key)
        if index is not None:
            return list(index.lookup(key_t))
        positions = self.positions(columns)
        cols = [self._cols[p] for p in positions]
        return [
            rid
            for rid in self.live_rowids()
            if tuple(col[rid] for col in cols) == key_t
        ]

    # ------------------------------------------------------------------
    # Columnar access (batch execution surface)
    # ------------------------------------------------------------------
    def column_data(self, column: str) -> List[Any]:
        """The raw value column, one slot per row id (tombstoned slots
        hold None).  A borrowed view: callers must not mutate it and
        should pair slot probes with :meth:`validity`."""
        return self._cols[self.position(column)]

    def validity(self) -> bytearray:
        """The validity bitmap (borrowed view; 1 = live)."""
        return self._valid

    def batch(self) -> ColumnBatch:
        """The whole table as one borrowed ColumnBatch (all slots,
        including tombstones — filter with :meth:`validity`)."""
        return ColumnBatch(self.column_names, self._cols)

    def matching_rowids(self, predicate: Predicate) -> List[int]:
        """Row ids of live rows matching ``predicate``, ascending.

        Evaluates the vectorized predicate over the full column batch,
        then masks with validity (tombstoned slots are all-None, which
        e.g. ``IsNull`` would otherwise match)."""
        mask = predicate.compile_batch(self.column_names)(self.batch())
        valid = self._valid
        return [i for i, bit in enumerate(mask) if bit and valid[i]]

    def live_columns(self) -> List[List[Any]]:
        """Copies of every column restricted to live rows, in rowid
        order — the columnar bulk-export used by ``Relation.from_table``."""
        if self._compact:
            return [list(col) for col in self._cols]
        valid = self._valid
        return [
            [value for value, bit in zip(col, valid) if bit]
            for col in self._cols
        ]

    def iter_values(self, *columns: str) -> Iterator[tuple]:
        """Tuples of the named columns for live rows, in rowid order —
        a projection scan that never touches unreferenced columns."""
        cols = [self._cols[self.position(c)] for c in columns]
        if self._compact:
            return zip(*cols)
        valid = self._valid
        return (
            vals for i, vals in enumerate(zip(*cols)) if valid[i]
        )

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------
    def storage_breakdown(self) -> Dict[str, int]:
        """Per-column storage bytes: the column list's own footprint
        (slot pointers + list header, via ``sys.getsizeof``) plus the
        payload of live values (strings by length, numbers as 8 bytes).
        Includes a ``"<validity>"`` entry for the tombstone bitmap."""
        breakdown: Dict[str, int] = {"<validity>": sys.getsizeof(self._valid)}
        for name, col in zip(self.column_names, self._cols):
            total = sys.getsizeof(col)
            for value in col:
                if value is None:
                    continue
                if isinstance(value, str):
                    total += len(value)
                else:
                    total += 8
            breakdown[name] = total
        return breakdown

    def estimated_bytes(self) -> int:
        """Actual columnar storage: per-column sizes + validity bitmap
        (used by the storage benchmarks, E5)."""
        return sum(self.storage_breakdown().values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self._live})"
