"""Heap tables with hash and sorted secondary indexes.

Rows are stored as plain tuples in a Python list (the "heap"); deleted
slots are tombstoned with ``None`` and compacted lazily.  Indexes map
key tuples to lists of row ids.  This mirrors the storage model of the
RDBMS the paper ran on closely enough for the relative costs the
benchmarks measure (scans vs index lookups vs joins) to be meaningful.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .errors import ConstraintError, TableError
from .predicate import Predicate
from .types import Column


class HashIndex:
    """Equality index: key tuple -> list of row ids."""

    __slots__ = ("name", "columns", "positions", "unique", "buckets")

    def __init__(self, name: str, columns: Sequence[str], positions: Sequence[int], unique: bool) -> None:
        self.name = name
        self.columns = tuple(columns)
        self.positions = tuple(positions)
        self.unique = unique
        self.buckets: Dict[tuple, List[int]] = {}

    def key_of(self, row: tuple) -> tuple:
        positions = self.positions
        return tuple(row[p] for p in positions)

    def add(self, rowid: int, row: tuple) -> None:
        key = self.key_of(row)
        bucket = self.buckets.get(key)
        if bucket is None:
            self.buckets[key] = [rowid]
        else:
            if self.unique:
                raise ConstraintError(
                    f"unique index {self.name!r} violated for key {key!r}"
                )
            bucket.append(rowid)

    def remove(self, rowid: int, row: tuple) -> None:
        key = self.key_of(row)
        bucket = self.buckets.get(key)
        if bucket is not None:
            try:
                bucket.remove(rowid)
            except ValueError:
                pass
            if not bucket:
                del self.buckets[key]

    def lookup(self, key: tuple) -> List[int]:
        return self.buckets.get(key, [])


class SortedIndex:
    """Ordered index over a single column supporting range probes.

    Maintained as parallel sorted lists (keys, rowids) via ``bisect`` —
    adequate for the mostly-append workload of a metadata catalog.
    NULL keys are not indexed (matching SQL b-tree behaviour for range
    predicates, where NULL never matches).
    """

    __slots__ = ("name", "column", "position", "keys", "rowids")

    def __init__(self, name: str, column: str, position: int) -> None:
        self.name = name
        self.column = column
        self.position = position
        self.keys: List[Any] = []
        self.rowids: List[int] = []

    def add(self, rowid: int, row: tuple) -> None:
        key = row[self.position]
        if key is None:
            return
        i = bisect.bisect_right(self.keys, key)
        self.keys.insert(i, key)
        self.rowids.insert(i, rowid)

    def remove(self, rowid: int, row: tuple) -> None:
        key = row[self.position]
        if key is None:
            return
        i = bisect.bisect_left(self.keys, key)
        while i < len(self.keys) and self.keys[i] == key:
            if self.rowids[i] == rowid:
                del self.keys[i]
                del self.rowids[i]
                return
            i += 1

    def range(self, low: Any = None, high: Any = None, low_inclusive: bool = True, high_inclusive: bool = True) -> List[int]:
        lo = 0
        hi = len(self.keys)
        if low is not None:
            lo = bisect.bisect_left(self.keys, low) if low_inclusive else bisect.bisect_right(self.keys, low)
        if high is not None:
            hi = bisect.bisect_right(self.keys, high) if high_inclusive else bisect.bisect_left(self.keys, high)
        return self.rowids[lo:hi]


class Table:
    """A heap table with a schema, optional primary key, and indexes."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[Sequence[str]] = None,
    ) -> None:
        if not columns:
            raise TableError(f"table {name!r} needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise TableError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self.column_names: Tuple[str, ...] = tuple(names)
        self._positions: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self._rows: List[Optional[tuple]] = []
        self._live = 0
        #: Undo journal shared with the owning Database while a
        #: transaction is active; None otherwise (zero overhead).
        #: Entries are ``(table, rowid, row)`` — ``row is None`` marks
        #: an insert to undo, a tuple marks a delete to restore.
        self.journal: Optional[List[Tuple["Table", int, Optional[tuple]]]] = None
        self._hash_indexes: List[HashIndex] = []
        self._sorted_indexes: List[SortedIndex] = []
        self.primary_key: Optional[Tuple[str, ...]] = None
        if primary_key:
            self.primary_key = tuple(primary_key)
            self.create_index("pk_" + name, primary_key, unique=True)

    # ------------------------------------------------------------------
    # Schema helpers
    # ------------------------------------------------------------------
    def position(self, column: str) -> int:
        try:
            return self._positions[column]
        except KeyError:
            raise TableError(f"table {self.name!r} has no column {column!r}") from None

    def positions(self, columns: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.position(c) for c in columns)

    def ddl(self) -> str:
        """Render as SQL DDL (used by the sqlite backend)."""
        cols = ", ".join(c.ddl() for c in self.columns)
        pk = f", PRIMARY KEY ({', '.join(self.primary_key)})" if self.primary_key else ""
        return f"CREATE TABLE {self.name} ({cols}{pk})"

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def create_index(self, name: str, columns: Sequence[str], unique: bool = False) -> HashIndex:
        positions = self.positions(columns)
        index = HashIndex(name, columns, positions, unique)
        for rowid, row in enumerate(self._rows):
            if row is not None:
                index.add(rowid, row)
        self._hash_indexes.append(index)
        return index

    def create_sorted_index(self, name: str, column: str) -> SortedIndex:
        index = SortedIndex(name, column, self.position(column))
        for rowid, row in enumerate(self._rows):
            if row is not None:
                index.add(rowid, row)
        self._sorted_indexes.append(index)
        return index

    def find_hash_index(self, columns: Sequence[str]) -> Optional[HashIndex]:
        want = tuple(columns)
        for index in self._hash_indexes:
            if index.columns == want:
                return index
        return None

    def find_sorted_index(self, column: str) -> Optional[SortedIndex]:
        for index in self._sorted_indexes:
            if index.column == column:
                return index
        return None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, values: Sequence[Any]) -> int:
        """Insert a full row (positional); returns the row id."""
        if len(values) != len(self.columns):
            raise TableError(
                f"table {self.name!r} expects {len(self.columns)} values, got {len(values)}"
            )
        row = tuple(col.validate(v) for col, v in zip(self.columns, values))
        rowid = len(self._rows)
        # Validate unique indexes before touching any of them so a
        # constraint failure leaves the table unchanged.
        for index in self._hash_indexes:
            if index.unique and index.lookup(index.key_of(row)):
                raise ConstraintError(
                    f"unique index {index.name!r} violated for key {index.key_of(row)!r}"
                )
        self._rows.append(row)
        self._live += 1
        for index in self._hash_indexes:
            index.add(rowid, row)
        for sindex in self._sorted_indexes:
            sindex.add(rowid, row)
        if self.journal is not None:
            self.journal.append((self, rowid, None))
        return rowid

    def insert_dict(self, **values: Any) -> int:
        """Insert by column name; omitted columns get NULL."""
        row = [None] * len(self.columns)
        for name, value in values.items():
            row[self.position(name)] = value
        return self.insert(row)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete_where(self, predicate: Predicate) -> int:
        fn = predicate.compile(self.column_names)
        deleted = 0
        for rowid, row in enumerate(self._rows):
            if row is not None and fn(row):
                self._tombstone(rowid, row)
                deleted += 1
        return deleted

    def clear(self) -> None:
        if self.journal is not None:
            for rowid, row in enumerate(self._rows):
                if row is not None:
                    self.journal.append((self, rowid, row))
        self._rows.clear()
        self._live = 0
        for index in self._hash_indexes:
            index.buckets.clear()
        for sindex in self._sorted_indexes:
            sindex.keys.clear()
            sindex.rowids.clear()

    def _tombstone(self, rowid: int, row: tuple) -> None:
        self._rows[rowid] = None
        self._live -= 1
        for index in self._hash_indexes:
            index.remove(rowid, row)
        for sindex in self._sorted_indexes:
            sindex.remove(rowid, row)
        if self.journal is not None:
            self.journal.append((self, rowid, row))

    # ------------------------------------------------------------------
    # Undo (transaction rollback; journal entries replay in reverse so
    # the table returns to exactly its pre-transaction state)
    # ------------------------------------------------------------------
    def _undo_insert(self, rowid: int) -> None:
        row = self._rows[rowid]
        if row is None:
            return
        for index in self._hash_indexes:
            index.remove(rowid, row)
        for sindex in self._sorted_indexes:
            sindex.remove(rowid, row)
        if rowid == len(self._rows) - 1:
            self._rows.pop()
        else:
            self._rows[rowid] = None
        self._live -= 1

    def _undo_delete(self, rowid: int, row: tuple) -> None:
        while len(self._rows) <= rowid:
            self._rows.append(None)
        self._rows[rowid] = row
        self._live += 1
        for index in self._hash_indexes:
            index.add(rowid, row)
        for sindex in self._sorted_indexes:
            sindex.add(rowid, row)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._live

    def scan(self) -> Iterator[tuple]:
        """All live rows in insertion order."""
        for row in self._rows:
            if row is not None:
                yield row

    def rows(self) -> List[tuple]:
        return [row for row in self._rows if row is not None]

    def fetch(self, rowid: int) -> tuple:
        row = self._rows[rowid]
        if row is None:
            raise TableError(f"row {rowid} of table {self.name!r} was deleted")
        return row

    def lookup(self, columns: Sequence[str], key: Sequence[Any]) -> List[tuple]:
        """Equality lookup, via an index when one covers ``columns``."""
        index = self.find_hash_index(columns)
        key_t = tuple(key)
        if index is not None:
            return [self._rows[rid] for rid in index.lookup(key_t)]  # type: ignore[misc]
        positions = self.positions(columns)
        return [
            row
            for row in self.scan()
            if tuple(row[p] for p in positions) == key_t
        ]

    def estimated_bytes(self) -> int:
        """Rough storage accounting used by the storage benchmarks (E5)."""
        total = 0
        for row in self.scan():
            for value in row:
                if value is None:
                    total += 1
                elif isinstance(value, str):
                    total += len(value)
                elif isinstance(value, float):
                    total += 8
                else:
                    total += 8
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self._live})"
