"""Column types for the from-scratch relational engine.

The engine is intentionally small — it exists so the catalog's
set-based plans (paper Fig. 4 and §5) run on a substrate we fully
control and can instrument, while remaining executable unchanged on a
real RDBMS through the sqlite backend.  Only the four storage classes
the catalog needs are provided.
"""

from __future__ import annotations

import enum
from typing import Any


class ColumnType(enum.Enum):
    """Storage classes supported by the engine.

    ``CLOB`` is distinct from ``TEXT`` purely as a signal: the engine
    never builds indexes over CLOB columns, mirroring the paper's point
    that CLOBs are not touched until the final join of the response
    builder (§5).
    """

    INTEGER = "integer"
    REAL = "real"
    TEXT = "text"
    CLOB = "clob"

    def validate(self, value: Any) -> Any:
        """Coerce/validate ``value`` for this type; ``None`` passes (NULL).

        Raises
        ------
        TypeError
            If the value is not acceptable for the column type.
        """
        if value is None:
            return None
        if self is ColumnType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeError(f"expected int, got {type(value).__name__}: {value!r}")
            return value
        if self is ColumnType.REAL:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(f"expected float, got {type(value).__name__}: {value!r}")
            return float(value)
        # TEXT / CLOB
        if not isinstance(value, str):
            raise TypeError(f"expected str, got {type(value).__name__}: {value!r}")
        return value

    @property
    def sql_name(self) -> str:
        """Type name used when the schema is rendered as SQL DDL."""
        return {
            ColumnType.INTEGER: "INTEGER",
            ColumnType.REAL: "REAL",
            ColumnType.TEXT: "TEXT",
            ColumnType.CLOB: "TEXT",
        }[self]


class Column:
    """A named, typed column with optional NOT NULL constraint."""

    __slots__ = ("name", "type", "nullable")

    def __init__(self, name: str, type: ColumnType, nullable: bool = True) -> None:
        if not name or not name.replace("_", "").isalnum():
            raise ValueError(f"invalid column name {name!r}")
        self.name = name
        self.type = type
        self.nullable = nullable

    def validate(self, value: Any) -> Any:
        if value is None:
            if not self.nullable:
                raise TypeError(f"column {self.name!r} is NOT NULL")
            return None
        return self.type.validate(value)

    def ddl(self) -> str:
        suffix = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.type.sql_name}{suffix}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column({self.name!r}, {self.type.value})"


def integer(name: str, nullable: bool = True) -> Column:
    return Column(name, ColumnType.INTEGER, nullable)


def real(name: str, nullable: bool = True) -> Column:
    return Column(name, ColumnType.REAL, nullable)


def text(name: str, nullable: bool = True) -> Column:
    return Column(name, ColumnType.TEXT, nullable)


def clob(name: str, nullable: bool = True) -> Column:
    return Column(name, ColumnType.CLOB, nullable)
