"""``repro.server`` — a threaded HTTP front-end for the myLEAD service.

The paper's myLEAD is a catalog grid users reach over the network; AMGA
(Santos & Koblitz) is the model for serving one metadata catalog to
many concurrent clients with per-user access control.  This package is
that front-end, on the stdlib only:

* :mod:`.auth` — session tokens scoped to a service user;
* :mod:`.ratelimit` — per-user token-bucket request limiting;
* :mod:`.protocol` — the JSON wire format for queries and payloads;
* :mod:`.app` — the :class:`CatalogServer` itself: a
  ``ThreadingHTTPServer`` over one shared multi-user
  :class:`~repro.grid.service.MyLeadService` (its RWLock-guarded
  bookkeeping and the store's pooled readers make threaded serving
  safe), with request metrics, slow-request events, and chunked
  streaming of paginated XML search results.

``repro serve`` starts one from the CLI; E16 load-tests it.
"""

from .app import CatalogServer, ServerConfig
from .auth import SessionManager
from .client import CatalogClient
from .protocol import criteria_to_payload, query_from_payload, query_to_payload
from .ratelimit import RateLimiter

__all__ = [
    "CatalogClient",
    "CatalogServer",
    "RateLimiter",
    "ServerConfig",
    "SessionManager",
    "criteria_to_payload",
    "query_from_payload",
    "query_to_payload",
]
